//! The analytic capacity model of Fig. 13.
//!
//! A 10-disk server with total memory `M` serves a population whose
//! per-disk load follows Zipf(θ) (Wolf et al.'s disk-load-imbalance
//! model). As the offered load `R` grows, disk `d` carries
//! `n_d = min(⌊R·p_d⌋, N)` streams; the server is feasible while the
//! summed minimum memory requirement (Theorems 2–4 per scheme) fits in
//! `M`. The capacity at `M` is the largest feasible `Σ n_d` — both sides
//! are monotone in `R`, so a scan suffices.

use vod_core::{memory, SchemeKind, SizeTable, SystemParams};
use vod_types::Bits;
use vod_workload::Zipf;

use crate::figures::paper_k;

/// One point of Fig. 13: memory available vs. concurrent streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityPoint {
    /// Total server memory.
    pub memory: Bits,
    /// Maximum concurrent streams the scheme sustains.
    pub concurrent: usize,
    /// Memory actually required at that operating point.
    pub used: Bits,
}

/// Computes the Fig. 13 curve for one scheme over the given memory sizes.
///
/// `disk_theta` is the Zipf skew of disk load (0, 0.5, 1 in the paper);
/// `disks` is 10 in the paper's setup.
///
/// # Panics
///
/// Panics on infeasible parameters (the paper defaults are always valid).
#[must_use]
pub fn fig13_capacity(
    params: &SystemParams,
    scheme: SchemeKind,
    disks: usize,
    disk_theta: f64,
    memory_sizes: &[Bits],
) -> Vec<CapacityPoint> {
    params.validate().expect("paper parameters are feasible");
    let zipf = Zipf::new(disks, disk_theta).expect("valid Zipf parameters");
    let big_n = params.max_requests();
    let table = SizeTable::build(params);
    let k = paper_k(params.method);

    let per_disk_mem = |n: usize| -> Bits {
        match scheme {
            SchemeKind::Static | SchemeKind::StaticMaxUse => memory::min_memory_static(params, n),
            SchemeKind::NaiveDynamic => {
                let bs = vod_core::static_scheme::static_buffer_size(params, (n + k).min(big_n));
                memory::min_memory_with(params, bs, n, k)
            }
            SchemeKind::Dynamic => memory::min_memory_dynamic(params, &table, n, k),
        }
    };

    // Precompute, for each offered load R, the stream count and memory.
    // R ranges until every disk saturates even under the most skewed
    // share; the smallest share bounds the necessary range.
    let min_share = (1..=disks)
        .map(|d| zipf.probability(d))
        .fold(f64::INFINITY, f64::min);
    let r_max = ((big_n * disks) as f64 / min_share).ceil() as usize + 1;

    let mut points = Vec::with_capacity(memory_sizes.len());
    for &mem in memory_sizes {
        let mut best = CapacityPoint {
            memory: mem,
            concurrent: 0,
            used: Bits::ZERO,
        };
        let mut saturated = true;
        for r in 0..=r_max {
            let mut streams = 0usize;
            let mut used = Bits::ZERO;
            for d in 1..=disks {
                let n_d = (((r as f64) * zipf.probability(d)).floor() as usize).min(big_n);
                streams += n_d;
                used += per_disk_mem(n_d);
            }
            if used <= mem {
                if streams > best.concurrent {
                    best.concurrent = streams;
                    best.used = used;
                }
                if streams == big_n * disks {
                    break; // all disks full; more load changes nothing
                }
            } else {
                saturated = false;
                break; // memory is the binding constraint from here on
            }
        }
        let _ = saturated;
        points.push(best);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sched::SchedulingMethod;

    fn gb_range() -> Vec<Bits> {
        (1..=11)
            .map(|g| Bits::from_gigabytes(f64::from(g)))
            .collect()
    }

    fn params() -> SystemParams {
        SystemParams::paper_defaults(SchedulingMethod::RoundRobin)
    }

    #[test]
    fn capacity_is_monotone_in_memory() {
        for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
            let pts = fig13_capacity(&params(), scheme, 10, 0.0, &gb_range());
            let mut prev = 0;
            for p in &pts {
                assert!(p.concurrent >= prev, "{scheme}: dipped at {}", p.memory);
                assert!(p.used <= p.memory);
                prev = p.concurrent;
            }
        }
    }

    #[test]
    fn dynamic_dominates_static_at_every_memory_size() {
        for theta in [0.0, 0.5, 1.0] {
            let st = fig13_capacity(&params(), SchemeKind::Static, 10, theta, &gb_range());
            let dy = fig13_capacity(&params(), SchemeKind::Dynamic, 10, theta, &gb_range());
            for (s, d) in st.iter().zip(&dy) {
                assert!(
                    d.concurrent >= s.concurrent,
                    "θ={theta} at {}: dynamic {} < static {}",
                    s.memory,
                    d.concurrent,
                    s.concurrent
                );
            }
        }
    }

    #[test]
    fn improvement_ratio_matches_paper_band() {
        // Table 5: averaged over memory sizes, the dynamic scheme serves
        // 2.36–3.25× the static scheme's streams (θ = 0 → 2.36,
        // θ = 1 → 3.25). Our analytic model should land in that
        // neighbourhood.
        for (theta, lo, hi) in [(0.0, 1.8, 3.2), (1.0, 2.3, 4.2)] {
            let st = fig13_capacity(&params(), SchemeKind::Static, 10, theta, &gb_range());
            let dy = fig13_capacity(&params(), SchemeKind::Dynamic, 10, theta, &gb_range());
            let mut ratios = Vec::new();
            for (s, d) in st.iter().zip(&dy) {
                if s.concurrent > 0 {
                    ratios.push(d.concurrent as f64 / s.concurrent as f64);
                }
            }
            let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
            assert!(
                (lo..=hi).contains(&avg),
                "θ={theta}: average improvement {avg} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn ample_memory_reaches_the_disk_limit_for_both() {
        let big = [Bits::from_gigabytes(12.0)];
        let st = fig13_capacity(&params(), SchemeKind::Static, 10, 1.0, &big);
        let dy = fig13_capacity(&params(), SchemeKind::Dynamic, 10, 1.0, &big);
        assert_eq!(st[0].concurrent, 790);
        assert_eq!(dy[0].concurrent, 790);
    }

    #[test]
    fn skewed_load_lowers_total_capacity() {
        // With θ=0, the hot disk saturates early while cold disks idle, so
        // the same memory yields fewer streams than θ=1.
        let mem = [Bits::from_gigabytes(6.0)];
        let skew = fig13_capacity(&params(), SchemeKind::Dynamic, 10, 0.0, &mem);
        let unif = fig13_capacity(&params(), SchemeKind::Dynamic, 10, 1.0, &mem);
        assert!(skew[0].concurrent < unif[0].concurrent);
    }
}
