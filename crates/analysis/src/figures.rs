//! Analytic figure series: buffer sizes, worst-case latency, memory.

use vod_core::{memory, static_scheme, SizeTable, SystemParams};
use vod_sched::{worst_initial_latency, SchedulingMethod};

/// One `(n, static, dynamic)` series over the load range `1..=N`.
#[derive(Clone, Debug)]
pub struct SchemeSeries {
    /// The scheduling method the series was computed for.
    pub method: SchedulingMethod,
    /// The `k` (estimated additional requests) used for the dynamic
    /// scheme — the measured worst-case averages of §5.1: 4 for
    /// Round-Robin, 3 for Sweep\*/GSS\*.
    pub k: usize,
    /// `(n, static value, dynamic value)` triples; units depend on the
    /// figure (bits or seconds).
    pub points: Vec<(usize, f64, f64)>,
}

/// The `k` the paper plugs into the analytic figures (§5.1, footnote 9):
/// the worst-case integer average of estimated additional requests
/// measured in Fig. 7a — 4 under Round-Robin (`T_log` = 40 min), 3 under
/// Sweep\*/GSS\* (`T_log` = 20 min).
#[must_use]
pub fn paper_k(method: SchedulingMethod) -> usize {
    match method {
        SchedulingMethod::RoundRobin => 4,
        _ => 3,
    }
}

/// Fig. 9: buffer size (bits) allocated by each scheme vs. the number of
/// streams in service.
#[must_use]
pub fn fig9_buffer_sizes(method: SchedulingMethod) -> SchemeSeries {
    let params = SystemParams::paper_defaults(method);
    let table = SizeTable::build(&params);
    let k = paper_k(method);
    let static_size = static_scheme::static_allocated_size(&params).as_f64();
    let points = (1..=params.max_requests())
        .map(|n| (n, static_size, table.size(n, k).as_f64()))
        .collect();
    SchemeSeries { method, k, points }
}

/// Fig. 10: worst-case initial latency (seconds) vs. streams in service,
/// by applying each scheme's buffer size to Eqs. 2–4.
#[must_use]
pub fn fig10_worst_latency(method: SchedulingMethod) -> SchemeSeries {
    let params = SystemParams::paper_defaults(method);
    let table = SizeTable::build(&params);
    let k = paper_k(method);
    let static_size = static_scheme::static_allocated_size(&params);
    let points = (1..=params.max_requests())
        .map(|n| {
            let il_static =
                worst_initial_latency(method, &params.disk, static_size, n).as_secs_f64();
            let il_dynamic =
                worst_initial_latency(method, &params.disk, table.size(n, k), n).as_secs_f64();
            (n, il_static, il_dynamic)
        })
        .collect();
    SchemeSeries { method, k, points }
}

/// Fig. 12: minimum memory requirement (bits) vs. streams in service
/// (Theorems 2–4 for the dynamic scheme; their `BS(N)`, `k = N − n`
/// instantiation for the static one).
#[must_use]
pub fn fig12_min_memory(method: SchedulingMethod) -> SchemeSeries {
    let params = SystemParams::paper_defaults(method);
    let table = SizeTable::build(&params);
    let k = paper_k(method);
    let points = (1..=params.max_requests())
        .map(|n| {
            let stat = memory::min_memory_static(&params, n).as_f64();
            let dyna = memory::min_memory_dynamic(&params, &table, n, k).as_f64();
            (n, stat, dyna)
        })
        .collect();
    SchemeSeries { method, k, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_static_is_flat_and_dynamic_monotone() {
        for m in SchedulingMethod::paper_methods() {
            let s = fig9_buffer_sizes(m);
            assert_eq!(s.points.len(), 79);
            let first_static = s.points[0].1;
            let mut prev_dyn = 0.0;
            for &(n, st, dy) in &s.points {
                if m != SchedulingMethod::Sweep {
                    // Sweep's DL (and hence BS(N)) is n-free only per-n;
                    // the static *allocation* is constant for all methods.
                    assert!((st - first_static).abs() < 1e-9, "{m} n={n}");
                }
                // Sweep*'s per-buffer DL is γ(Cyln/n) and GSS*'s is
                // γ(Cyln/min(g, n)); both *shrink* as n grows at small n,
                // so their dynamic sizes may dip slightly. Round-Robin's
                // DL is constant and strictly monotone.
                if m == SchedulingMethod::RoundRobin {
                    assert!(dy >= prev_dyn, "{m}: dynamic dips at n={n}");
                }
                // Near full load (n + k ≥ N) the dynamic size hits the
                // static boundary, but with the *current* n's DL (Table 2
                // applies γ(Cyln/n) for Sweep*), so it can poke a couple
                // of percent above BS(N) computed at n = N.
                assert!(dy <= st * 1.03, "{m}: dynamic above static at n={n}");
                prev_dyn = dy;
            }
            // Converges at full load.
            let last = s.points.last().expect("non-empty");
            assert!((last.1 - last.2).abs() / last.1 < 1e-9, "{m}");
        }
    }

    #[test]
    fn fig9_uses_paper_k() {
        assert_eq!(fig9_buffer_sizes(SchedulingMethod::RoundRobin).k, 4);
        assert_eq!(fig9_buffer_sizes(SchedulingMethod::Sweep).k, 3);
        assert_eq!(fig9_buffer_sizes(SchedulingMethod::GSS_PAPER).k, 3);
    }

    #[test]
    fn fig10_static_round_robin_is_about_two_seconds() {
        // 2·DL + BS(N)/TR ≈ 2·23.8 ms + 1.88 s ≈ 1.93 s — the plateau of
        // Fig. 10a.
        let s = fig10_worst_latency(SchedulingMethod::RoundRobin);
        let (_, st, dy) = s.points[9]; // n = 10
        assert!((st - 1.93).abs() < 0.05, "static {st}");
        assert!(dy < 0.2, "dynamic at n=10 should be far below: {dy}");
    }

    #[test]
    fn fig10_dynamic_below_static_almost_everywhere() {
        // Same boundary artifact as Fig. 9: within a hair of full load the
        // dynamic buffer uses DL(n) rather than DL(N), so allow 3%.
        for m in SchedulingMethod::paper_methods() {
            for &(n, st, dy) in &fig10_worst_latency(m).points {
                assert!(dy <= st * 1.03, "{m} at n={n}: {dy} > {st}");
            }
        }
    }

    #[test]
    fn fig10_sweep_latency_grows_with_n() {
        let s = fig10_worst_latency(SchedulingMethod::Sweep);
        let early = s.points[4].1;
        let late = s.points[70].1;
        assert!(
            late > early * 2.0,
            "Eq. 3 is ~linear in n: {early} vs {late}"
        );
    }

    #[test]
    fn fig12_static_memory_is_large_and_dynamic_converges() {
        for m in SchedulingMethod::paper_methods() {
            let s = fig12_min_memory(m);
            for &(n, st, dy) in &s.points {
                // Same full-load boundary artifact: the dynamic k (4 resp.
                // 3) slightly exceeds the static instantiation's
                // k = N − n there (worth ~3.5% on Theorem 2's stagger
                // discount at n = 78).
                assert!(dy <= st * 1.05, "{m} n={n}");
                assert!(st > 0.0 && dy > 0.0, "{m} n={n}");
            }
            // At n = N the buffer sizes coincide, but the figures keep
            // the measured k (4 / 3) in the memory theorems while the
            // static instantiation uses k = 0 there: a ~2% stagger-term
            // difference remains.
            let last = s.points.last().expect("non-empty");
            assert!((last.1 - last.2).abs() / last.1 < 0.05, "{m} full load");
        }
    }

    #[test]
    fn fig12_round_robin_full_load_is_about_a_gigabyte() {
        // Mem(79) ≈ 79·BS/2 + 79·CR·DL ≈ 1.1 GB — the paper's Fig. 12a
        // right edge, and the reason Fig. 13's curves meet near 11 GB for
        // ten disks.
        let s = fig12_min_memory(SchedulingMethod::RoundRobin);
        let last = s.points.last().expect("non-empty");
        let gb = vod_types::Bits::new(last.1).as_gigabytes();
        assert!((gb - 1.13).abs() < 0.1, "full-load memory {gb} GB");
    }
}
