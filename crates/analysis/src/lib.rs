//! Closed-form (analysis-side) evaluation of the paper, plus the table
//! and CSV rendering shared by the experiment harness.
//!
//! The paper's evaluation interleaves *analytic* figures — computed
//! directly from the formulas — with *simulated* ones. This crate owns the
//! analytic half:
//!
//! * [`figures::fig9_buffer_sizes`] — buffer size vs. `n` (Fig. 9),
//! * [`figures::fig10_worst_latency`] — worst-case initial latency vs.
//!   `n` (Fig. 10, Eqs. 2–4),
//! * [`figures::fig12_min_memory`] — minimum memory vs. `n` (Fig. 12,
//!   Theorems 2–4),
//! * [`capacity::fig13_capacity`] — concurrent streams vs. system memory
//!   on a 10-disk array with Zipf disk load (Fig. 13),
//!
//! and the presentation helpers ([`table::Table`], [`table::write_csv`])
//! that the `repro` binary uses for every experiment, analytic or
//! simulated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod figures;
pub mod table;

pub use capacity::{fig13_capacity, CapacityPoint};
pub use figures::{fig10_worst_latency, fig12_min_memory, fig9_buffer_sizes, SchemeSeries};
pub use table::{write_csv, Table};
