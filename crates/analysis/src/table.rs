//! Aligned text tables and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table with a title, rendered to stdout by
/// the `repro` binary and mirrored as CSV under `results/`.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count should match the header.
    pub fn row(&mut self, cells: &[String]) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{h:>width$}  ", width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(line, "{cell:>width$}  ", width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Serializes as CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", escaped.join(","));
        }
        out
    }
}

/// Writes a table's CSV under `dir/name.csv`, creating the directory.
///
/// # Errors
///
/// Returns any I/O error from directory creation or the write.
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.csv")), table.to_csv())
}

/// Formats a float with a sensible number of digits for tables.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "value"]);
        t.row(&["1".into(), "10.5".into()]);
        t.row(&["20".into(), "3".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let out = sample().render();
        assert!(out.contains("## Demo"));
        let lines: Vec<&str> = out.lines().collect();
        // Header then separator then two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains('n'));
        assert!(lines[3].ends_with("10.5"));
        assert!(!sample().is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn csv_round_trip() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some("n,value"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["hello, \"world\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn writes_csv_file() {
        let dir = std::env::temp_dir().join("vod_analysis_table_test");
        write_csv(&sample(), &dir, "demo").expect("writable temp dir");
        let content = std::fs::read_to_string(dir.join("demo.csv")).expect("file written");
        assert!(content.starts_with("n,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.3456), "12.346");
        assert_eq!(fmt_f64(0.01234), "0.01234");
    }
}
