//! Property tests for the analytic capacity model.

use proptest::prelude::*;
use vod_analysis::fig13_capacity;
use vod_core::{SchemeKind, SystemParams};
use vod_sched::SchedulingMethod;
use vod_types::Bits;

fn params_for(method: SchedulingMethod) -> SystemParams {
    SystemParams::paper_defaults(method)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn capacity_is_monotone_in_memory_and_bounded(
        theta in 0.0f64..=1.0,
        disks in 1usize..=10,
        gb_lo in 0.5f64..4.0,
    ) {
        let memories = [
            Bits::from_gigabytes(gb_lo),
            Bits::from_gigabytes(gb_lo * 2.0),
            Bits::from_gigabytes(gb_lo * 4.0),
        ];
        for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
            let pts = fig13_capacity(
                &params_for(SchedulingMethod::RoundRobin),
                scheme,
                disks,
                theta,
                &memories,
            );
            prop_assert_eq!(pts.len(), 3);
            let mut prev = 0usize;
            for p in &pts {
                prop_assert!(p.concurrent >= prev, "{scheme}: monotone in memory");
                prop_assert!(p.concurrent <= 79 * disks, "{scheme}: disk bound");
                prop_assert!(p.used <= p.memory, "{scheme}: feasible operating point");
                prev = p.concurrent;
            }
        }
    }

    #[test]
    fn dynamic_never_loses_to_static(
        theta in 0.0f64..=1.0,
        gb in 0.5f64..12.0,
    ) {
        let memories = [Bits::from_gigabytes(gb)];
        let p = params_for(SchedulingMethod::RoundRobin);
        let st = fig13_capacity(&p, SchemeKind::Static, 10, theta, &memories);
        let dy = fig13_capacity(&p, SchemeKind::Dynamic, 10, theta, &memories);
        // Within a hair of full load the dynamic curve keeps the measured
        // k = 4 in Theorem 2 while the static instantiation has k = 0, so
        // its memory is ~3% higher and static can edge ahead by a few
        // streams right at the crossover (the same boundary artifact as
        // Figs. 9/12). Everywhere else dynamic dominates outright.
        prop_assert!(
            dy[0].concurrent + 25 >= st[0].concurrent,
            "dynamic {} vs static {}",
            dy[0].concurrent,
            st[0].concurrent
        );
        if st[0].concurrent < 700 {
            prop_assert!(dy[0].concurrent >= st[0].concurrent);
        }
    }

    #[test]
    fn more_disks_never_reduce_capacity(theta in 0.0f64..=1.0) {
        let memories = [Bits::from_gigabytes(4.0)];
        let p = params_for(SchedulingMethod::RoundRobin);
        let mut prev = 0usize;
        for disks in [1usize, 2, 5, 10] {
            let pts = fig13_capacity(&p, SchemeKind::Dynamic, disks, theta, &memories);
            prop_assert!(
                pts[0].concurrent >= prev,
                "capacity dropped going to {disks} disks"
            );
            prev = pts[0].concurrent;
        }
    }
}
