//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_table_vs_direct` — §3.3's precomputation: allocate 10 000
//!   buffers through the table vs. through Theorem 1 directly.
//! * `ablation_alpha` — α's cost: a fixed burst workload simulated at
//!   α ∈ {1, 2, 4}; larger α adapts faster (fewer deferrals) but sizes
//!   larger buffers, so the run itself gets heavier.
//! * `ablation_naive_vs_dynamic` — the Fig. 3 scheme vs.
//!   predict-and-enforce under a rising load (the naive runs *and*
//!   underflows; this times the runs, the integration tests check the
//!   underflows).
//! * `ablation_page_granularity` — bit-granular vs. page-granular pool
//!   accounting (§2.1's idealization).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vod_buffer::{BufferPool, Granularity, PoolConfig};
use vod_core::closed_form::buffer_size_closed_form;
use vod_core::{SchemeKind, SizeTable, SystemParams};
use vod_sched::SchedulingMethod;
use vod_sim::{DiskEngine, EngineConfig};
use vod_types::{Bits, DiskId, Instant, RequestId, Seconds, VideoId};
use vod_workload::Arrival;

fn rising_load() -> Vec<Arrival> {
    (0..50u64)
        .map(|i| Arrival {
            at: Instant::from_secs(1.0 + f64::from(i as u32) * 30.0),
            disk: DiskId::new(0),
            video: VideoId::new(i % 6),
            viewing: Seconds::from_minutes(45.0),
        })
        .collect()
}

fn bench_table_vs_direct(c: &mut Criterion) {
    let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let table = SizeTable::build(&p);
    let mut group = c.benchmark_group("ablation_table_vs_direct");
    group.bench_function("10k_allocations_via_table", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000usize {
                acc += table.size(i % 79, i % 7).as_f64();
            }
            black_box(acc)
        })
    });
    group.bench_function("10k_allocations_via_theorem1", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000usize {
                acc += buffer_size_closed_form(&p, i % 79, i % 7).as_f64();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let arrivals = rising_load();
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for alpha in [1u32, 2, 4] {
        group.bench_function(format!("alpha_{alpha}"), |b| {
            b.iter(|| {
                let mut cfg =
                    EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
                cfg.params.alpha = alpha;
                let engine = DiskEngine::new(cfg).expect("valid engine config");
                black_box(engine.run(&arrivals))
            })
        });
    }
    group.finish();
}

fn bench_naive_vs_dynamic(c: &mut Criterion) {
    let arrivals = rising_load();
    let mut group = c.benchmark_group("ablation_naive_vs_dynamic");
    group.sample_size(10);
    for scheme in [SchemeKind::NaiveDynamic, SchemeKind::Dynamic] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let engine =
                    DiskEngine::new(EngineConfig::paper(SchedulingMethod::RoundRobin, scheme))
                        .expect("valid engine config");
                black_box(engine.run(&arrivals))
            })
        });
    }
    group.finish();
}

fn bench_page_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_page_granularity");
    let configs = [
        ("variable", PoolConfig::unbounded()),
        (
            "pages_4kib",
            PoolConfig {
                capacity: None,
                granularity: Granularity::Pages {
                    page: Bits::from_bytes(4096.0),
                },
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            let pool = BufferPool::new(cfg).expect("valid pool config");
            for i in 0..64u64 {
                pool.register(RequestId::new(i)).expect("fresh ids");
            }
            b.iter(|| {
                for i in 0..64u64 {
                    let id = RequestId::new(i);
                    pool.fill(id, Bits::from_megabits(1.0)).expect("unbounded");
                    pool.consume(id, Bits::from_megabits(1.0)).expect("filled");
                }
                black_box(pool.used())
            })
        });
    }
    group.finish();
}

fn bench_seek_model(c: &mut Criterion) {
    // DESIGN.md's `ablation_seek_model`: worst-case DL (the paper's
    // modelling assumption) vs. sampled head movement.
    let arrivals = rising_load();
    let mut group = c.benchmark_group("ablation_seek_model");
    group.sample_size(10);
    for (name, model) in [
        ("worst_case", vod_disk::LatencyModel::WorstCase),
        ("sampled", vod_disk::LatencyModel::Sampled),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = EngineConfig::paper(SchedulingMethod::Sweep, SchemeKind::Dynamic);
                cfg.latency_model = model;
                let engine = DiskEngine::new(cfg).expect("valid engine config");
                black_box(engine.run(&arrivals))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table_vs_direct,
    bench_alpha,
    bench_naive_vs_dynamic,
    bench_page_granularity,
    bench_seek_model
);
criterion_main!(benches);
