//! Microbenchmarks of the paper's core math: Theorem 1 (closed form vs.
//! the raw recurrence vs. the precomputed table — quantifying §3.3's
//! precomputation argument), Eq. 5, and the memory theorems.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vod_core::closed_form::buffer_size_closed_form;
use vod_core::memory::{min_memory_dynamic, min_memory_static};
use vod_core::recurrence::buffer_size_recursive;
use vod_core::static_scheme::static_buffer_size;
use vod_core::{SizeTable, SystemParams};
use vod_sched::SchedulingMethod;

fn params() -> SystemParams {
    SystemParams::paper_defaults(SchedulingMethod::RoundRobin)
}

fn bench_buffer_size(c: &mut Criterion) {
    let p = params();
    let table = SizeTable::build(&p);
    let mut group = c.benchmark_group("buffer_size");

    // The paper's runtime-efficiency claim: per-allocation evaluation of
    // Theorem 1 costs real CPU; the O(N²) table makes it a lookup.
    group.bench_function("recurrence", |b| {
        b.iter(|| buffer_size_recursive(&p, black_box(20), black_box(3)))
    });
    group.bench_function("closed_form", |b| {
        b.iter(|| buffer_size_closed_form(&p, black_box(20), black_box(3)))
    });
    group.bench_function("table_lookup", |b| {
        b.iter(|| table.size(black_box(20), black_box(3)))
    });
    group.bench_function("eq5_static", |b| {
        b.iter(|| static_buffer_size(&p, black_box(79)))
    });
    group.finish();
}

fn bench_table_build(c: &mut Criterion) {
    let p = params();
    c.bench_function("size_table_build_full_n79", |b| {
        b.iter(|| SizeTable::build(black_box(&p)))
    });
}

fn bench_memory_theorems(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_theorems");
    for method in SchedulingMethod::paper_methods() {
        let p = SystemParams::paper_defaults(method);
        let table = SizeTable::build(&p);
        group.bench_function(format!("dynamic_{}", method.label()), |b| {
            b.iter(|| min_memory_dynamic(&p, &table, black_box(40), black_box(3)))
        });
        group.bench_function(format!("static_{}", method.label()), |b| {
            b.iter(|| min_memory_static(&p, black_box(40)))
        });
    }
    group.finish();
}

fn bench_admission_path(c: &mut Criterion) {
    use vod_core::{AdmissionController, ArrivalLog};
    use vod_types::{Instant, RequestId, Seconds};

    // The per-request hot path of a live server: note_arrival +
    // can_admit + allocate.
    c.bench_function("admission_allocate_n40", |b| {
        let mut ctl =
            AdmissionController::new(params(), Seconds::from_minutes(40.0)).expect("valid");
        let t = Instant::ZERO;
        // Note the whole burst first so k_log (and with it the admission
        // bound) covers all 40 admissions.
        for _ in 0..40 {
            ctl.note_arrival(t);
        }
        for i in 0..40u64 {
            ctl.admit(RequestId::new(i))
                .expect("bound covers the burst");
            ctl.allocate(RequestId::new(i), t, Seconds::from_secs(2.0))
                .expect("admitted");
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = RequestId::new(i % 40);
            black_box(
                ctl.allocate(
                    id,
                    t + Seconds::from_millis(i as f64),
                    Seconds::from_secs(2.0),
                )
                .expect("in service"),
            )
        })
    });

    // The k_log sliding-window estimator under a loaded history.
    c.bench_function("k_log_1000_arrivals", |b| {
        let mut log = ArrivalLog::new(Seconds::from_minutes(40.0));
        for i in 0..1000u32 {
            log.record(Instant::from_secs(f64::from(i) * 1.7));
        }
        let now = Instant::from_secs(1000.0 * 1.7);
        b.iter(|| black_box(log.k_log(now, Seconds::from_secs(5.0))))
    });
}

criterion_group!(
    benches,
    bench_buffer_size,
    bench_table_build,
    bench_memory_theorems,
    bench_admission_path
);
criterion_main!(benches);
