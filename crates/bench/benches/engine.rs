//! Throughput of the simulators: buffer-level engine runs (one simulated
//! hour, per scheme × method) and the admission-level capacity simulator.
//! These time the code paths every figure regeneration exercises.
//!
//! The `admission_bound` and `cycle_plan` groups microbenchmark the
//! incremental hot-path structures at n ∈ {10, 100, 1000}: the counting
//! multiset behind the O(1) Assumption-1/2 admission bound, the
//! generational slab behind the stream store, and the short-circuiting
//! order repair behind the per-cycle position sort. (A real controller
//! tops out at the paper's N = 79 concurrent streams, so the scaling
//! points above that drive the structures directly — the same code the
//! engine runs, minus the simulation around it.)

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vod_core::{AdmissionController, MinMultiset, SchemeKind, SizeTable, SystemParams};
use vod_sched::SchedulingMethod;
use vod_sim::{CapacityConfig, CapacitySim, DiskEngine, EngineConfig, Slab};
use vod_types::{Bits, Instant, RequestId, Seconds};
use vod_workload::{generate, Workload, WorkloadConfig};

fn one_hour_workload(seed: u64) -> Workload {
    let mut cfg = WorkloadConfig::paper_single_disk(1.0, 40.0);
    cfg.duration = Seconds::from_hours(1.0);
    cfg.peak = Seconds::from_minutes(30.0);
    generate(&cfg, seed).expect("valid workload")
}

fn bench_engine(c: &mut Criterion) {
    let workload = one_hour_workload(1);
    let mut group = c.benchmark_group("disk_engine_1h");
    group.sample_size(10);
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        for method in SchedulingMethod::paper_methods() {
            group.bench_function(format!("{}_{}", scheme.label(), method.label()), |b| {
                b.iter(|| {
                    let engine = DiskEngine::new(EngineConfig::paper(method, scheme))
                        .expect("valid engine config");
                    black_box(engine.run(&workload.arrivals))
                })
            });
        }
    }
    group.finish();
}

fn bench_capacity_sim(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::paper_ten_disk(0.5, 5_000.0);
    cfg.duration = Seconds::from_hours(6.0);
    cfg.peak = Seconds::from_hours(2.0);
    let workload = generate(&cfg, 2).expect("valid workload");
    let mut group = c.benchmark_group("capacity_sim_10disk");
    group.sample_size(20);
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        group.bench_function(scheme.label(), |b| {
            let sim = CapacitySim::new(CapacityConfig {
                params: SystemParams::paper_defaults(SchedulingMethod::RoundRobin),
                scheme,
                disks: 10,
                total_memory: Bits::from_gigabytes(4.0),
                t_log: Seconds::from_minutes(40.0),
            })
            .expect("valid capacity config");
            b.iter(|| black_box(sim.run(&workload)))
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let cfg = WorkloadConfig::paper_single_disk(0.0, 1440.0);
    c.bench_function("workload_generate_24h", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(generate(&cfg, seed).expect("valid workload"))
        })
    });
}

/// The admission-bound query path: one allocate-shaped update (remove
/// old bound, insert new) followed by the min query, against a multiset
/// holding `n` outstanding `(n_i + k_i)` bounds.
fn bench_admission_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_bound");
    for n in [10usize, 100, 1000] {
        let mut agg = MinMultiset::new();
        for i in 0..n {
            // Bound values cluster the way real allocations do: n + k
            // with k small relative to n.
            agg.insert(n + i % 7);
        }
        let mut i = 0usize;
        group.bench_function(format!("multiset_update_query/{n}"), |b| {
            b.iter(|| {
                let old = n + i % 7;
                let new = n + (i + 1) % 7;
                agg.remove(old);
                agg.insert(new);
                i += 1;
                black_box(agg.min())
            })
        });
    }
    // The full controller at paper load: every active stream holds an
    // allocation, then the bound is queried the way `plan_cycle_start`
    // queries it.
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let n = params.max_requests();
    let mut ctl =
        AdmissionController::new(params, Seconds::from_minutes(40.0)).expect("valid params");
    let period = Seconds::from_secs(2.0);
    for i in 0..u64::try_from(n).expect("small n") {
        let id = RequestId::new(i);
        ctl.note_arrival(Instant::from_secs(i as f64 * 0.05));
        if ctl.can_admit() {
            ctl.admit(id).expect("under bound");
            let _ = ctl.allocate(id, Instant::from_secs(i as f64 * 0.05 + 0.01), period);
        }
    }
    group.bench_function(format!("controller_full_load/{n}"), |b| {
        b.iter(|| black_box(ctl.admission_bound()))
    });
    group.finish();
}

/// The cycle-planning data layer: slab access churn (the per-service
/// lookup pattern) and order repair (the already-sorted check plus the
/// stable `total_cmp` fallback after a positional perturbation).
fn bench_cycle_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_plan");
    for n in [10usize, 100, 1000] {
        let mut slab: Slab<u64> = Slab::new();
        let slots: Vec<_> = (0..n as u64).map(|v| slab.insert(v)).collect();
        group.bench_function(format!("slab_scan/{n}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &s in &slots {
                    acc = acc.wrapping_add(*slab.get(s).expect("live"));
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("slab_churn/{n}"), |b| {
            let mut cursor = 0usize;
            b.iter(|| {
                let mut local = slab.clone();
                let victim = slots[cursor % n];
                cursor += 1;
                local.remove(victim);
                black_box(local.insert(u64::MAX))
            })
        });
        // Order repair: ranks are stable across cycles, so the common
        // case is one O(n) sortedness check; the fallback is a stable
        // sort over the scratch pairs.
        let sorted: Vec<(f64, usize)> = (0..n).map(|i| (i as f64, i)).collect();
        group.bench_function(format!("order_repair_sorted/{n}"), |b| {
            b.iter(|| black_box(sorted.windows(2).all(|w| w[0].0 <= w[1].0)))
        });
        group.bench_function(format!("order_repair_resort/{n}"), |b| {
            b.iter(|| {
                let mut scratch = sorted.clone();
                // One newcomer bubbled in out of position.
                scratch[n / 2].0 = -1.0;
                if !scratch.windows(2).all(|w| w[0].0 <= w[1].0) {
                    scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
                }
                black_box(scratch.len())
            })
        });
    }
    group.finish();
}

/// The idle engine's next-interesting-time computation (DESIGN §11): a
/// peek at the departure/deferral-due heap head plus a min over the
/// three event candidates. This is the whole per-jump cost the
/// fast-forward path pays in place of a hop-by-hop idle scan, measured
/// against the heap population it peeks over.
fn bench_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_forward");
    for n in [10usize, 100, 1000] {
        // Same shape as the engine's due heap: (due instant, id, slot)
        // min-heap via `Reverse`. The horizon only ever *peeks*.
        let heap: BinaryHeap<Reverse<(Instant, u64, usize)>> = (0..n)
            .map(|i| Reverse((Instant::from_secs(10.0 + i as f64 * 0.37), i as u64, i)))
            .collect();
        let next_arrival = Instant::from_secs(42.0);
        let deferral_slot = Instant::from_secs(17.5);
        group.bench_function(format!("next_event_horizon/{n}"), |b| {
            b.iter(|| {
                let mut horizon = black_box(next_arrival);
                if let Some(&Reverse((due, _, _))) = heap.peek() {
                    horizon = horizon.min(due);
                }
                horizon = horizon.min(black_box(deferral_slot));
                black_box(horizon)
            })
        });
    }
    group.finish();
}

/// The shared BS_k table cache's hit path: n nodes of a cluster cell
/// booting with identical `SystemParams` resolve n `Arc` clones of one
/// memoized table instead of n `O(N²)` builds. n = 1000 models repeated
/// engine construction across a whole bench matrix.
fn bench_table_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_cache");
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    // Prime the process-wide memo so every measured call is a hit.
    let primed = SizeTable::shared(&params);
    black_box(primed.max_requests());
    for n in [10usize, 100, 1000] {
        group.bench_function(format!("n_node_startup/{n}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..n {
                    total += black_box(SizeTable::shared(&params)).max_requests();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_capacity_sim,
    bench_workload_generation,
    bench_admission_bound,
    bench_cycle_plan,
    bench_fast_forward,
    bench_table_cache
);
criterion_main!(benches);
