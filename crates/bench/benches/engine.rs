//! Throughput of the simulators: buffer-level engine runs (one simulated
//! hour, per scheme × method) and the admission-level capacity simulator.
//! These time the code paths every figure regeneration exercises.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vod_core::{SchemeKind, SystemParams};
use vod_sched::SchedulingMethod;
use vod_sim::{CapacityConfig, CapacitySim, DiskEngine, EngineConfig};
use vod_types::{Bits, Seconds};
use vod_workload::{generate, Workload, WorkloadConfig};

fn one_hour_workload(seed: u64) -> Workload {
    let mut cfg = WorkloadConfig::paper_single_disk(1.0, 40.0);
    cfg.duration = Seconds::from_hours(1.0);
    cfg.peak = Seconds::from_minutes(30.0);
    generate(&cfg, seed).expect("valid workload")
}

fn bench_engine(c: &mut Criterion) {
    let workload = one_hour_workload(1);
    let mut group = c.benchmark_group("disk_engine_1h");
    group.sample_size(10);
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        for method in SchedulingMethod::paper_methods() {
            group.bench_function(format!("{}_{}", scheme.label(), method.label()), |b| {
                b.iter(|| {
                    let engine = DiskEngine::new(EngineConfig::paper(method, scheme))
                        .expect("valid engine config");
                    black_box(engine.run(&workload.arrivals))
                })
            });
        }
    }
    group.finish();
}

fn bench_capacity_sim(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::paper_ten_disk(0.5, 5_000.0);
    cfg.duration = Seconds::from_hours(6.0);
    cfg.peak = Seconds::from_hours(2.0);
    let workload = generate(&cfg, 2).expect("valid workload");
    let mut group = c.benchmark_group("capacity_sim_10disk");
    group.sample_size(20);
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        group.bench_function(scheme.label(), |b| {
            let sim = CapacitySim::new(CapacityConfig {
                params: SystemParams::paper_defaults(SchedulingMethod::RoundRobin),
                scheme,
                disks: 10,
                total_memory: Bits::from_gigabytes(4.0),
                t_log: Seconds::from_minutes(40.0),
            })
            .expect("valid capacity config");
            b.iter(|| black_box(sim.run(&workload)))
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let cfg = WorkloadConfig::paper_single_disk(0.0, 1440.0);
    c.bench_function("workload_generate_24h", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(generate(&cfg, seed).expect("valid workload"))
        })
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_capacity_sim,
    bench_workload_generation
);
criterion_main!(benches);
