//! Baseline comparison for `repro bench --check`.
//!
//! CI pins a committed `BENCH_perf.json` (generated with
//! `repro bench --smoke`) and re-runs the same matrix on every change.
//! Everything deterministic — the matrix shape, the admission counters,
//! the peak pool memory — must match the baseline **exactly**: the
//! simulation is bit-reproducible per seed, so any drift is a semantic
//! change, not noise. Wall-clock is host-dependent and only checked
//! against a generous slowdown factor, so the gate catches order-of-
//! magnitude performance regressions without flaking on CI hosts.
//!
//! The parser below covers exactly the JSON the report writer
//! ([`crate::perf::BenchReport::to_json`]) produces. Floats are written
//! in shortest round-trip form ([`vod_obs::json::number`]), so parsing
//! them back recovers identical bits and float fields can be compared
//! for equality.

use std::collections::BTreeMap;

use crate::cluster::ClusterBenchReport;
use crate::perf::BenchReport;

/// How many times slower than baseline a cell's wall-clock may be before
/// the check fails. Deliberately loose: the gate is for regressions an
/// optimisation PR must notice, not for scheduler jitter.
pub const WALL_CLOCK_SLOWDOWN_LIMIT: f64 = 10.0;

/// A parsed JSON value (just enough for `BENCH_perf.json`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64` (exact for the magnitudes we emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is irrelevant for comparison.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an exact `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(x as u64)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_owned())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("non-utf8 string at byte {}", *pos))?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// The deterministic per-cell counters the gate compares exactly.
const EXACT_COUNTERS: [&str; 6] = [
    "cycles",
    "services",
    "admitted",
    "deferred",
    "rejected",
    "underflows",
];

/// Compares a fresh [`BenchReport`] against a committed baseline
/// document.
///
/// On success returns one informative line per cell (speed ratio vs the
/// baseline). On failure returns every detected drift: matrix-shape
/// mismatches, exact-counter drift, `peak_memory_mib` drift (also
/// deterministic), and wall-clock slowdowns beyond
/// [`WALL_CLOCK_SLOWDOWN_LIMIT`]×.
///
/// # Errors
///
/// The `Err` variant carries the human-readable drift list.
pub fn check_against_baseline(
    report: &BenchReport,
    baseline_src: &str,
) -> Result<Vec<String>, Vec<String>> {
    let mut drift: Vec<String> = Vec::new();
    let mut info: Vec<String> = Vec::new();

    let baseline = match parse(baseline_src) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("baseline does not parse: {e}")]),
    };

    let mode = baseline.get("mode").and_then(Json::as_str).unwrap_or("?");
    if mode != report.mode.label() {
        drift.push(format!(
            "mode mismatch: baseline `{mode}`, run `{}` (regenerate the baseline or pass the matching flag)",
            report.mode.label()
        ));
        return Err(drift);
    }
    let seeds: Vec<u64> = baseline
        .get("seeds")
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default();
    if seeds != report.seeds {
        drift.push(format!(
            "seed list mismatch: baseline {seeds:?}, run {:?}",
            report.seeds
        ));
    }

    let empty: Vec<Json> = Vec::new();
    let cells = baseline
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if cells.len() != report.cells.len() {
        drift.push(format!(
            "cell count mismatch: baseline {}, run {}",
            cells.len(),
            report.cells.len()
        ));
        return Err(drift);
    }

    for (base, cell) in cells.iter().zip(&report.cells) {
        let label = format!(
            "{}/{}/θ={}",
            base.get("scheme").and_then(Json::as_str).unwrap_or("?"),
            base.get("method").and_then(Json::as_str).unwrap_or("?"),
            base.get("theta").and_then(Json::as_f64).unwrap_or(f64::NAN),
        );
        let run_counters: [u64; 6] = [
            cell.cycles,
            cell.services,
            cell.admitted,
            cell.deferred,
            cell.rejected,
            cell.underflows,
        ];
        for (key, r) in EXACT_COUNTERS.into_iter().zip(run_counters) {
            let b = base.get(key).and_then(Json::as_u64);
            if b != Some(r) {
                drift.push(format!("{label}: {key} baseline {b:?} != run {r}"));
            }
        }
        let b_peak = base.get("peak_memory_mib").and_then(Json::as_f64);
        let r_peak = Some(cell.peak_memory_mib);
        if b_peak.map(f64::to_bits) != r_peak.map(f64::to_bits) {
            drift.push(format!(
                "{label}: peak_memory_mib baseline {b_peak:?} != run {r_peak:?}"
            ));
        }
        let b_wall = base
            .get("wall_clock_s")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if b_wall > 0.0 && cell.wall_clock_s > b_wall * WALL_CLOCK_SLOWDOWN_LIMIT {
            drift.push(format!(
                "{label}: wall-clock {:.2}s is more than {WALL_CLOCK_SLOWDOWN_LIMIT}x the baseline {b_wall:.2}s",
                cell.wall_clock_s
            ));
        }
        if b_wall > 0.0 && cell.wall_clock_s > 0.0 {
            info.push(format!(
                "{label}: {:.2}x baseline speed ({:.2}s vs {b_wall:.2}s)",
                b_wall / cell.wall_clock_s,
                cell.wall_clock_s
            ));
        }
    }

    if drift.is_empty() {
        Ok(info)
    } else {
        Err(drift)
    }
}

/// The deterministic per-cell counters of the cluster matrix the gate
/// compares exactly.
const CLUSTER_EXACT_COUNTERS: [&str; 7] = [
    "dispatched",
    "admitted",
    "deferred",
    "rejected",
    "redirected",
    "overflow_queued",
    "underflows",
];

/// Compares a fresh [`ClusterBenchReport`] against a committed baseline.
///
/// The baseline document carries the cluster matrix under dedicated
/// keys — `cluster_mode` and `cluster_cells` — so one
/// `BENCH_baseline.json` can pin both the engine matrix (read by
/// [`check_against_baseline`], which ignores unknown keys) and the
/// cluster matrix. The cell objects under `cluster_cells` have the exact
/// shape [`ClusterBenchReport::to_json`] emits for its `cells`.
///
/// Everything deterministic is compared exactly: matrix shape
/// (nodes/placement/dispatch per cell), the front-end and admission
/// counters, and `peak_memory_mib` (bitwise). Wall-clock is only gated
/// at [`WALL_CLOCK_SLOWDOWN_LIMIT`]×.
///
/// # Errors
///
/// The `Err` variant carries the human-readable drift list.
pub fn check_cluster_against_baseline(
    report: &ClusterBenchReport,
    baseline_src: &str,
) -> Result<Vec<String>, Vec<String>> {
    let mut drift: Vec<String> = Vec::new();
    let mut info: Vec<String> = Vec::new();

    let baseline = match parse(baseline_src) {
        Ok(b) => b,
        Err(e) => return Err(vec![format!("baseline does not parse: {e}")]),
    };

    let mode = baseline
        .get("cluster_mode")
        .and_then(Json::as_str)
        .unwrap_or("<absent>");
    if mode != report.mode.label() {
        drift.push(format!(
            "cluster_mode mismatch: baseline `{mode}`, run `{}` (regenerate the baseline or pass the matching flag)",
            report.mode.label()
        ));
        return Err(drift);
    }
    let seed = baseline.get("cluster_seed").and_then(Json::as_u64);
    if seed != Some(report.seed) {
        drift.push(format!(
            "cluster_seed mismatch: baseline {seed:?}, run {}",
            report.seed
        ));
    }

    let empty: Vec<Json> = Vec::new();
    let cells = baseline
        .get("cluster_cells")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if cells.len() != report.cells.len() {
        drift.push(format!(
            "cluster cell count mismatch: baseline {}, run {}",
            cells.len(),
            report.cells.len()
        ));
        return Err(drift);
    }

    for (base, cell) in cells.iter().zip(&report.cells) {
        let label = format!(
            "cluster {}n/{}/{}",
            cell.nodes, cell.placement, cell.dispatch
        );
        if base.get("nodes").and_then(Json::as_u64) != Some(cell.nodes as u64)
            || base.get("placement").and_then(Json::as_str) != Some(cell.placement)
            || base.get("dispatch").and_then(Json::as_str) != Some(cell.dispatch)
        {
            drift.push(format!(
                "{label}: cell shape mismatch (baseline {}n/{}/{})",
                base.get("nodes")
                    .and_then(Json::as_u64)
                    .map_or_else(|| "?".into(), |n| n.to_string()),
                base.get("placement").and_then(Json::as_str).unwrap_or("?"),
                base.get("dispatch").and_then(Json::as_str).unwrap_or("?"),
            ));
            continue;
        }
        let run_counters: [u64; 7] = [
            cell.dispatched,
            cell.admitted,
            cell.deferred,
            cell.rejected,
            cell.redirected,
            cell.overflow_queued,
            cell.underflows,
        ];
        for (key, r) in CLUSTER_EXACT_COUNTERS.into_iter().zip(run_counters) {
            let b = base.get(key).and_then(Json::as_u64);
            if b != Some(r) {
                drift.push(format!("{label}: {key} baseline {b:?} != run {r}"));
            }
        }
        let b_peak = base.get("peak_memory_mib").and_then(Json::as_f64);
        if b_peak.map(f64::to_bits) != Some(cell.peak_memory_mib.to_bits()) {
            drift.push(format!(
                "{label}: peak_memory_mib baseline {b_peak:?} != run {:?}",
                cell.peak_memory_mib
            ));
        }
        let b_wall = base
            .get("wall_clock_s")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if b_wall > 0.0 && cell.wall_clock_s > b_wall * WALL_CLOCK_SLOWDOWN_LIMIT {
            drift.push(format!(
                "{label}: wall-clock {:.2}s is more than {WALL_CLOCK_SLOWDOWN_LIMIT}x the baseline {b_wall:.2}s",
                cell.wall_clock_s
            ));
        }
        if b_wall > 0.0 && cell.wall_clock_s > 0.0 {
            info.push(format!(
                "{label}: {:.2}x baseline speed ({:.2}s vs {b_wall:.2}s)",
                b_wall / cell.wall_clock_s,
                cell.wall_clock_s
            ));
        }
    }

    if drift.is_empty() {
        Ok(info)
    } else {
        Err(drift)
    }
}

/// Splices a cluster report into a baseline document: returns `base_src`
/// with its `cluster_mode`, `cluster_seed`, and `cluster_cells` members
/// replaced by `report`'s (added if absent). Engine-matrix keys are
/// untouched, so regenerating the cluster half of `BENCH_baseline.json`
/// never perturbs the engine half.
///
/// # Errors
///
/// Returns a message when `base_src` is not a JSON object.
pub fn merge_cluster_into_baseline(
    report: &ClusterBenchReport,
    base_src: &str,
) -> Result<String, String> {
    let Json::Obj(mut doc) = parse(base_src)? else {
        return Err("baseline document is not a JSON object".into());
    };
    let Json::Obj(fresh) = parse(&report.to_json())? else {
        return Err("cluster report did not serialize to an object".into());
    };
    doc.insert(
        "cluster_mode".into(),
        Json::Str(report.mode.label().to_owned()),
    );
    doc.insert(
        "cluster_seed".into(),
        fresh.get("seed").cloned().unwrap_or(Json::Null),
    );
    doc.insert(
        "cluster_cells".into(),
        fresh.get("cells").cloned().unwrap_or(Json::Arr(Vec::new())),
    );
    Ok(render(&Json::Obj(doc)))
}

/// Renders a parsed [`Json`] value back to text (object keys in
/// [`BTreeMap`] order; floats in shortest round-trip form, so values
/// that came in through [`parse`] go back out bit-identical).
fn render(v: &Json) -> String {
    match v {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        // Keep counters readable as integers; `number` would print
        // `360.0`. Bit-exactness is unaffected: both spellings parse
        // back to the identical `f64`.
        #[allow(clippy::cast_possible_truncation)]
        Json::Num(x) if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) => {
            format!("{}", *x as i64)
        }
        Json::Num(x) => vod_obs::json::number(*x),
        Json::Str(s) => format!("\"{}\"", vod_obs::json::escape(s)),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", vod_obs::json::escape(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_report_shapes() {
        let doc = r#"{"version":1,"mode":"smoke","seeds":[1,2],"cells":[{"scheme":"static","theta":0.5,"cycles":47667,"peak_memory_mib":1810.5721923828125}],"total_wall_clock_s":0.53}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("smoke"));
        let seeds: Vec<u64> = v
            .get("seeds")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(seeds, vec![1, 2]);
        let cell = &v.get("cells").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(cell.get("cycles").and_then(Json::as_u64), Some(47667));
        // Shortest round-trip floats parse back to identical bits.
        assert_eq!(
            cell.get("peak_memory_mib").and_then(Json::as_f64),
            Some(1810.5721923828125)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
    }

    #[test]
    fn cluster_check_accepts_merged_self_and_flags_drift() {
        let report = crate::cluster::run_cluster_bench(
            crate::cluster::ClusterBenchMode::Smoke,
            1,
            &vod_obs::Obs::null(),
            &|_| {},
        );
        // Merge into a minimal engine baseline: the engine keys survive
        // and the cluster keys appear.
        let merged = merge_cluster_into_baseline(&report, r#"{"mode":"smoke","seeds":[1]}"#)
            .expect("merge succeeds on an object baseline");
        let doc = parse(&merged).expect("merged baseline parses");
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("smoke"));
        assert_eq!(
            doc.get("cluster_mode").and_then(Json::as_str),
            Some("cluster_smoke")
        );
        let ok = check_cluster_against_baseline(&report, &merged);
        assert!(ok.is_ok(), "self-check failed: {:?}", ok.err());

        // Perturbing one cluster counter must fail the check.
        let broken = merged.replacen(
            &format!("\"admitted\":{}", report.cells[0].admitted),
            &format!("\"admitted\":{}", report.cells[0].admitted + 1),
            1,
        );
        assert_ne!(merged, broken, "perturbation must hit");
        let err = check_cluster_against_baseline(&report, &broken);
        let drift = err.expect_err("perturbed baseline must drift");
        assert!(
            drift.iter().any(|d| d.contains("admitted")),
            "drift lines: {drift:?}"
        );

        // A baseline with no cluster keys fails with a clear message.
        let bare = check_cluster_against_baseline(&report, r#"{"mode":"smoke"}"#);
        let drift = bare.expect_err("missing cluster keys must fail");
        assert!(drift.iter().any(|d| d.contains("cluster_mode")));
    }

    #[test]
    fn check_flags_counter_drift_and_accepts_self() {
        let report = crate::perf::run_bench(crate::perf::BenchMode::Smoke, 1, &|_| {});
        let json = report.to_json();
        // A report always matches its own serialization.
        let ok = check_against_baseline(&report, &json);
        assert!(ok.is_ok(), "self-check failed: {:?}", ok.err());
        // Perturbing one counter must fail the check.
        let broken = json.replacen(
            &format!("\"cycles\":{}", report.cells[0].cycles),
            &format!("\"cycles\":{}", report.cells[0].cycles + 1),
            1,
        );
        assert_ne!(json, broken, "perturbation must hit");
        let err = check_against_baseline(&report, &broken);
        assert!(err.is_err());
        let drift = err.unwrap_err();
        assert!(
            drift.iter().any(|d| d.contains("cycles")),
            "drift lines: {drift:?}"
        );
    }
}
