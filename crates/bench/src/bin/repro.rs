//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] <experiment>...
//! repro [--quick] all
//! repro --list
//! ```
//!
//! Each experiment prints aligned tables to stdout and mirrors them as CSV
//! under `results/`. `--quick` runs the simulated experiments at a reduced
//! scale (6 simulated hours, 2 seeds) — shapes hold, noise is higher.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use vod_analysis::{write_csv, Table};
use vod_bench::{
    fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, gss_g, tab3, tab4, tab5, vcr, Scale,
};

const EXPERIMENTS: [(&str, &str); 14] = [
    ("tab3", "disk profile constants and derived N (analysis)"),
    ("fig6", "concurrent streams vs time of day (simulation)"),
    ("fig7", "estimator quality vs T_log (simulation)"),
    ("fig8", "estimator quality vs alpha (simulation)"),
    ("fig9", "buffer size vs n (analysis)"),
    ("fig10", "worst-case initial latency vs n (analysis)"),
    ("fig11", "average initial latency vs n (simulation)"),
    ("fig12", "minimum memory requirement vs n (analysis)"),
    ("fig13", "capacity vs memory, 10 disks (analysis)"),
    ("fig14", "capacity vs memory, 10 disks (simulation)"),
    (
        "tab4",
        "average initial-latency reduction ratios (simulation)",
    ),
    ("tab5", "average capacity improvement ratios (simulation)"),
    ("gss_g", "extension: memory vs GSS group size (analysis)"),
    ("vcr", "extension: VCR responsiveness (simulation)"),
];

fn run_experiment(name: &str, scale: Scale) -> Option<Vec<Table>> {
    match name {
        "tab3" => Some(tab3()),
        "fig6" => Some(fig6(scale)),
        "fig7" => Some(fig7(scale)),
        "fig8" => Some(fig8(scale)),
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "fig11" => Some(fig11(scale)),
        "fig12" => Some(fig12()),
        "fig13" => Some(fig13()),
        "fig14" => Some(fig14(scale)),
        "tab4" => Some(tab4(scale)),
        "tab5" => Some(tab5(scale)),
        "gss_g" => Some(gss_g()),
        "vcr" => Some(vcr(scale)),
        _ => None,
    }
}

fn print_usage() {
    eprintln!("usage: repro [--quick] <experiment>... | all | --list");
    eprintln!("experiments:");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<6} {desc}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let mut scale = Scale::Full;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--list" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|(n, _)| (*n).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let results_dir = Path::new("results");
    for name in names {
        let started = Instant::now();
        let Some(tables) = run_experiment(&name, scale) else {
            eprintln!("unknown experiment `{name}`");
            print_usage();
            return ExitCode::FAILURE;
        };
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            let csv_name = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}_{i}")
            };
            if let Err(e) = write_csv(table, results_dir, &csv_name) {
                eprintln!("warning: could not write results/{csv_name}.csv: {e}");
            }
        }
        eprintln!("[{name} done in {:.1?}]", started.elapsed());
    }
    ExitCode::SUCCESS
}
