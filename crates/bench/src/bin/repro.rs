//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--trace <file.jsonl>] [--flight <file.jsonl>]
//!       [--summary-json <file>] [--metrics <file.prom>]
//!       [--metrics-addr <host:port>] <experiment>...
//! repro [--quick] all
//! repro bench [--smoke] [--no-fast-forward] [--out <file>]
//! repro cluster [--smoke] [--no-fast-forward] [--trace <file.jsonl>] [--out <file>]
//! repro trace-analyze <file.jsonl> [--schema-only] [--top <k>]
//! repro report <trace.jsonl> [--out <file.md>] [--series-csv <file.csv>]
//! repro compare <old.json> <new.json> [--tolerance <x>]
//! repro --list
//! ```
//!
//! Each experiment prints aligned tables to stdout and mirrors them as CSV
//! under `results/`. `--quick` runs the simulated experiments at a reduced
//! scale (6 simulated hours, 2 seeds) — shapes hold, noise is higher.
//!
//! Observability (simulated experiments only; analytic ones emit nothing):
//!
//! * `--trace <file.jsonl>` — records every engine event, spans
//!   included, and writes them as JSON Lines. Each experiment
//!   contributes a marker line `{"kind":"experiment","name":...}`
//!   followed by its events. Feed the file to `repro trace-analyze`.
//! * `--flight <file.jsonl>` — arms a bounded flight recorder teed
//!   behind the trace recorder; anomalies (underflow, rejection, parked
//!   span, a failed `--check` baseline gate) dump the ring to the file
//!   as `{"kind":"flight_dump",...}` sections. Also accepted by
//!   `repro bench` and `repro cluster`.
//! * `--summary-json <file>` — writes one JSON document with, per
//!   experiment, the host wall-clock time, the events and span records
//!   the recorder dropped (`events_dropped` / `spans_dropped`), per-kind
//!   event counters (admitted / deferred / rejected / underflow, …), and
//!   the recorder's histograms. The same drop totals feed the shared
//!   metrics registry as `vod_events_dropped_total` /
//!   `vod_spans_dropped_total` when `--metrics` is active.
//! * `--metrics <file.prom>` — attaches one shared metrics registry to
//!   every simulated experiment and writes its final state in Prometheus
//!   text exposition format.
//! * `--metrics-addr <host:port>` — additionally serves the live registry
//!   over HTTP (GET, Prometheus text) for the duration of the run; pass
//!   `127.0.0.1:0` to pick a free port (printed to stderr).
//!
//! `repro bench` skips the tables entirely and runs the pinned
//! performance matrix instead, writing `BENCH_perf.json` (see
//! `EXPERIMENTS.md`, “Benchmark methodology”). `--smoke` is the CI-sized
//! subset; `--out` overrides the output path. `--no-fast-forward`
//! (also accepted by `repro cluster`) is the escape hatch that makes
//! every engine take the legacy hop-by-hop idle path instead of the
//! event-driven jump (DESIGN §11) — deterministic counters are
//! bit-identical either way, only throughput moves.
//!
//! `repro cluster --trace <file.jsonl>` runs the matrix sequentially with
//! a per-cell span recorder and writes `{"kind":"cluster_cell"}` sections
//! (lifecycle spans + admission outcomes; per-cycle detail gated off so
//! nothing is dropped). `repro trace-analyze` consumes either trace
//! flavour: schema check, span trees, per-stream latency breakdowns,
//! top-k slowest traces, and the invariant audit (admission spans vs
//! admitted counts, hop chains vs redirection counters). It exits
//! non-zero on schema errors or audit violations.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use vod_analysis::{write_csv, Table};
use vod_bench::{
    check_against_baseline, check_cluster_against_baseline, compare, fig10, fig11, fig12, fig13,
    fig14, fig6, fig7, fig8, fig9, gss_g, merge_cluster_into_baseline, report,
    run_bench_configured, run_cluster_bench_configured, run_cluster_bench_traced, tab3, tab4, tab5,
    traceview, vcr, BenchMode, ClusterBenchMode, Scale,
};
use vod_obs::metrics::{CTR_EVENTS_DROPPED, CTR_SPANS_DROPPED};
use vod_obs::{
    json, prom, FlightRecorder, Metrics, MetricsRegistry, MetricsServer, Obs, RecorderSink, Sink,
    TeeSink,
};

const EXPERIMENTS: [(&str, &str); 14] = [
    ("tab3", "disk profile constants and derived N (analysis)"),
    ("fig6", "concurrent streams vs time of day (simulation)"),
    ("fig7", "estimator quality vs T_log (simulation)"),
    ("fig8", "estimator quality vs alpha (simulation)"),
    ("fig9", "buffer size vs n (analysis)"),
    ("fig10", "worst-case initial latency vs n (analysis)"),
    ("fig11", "average initial latency vs n (simulation)"),
    ("fig12", "minimum memory requirement vs n (analysis)"),
    ("fig13", "capacity vs memory, 10 disks (analysis)"),
    ("fig14", "capacity vs memory, 10 disks (simulation)"),
    (
        "tab4",
        "average initial-latency reduction ratios (simulation)",
    ),
    ("tab5", "average capacity improvement ratios (simulation)"),
    ("gss_g", "extension: memory vs GSS group size (analysis)"),
    ("vcr", "extension: VCR responsiveness (simulation)"),
];

fn is_simulated(name: &str) -> bool {
    matches!(
        name,
        "fig6" | "fig7" | "fig8" | "fig11" | "fig14" | "tab4" | "tab5" | "vcr"
    )
}

fn run_experiment(name: &str, scale: Scale, obs: &Obs) -> Option<Vec<Table>> {
    match name {
        "tab3" => Some(tab3()),
        "fig6" => Some(fig6(scale, obs)),
        "fig7" => Some(fig7(scale, obs)),
        "fig8" => Some(fig8(scale, obs)),
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "fig11" => Some(fig11(scale, obs)),
        "fig12" => Some(fig12()),
        "fig13" => Some(fig13()),
        "fig14" => Some(fig14(scale, obs)),
        "tab4" => Some(tab4(scale, obs)),
        "tab5" => Some(tab5(scale, obs)),
        "gss_g" => Some(gss_g()),
        "vcr" => Some(vcr(scale, obs)),
        _ => None,
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro [--quick] [--trace <file.jsonl>] [--flight <file.jsonl>] \
         [--summary-json <file>] [--metrics <file.prom>] [--metrics-addr <host:port>] \
         <experiment>... | all | --list"
    );
    eprintln!(
        "       repro bench [--smoke] [--jobs <n>] [--no-fast-forward] [--out <file>] \
         [--check <baseline>] [--flight <file.jsonl>]"
    );
    eprintln!(
        "       repro cluster [--smoke] [--jobs <n>] [--no-fast-forward] [--out <file>] \
         [--check <baseline>] [--merge-baseline <file>] [--metrics <file.prom>] \
         [--trace <file.jsonl>] [--flight <file.jsonl>]"
    );
    eprintln!(
        "       repro chaos [--smoke] [--jobs <n>] [--seed <n>] [--script <file>] \
         [--nodes <n>] [--reseed-after <secs>] [--out <file>] [--check <baseline>] \
         [--envelope-report <file.md>] [--trace <file.jsonl>] [--flight <file.jsonl>]"
    );
    eprintln!("       repro trace-analyze <file.jsonl> [--schema-only] [--top <k>]");
    eprintln!("       repro report <trace.jsonl> [--out <file.md>] [--series-csv <file.csv>]");
    eprintln!("       repro report --chaos-delta <old.json> <new.json> [--out <file.md>]");
    eprintln!("       repro compare <old.json> <new.json> [--tolerance <x>]");
    eprintln!("experiments:");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<6} {desc}");
    }
    eprintln!("  bench    pinned performance matrix -> BENCH_perf.json");
    eprintln!(
        "  cluster  cluster_scaling matrix (nodes x placement x dispatch) -> BENCH_cluster.json"
    );
    eprintln!(
        "  chaos    fault-injection matrix (scenario x failover x nodes) -> BENCH_chaos.json; \
         --seed/--script run one ad-hoc episode; --check gates the degradation envelope"
    );
    eprintln!("  trace-analyze  span trees, latency breakdowns, invariant audit of a trace");
    eprintln!("  report   markdown run report (series timelines, latencies, audits) from a trace");
    eprintln!(
        "  compare  diff two BENCH_*.json documents; exit 1 on regression, 2 if incomparable"
    );
}

/// Arms a flight recorder that appends anomaly dumps to `path`. Shared
/// by every subcommand that accepts `--flight`.
fn arm_flight(path: &Path) -> Arc<FlightRecorder> {
    eprintln!("flight: armed, dumps append to {}", path.display());
    Arc::new(FlightRecorder::new().with_path(path))
}

/// Reports what the flight recorder saw once a run is over.
fn flight_report(flight: &FlightRecorder) {
    eprintln!(
        "flight: {} events seen, {} anomalies, {} dump(s) written",
        flight.seen(),
        flight.anomalies(),
        flight.dumps_written(),
    );
}

/// `repro trace-analyze <file.jsonl> [--schema-only] [--top <k>]`: the
/// offline half of the tracing pipeline. Always validates the JSONL
/// schema; unless `--schema-only`, also reconstructs span trees, prints
/// per-stream latency breakdowns and the top-k slowest traces, and runs
/// the invariant audit. Non-zero exit on schema errors or violations.
fn trace_analyze_main(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut schema_only = false;
    let mut top_k = 3usize;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--schema-only" => schema_only = true,
            "--top" => {
                let parsed = iter.next().and_then(|v| v.parse::<usize>().ok());
                let Some(k) = parsed else {
                    eprintln!("--top requires a non-negative integer");
                    return ExitCode::FAILURE;
                };
                top_k = k;
            }
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown trace-analyze option `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("trace-analyze requires a trace file argument");
        print_usage();
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if traceview::is_empty_trace(&src) {
        eprintln!(
            "error: {} contains no trace lines (empty or truncated file)",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    let schema = match traceview::check_schema(&src) {
        Ok(s) => s,
        Err(errors) => {
            for e in errors.iter().take(20) {
                eprintln!("schema: {e}");
            }
            if errors.len() > 20 {
                eprintln!("schema: ... and {} more", errors.len() - 20);
            }
            eprintln!("[trace-analyze: schema check FAILED on {}]", path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "schema OK: {} lines ({} markers, {} events, {} span records)",
        schema.lines, schema.markers, schema.events, schema.span_events
    );
    if schema_only {
        return ExitCode::SUCCESS;
    }
    let report = match traceview::analyze(&src, top_k) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", traceview::render(&report));
    if report.audit_passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro report <trace.jsonl> [--out <file.md>] [--series-csv <file.csv>]`:
/// renders the self-contained markdown run report (series timelines,
/// latency breakdowns, estimator audits, flight-dump cross-references)
/// from a trace file. `--series-csv` additionally re-exports every
/// embedded series as flat CSV.
///
/// `repro report --chaos-delta <old.json> <new.json> [--out <file.md>]`
/// instead renders the degradation-envelope delta table between two
/// chaos documents (exit 1 when the candidate leaves the envelope).
fn report_main(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut chaos_delta: Option<(PathBuf, PathBuf)> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--chaos-delta" => {
                let (Some(o), Some(n)) = (iter.next(), iter.next()) else {
                    eprintln!(
                        "--chaos-delta requires two document arguments: <old.json> <new.json>"
                    );
                    return ExitCode::FAILURE;
                };
                chaos_delta = Some((PathBuf::from(o), PathBuf::from(n)));
            }
            "--out" => {
                let Some(p) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(p));
            }
            "--series-csv" => {
                let Some(p) = iter.next() else {
                    eprintln!("--series-csv requires a file argument");
                    return ExitCode::FAILURE;
                };
                csv = Some(PathBuf::from(p));
            }
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown report option `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some((old_path, new_path)) = chaos_delta {
        if file.is_some() || csv.is_some() {
            eprintln!("--chaos-delta takes two chaos documents, not a trace file");
            return ExitCode::FAILURE;
        }
        let mut docs = Vec::with_capacity(2);
        for path in [&old_path, &new_path] {
            match std::fs::read_to_string(path) {
                Ok(s) => docs.push(s),
                Err(e) => {
                    eprintln!("error: could not read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let md = match report::render_envelope_delta(&docs[0], &docs[1]) {
            Ok(md) => md,
            Err(problems) => {
                for p in problems {
                    eprintln!("error: {p}");
                }
                return ExitCode::from(2);
            }
        };
        let within = md.contains("within envelope");
        match &out {
            Some(out_path) => {
                if let Err(e) = std::fs::write(out_path, &md) {
                    eprintln!("error: could not write {}: {e}", out_path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("[envelope delta -> {}]", out_path.display());
            }
            None => print!("{md}"),
        }
        return if within {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let Some(path) = file else {
        eprintln!("report requires a trace file argument");
        print_usage();
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if traceview::is_empty_trace(&src) {
        eprintln!(
            "error: {} contains no trace lines (empty or truncated file)",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    let md = match report::render_run_report(&src) {
        Ok(md) => md,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inventory = report::series_inventory(&src);
    for (scope, names) in &inventory {
        eprintln!("series: scope `{scope}`: {}", names.join(", "));
    }
    if let Some(csv_path) = &csv {
        if let Err(e) = std::fs::write(csv_path, report::series_csv(&src)) {
            eprintln!("error: could not write {}: {e}", csv_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[series CSV -> {}]", csv_path.display());
    }
    match &out {
        Some(out_path) => {
            if let Err(e) = std::fs::write(out_path, md) {
                eprintln!("error: could not write {}: {e}", out_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("[report -> {}]", out_path.display());
        }
        None => print!("{md}"),
    }
    ExitCode::SUCCESS
}

/// `repro compare <old.json> <new.json> [--tolerance <x>]`: cross-run
/// regression analytics over two saved bench documents. Exit 0 when the
/// new run matches, 1 on regression, 2 when the documents are not
/// comparable (different schema, fingerprint, or matrix shape).
fn compare_main(args: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tolerance = compare::DEFAULT_TOLERANCE;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--tolerance" => {
                let parsed = iter.next().and_then(|v| v.parse::<f64>().ok());
                let Some(x) = parsed.filter(|x| *x >= 1.0) else {
                    eprintln!("--tolerance requires a factor >= 1.0");
                    return ExitCode::FAILURE;
                };
                tolerance = x;
            }
            other if !other.starts_with("--") && files.len() < 2 => {
                files.push(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown compare option `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if files.len() != 2 {
        eprintln!("compare requires exactly two document arguments: <old.json> <new.json>");
        print_usage();
        return ExitCode::FAILURE;
    }
    let mut docs = Vec::with_capacity(2);
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(s) => docs.push(s),
            Err(e) => {
                eprintln!("error: could not read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let result = compare::compare_documents(&docs[0], &docs[1], tolerance);
    for line in &result.info {
        eprintln!("compare: {line}");
    }
    for problem in &result.problems {
        eprintln!("compare PROBLEM: {problem}");
    }
    match result.verdict {
        compare::CompareVerdict::Matches => {
            eprintln!(
                "[compare OK: {} matches {} (tolerance {tolerance}x)]",
                files[1].display(),
                files[0].display()
            );
            ExitCode::SUCCESS
        }
        compare::CompareVerdict::Regression => {
            eprintln!(
                "[compare FAILED: {} regressed against {}]",
                files[1].display(),
                files[0].display()
            );
            ExitCode::FAILURE
        }
        compare::CompareVerdict::Incompatible => {
            eprintln!(
                "[compare REFUSED: {} and {} do not describe the same experiment]",
                files[0].display(),
                files[1].display()
            );
            ExitCode::from(2)
        }
    }
}

/// `repro bench [--smoke] [--jobs <n>] [--out <file>] [--check <baseline>]`:
/// the perf-regression harness.
fn bench_main(args: &[String]) -> ExitCode {
    let mut mode = BenchMode::Full;
    let mut out = PathBuf::from("BENCH_perf.json");
    let mut check: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut fast_forward = true;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => mode = BenchMode::Smoke,
            "--no-fast-forward" => fast_forward = false,
            "--out" => {
                let Some(p) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(p);
            }
            "--check" => {
                let Some(p) = iter.next() else {
                    eprintln!("--check requires a baseline file argument");
                    return ExitCode::FAILURE;
                };
                check = Some(PathBuf::from(p));
            }
            "--flight" => {
                let Some(p) = iter.next() else {
                    eprintln!("--flight requires a file argument");
                    return ExitCode::FAILURE;
                };
                flight_path = Some(PathBuf::from(p));
            }
            "--jobs" => {
                let parsed = iter.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            other => {
                eprintln!("unknown bench option `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    // `run_bench` drives its engines unobserved (the matrix measures the
    // bare hot loop), so the flight ring stays empty here; the recorder
    // still documents a failed baseline gate with a dump marker.
    let flight = flight_path.as_deref().map(arm_flight);
    if !fast_forward {
        eprintln!("bench: fast-forward disabled; engines take the legacy hop-by-hop idle path");
    }
    let report = run_bench_configured(mode, jobs, fast_forward, &|line| eprintln!("{line}"));
    for c in &report.cells {
        println!(
            "{:<14} {:<12} θ={:<4} {:>9} cycles  {:>10.0} cycles/s  {:>8.2} MiB peak  {:.2}s",
            format!("{:?}", c.scheme),
            c.method.label(),
            c.theta,
            c.cycles,
            c.cycles_per_sec(),
            c.peak_memory_mib,
            c.wall_clock_s,
        );
    }
    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        return match check_against_baseline(&report, &baseline) {
            Ok(lines) => {
                for l in lines {
                    eprintln!("{l}");
                }
                eprintln!(
                    "[bench {} check OK against {}]",
                    report.mode.label(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(drift) => {
                for d in drift {
                    eprintln!("bench drift: {d}");
                }
                eprintln!(
                    "[bench {} check FAILED against {}]",
                    report.mode.label(),
                    baseline_path.display()
                );
                if let Some(f) = &flight {
                    f.trigger("baseline_gate_failure");
                    flight_report(f);
                }
                ExitCode::FAILURE
            }
        };
    }
    let mut body = report.to_json();
    body.push('\n');
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[bench {} done in {:.1}s -> {}]",
        report.mode.label(),
        report.total_wall_clock_s,
        out.display()
    );
    if let Some(f) = &flight {
        flight_report(f);
    }
    ExitCode::SUCCESS
}

/// `repro cluster [--smoke] [--jobs <n>] [--out <file>] [--check <baseline>]
/// [--merge-baseline <file>] [--metrics <file.prom>]`:
/// the `cluster_scaling` matrix (node count × placement × dispatch).
///
/// `--check` verifies the deterministic cells against the
/// `cluster_cells` keys of a committed baseline (CI). `--merge-baseline`
/// rewrites those keys in an existing baseline in place — the supported
/// way to regenerate the cluster half of `BENCH_baseline.json` without
/// touching the engine half. `--metrics` dumps the accumulated registry
/// (per-node counters across every cell) in Prometheus text.
fn cluster_main(args: &[String]) -> ExitCode {
    let mut mode = ClusterBenchMode::Full;
    let mut out = PathBuf::from("BENCH_cluster.json");
    let mut check: Option<PathBuf> = None;
    let mut merge: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut fast_forward = true;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => mode = ClusterBenchMode::Smoke,
            "--no-fast-forward" => fast_forward = false,
            "--trace" => {
                let Some(p) = iter.next() else {
                    eprintln!("--trace requires a file argument");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(p));
            }
            "--flight" => {
                let Some(p) = iter.next() else {
                    eprintln!("--flight requires a file argument");
                    return ExitCode::FAILURE;
                };
                flight_path = Some(PathBuf::from(p));
            }
            "--out" => {
                let Some(p) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(p);
            }
            "--check" => {
                let Some(p) = iter.next() else {
                    eprintln!("--check requires a baseline file argument");
                    return ExitCode::FAILURE;
                };
                check = Some(PathBuf::from(p));
            }
            "--merge-baseline" => {
                let Some(p) = iter.next() else {
                    eprintln!("--merge-baseline requires a baseline file argument");
                    return ExitCode::FAILURE;
                };
                merge = Some(PathBuf::from(p));
            }
            "--metrics" => {
                let Some(p) = iter.next() else {
                    eprintln!("--metrics requires a file argument");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(PathBuf::from(p));
            }
            "--jobs" => {
                let parsed = iter.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            other => {
                eprintln!("unknown cluster option `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let registry = Arc::new(MetricsRegistry::new());
    let flight = flight_path.as_deref().map(arm_flight);
    let obs = match &flight {
        Some(f) => Obs::new(Arc::clone(f) as Arc<dyn Sink>),
        None => Obs::null(),
    }
    .with_metrics(Metrics::new(Arc::clone(&registry)));
    if !fast_forward {
        eprintln!(
            "cluster: fast-forward disabled; node engines take the legacy hop-by-hop idle path"
        );
    }
    let report = if let Some(trace_file) = &trace_path {
        if jobs > 1 {
            eprintln!("note: --trace runs the matrix sequentially; --jobs ignored");
        }
        if !fast_forward {
            eprintln!("note: --trace always runs fast-forwarded; --no-fast-forward ignored");
        }
        let mut trace_out = String::new();
        let report =
            run_cluster_bench_traced(mode, &obs, &mut trace_out, &|line| eprintln!("{line}"));
        if let Err(e) = std::fs::write(trace_file, trace_out) {
            eprintln!("error: could not write trace {}: {e}", trace_file.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[cluster trace -> {}]", trace_file.display());
        report
    } else {
        run_cluster_bench_configured(mode, jobs, fast_forward, &obs, &|line| eprintln!("{line}"))
    };
    for c in &report.cells {
        println!(
            "{:>2} nodes  {:<14} {:<13} {:>6} arrivals  {:>5} deferred  {:>5} redirected  \
             imbalance {:>5.2}  {:>8.2} MiB peak  {:.2}s",
            c.nodes,
            c.placement,
            c.dispatch,
            c.dispatched,
            c.deferred,
            c.redirected,
            c.imbalance_ratio,
            c.peak_memory_mib,
            c.wall_clock_s,
        );
    }
    if let Some(path) = &metrics_path {
        if let Err(e) = std::fs::write(path, prom::render(&registry.snapshot())) {
            eprintln!("error: could not write metrics {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(baseline_path) = merge {
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let merged = match merge_cluster_into_baseline(&report, &base) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: could not merge into baseline: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut body = merged;
        body.push('\n');
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!("error: could not write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[cluster {} cells merged into {}]",
            report.cells.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        return match check_cluster_against_baseline(&report, &baseline) {
            Ok(lines) => {
                for l in lines {
                    eprintln!("{l}");
                }
                eprintln!(
                    "[cluster {} check OK against {}]",
                    report.mode.label(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(drift) => {
                for d in drift {
                    eprintln!("cluster drift: {d}");
                }
                eprintln!(
                    "[cluster {} check FAILED against {}]",
                    report.mode.label(),
                    baseline_path.display()
                );
                if let Some(f) = &flight {
                    f.trigger("baseline_gate_failure");
                    flight_report(f);
                }
                ExitCode::FAILURE
            }
        };
    }
    let mut body = report.to_json();
    body.push('\n');
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[cluster {} done in {:.1}s -> {}]",
        report.mode.label(),
        report.total_wall_clock_s,
        out.display()
    );
    if let Some(f) = &flight {
        flight_report(f);
    }
    ExitCode::SUCCESS
}

/// `repro chaos [--smoke] [--jobs <n>] [--seed <n>] [--script <file>]
/// [--nodes <n>] [--reseed-after <secs>] [--out <file>] [--check <baseline.json>]
/// [--envelope-report <file.md>] [--trace <file.jsonl>]
/// [--flight <file.jsonl>]`:
/// the fault-injection matrix (scenario × failover policy × nodes) over
/// the pinned replicated cluster shape, writing `BENCH_chaos.json`.
///
/// `--check <baseline>` gates the fresh run's degradation envelope
/// (availability, drop/migrate/park/re-replicate split, time-to-
/// recover) against a committed chaos document under the `ENVELOPE_*`
/// tolerances instead of writing `--out`; `--envelope-report` saves the
/// markdown delta table either way the gate goes.
///
/// `--seed <n>` / `--script <file>` switch to a single ad-hoc episode
/// (`--nodes <n>`, default 2) instead of the matrix: the schedule comes
/// from
/// [`vod_chaos::FaultSchedule::from_seed`] or a fault-script file
/// (`domain <name> <node>...` declarations, then
/// `<t_secs> <node|@domain> crash|slow:<f>|pressure:<f>|degrade:<d>:<f>|`
/// `error:<r>|rejoin[:warm|:cold]` per line), `--reseed-after <secs>`
/// arms fault-triggered re-replication, and the degradation summary
/// prints to stdout.
fn chaos_main(args: &[String]) -> ExitCode {
    let mut mode = vod_bench::ChaosBenchMode::Full;
    let mut out = PathBuf::from("BENCH_chaos.json");
    let mut check: Option<PathBuf> = None;
    let mut envelope_report: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut script: Option<PathBuf> = None;
    let mut reseed_after: Option<f64> = None;
    let mut adhoc_nodes = 2usize;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => mode = vod_bench::ChaosBenchMode::Smoke,
            "--check" => {
                let Some(p) = iter.next() else {
                    eprintln!("--check requires a baseline file argument");
                    return ExitCode::FAILURE;
                };
                check = Some(PathBuf::from(p));
            }
            "--envelope-report" => {
                let Some(p) = iter.next() else {
                    eprintln!("--envelope-report requires a file argument");
                    return ExitCode::FAILURE;
                };
                envelope_report = Some(PathBuf::from(p));
            }
            "--reseed-after" => {
                let parsed = iter.next().and_then(|v| v.parse::<f64>().ok());
                let Some(s) = parsed.filter(|s| *s >= 0.0) else {
                    eprintln!("--reseed-after requires a non-negative number of seconds");
                    return ExitCode::FAILURE;
                };
                reseed_after = Some(s);
            }
            "--seed" => {
                let parsed = iter.next().and_then(|v| v.parse::<u64>().ok());
                let Some(s) = parsed else {
                    eprintln!("--seed requires an unsigned integer");
                    return ExitCode::FAILURE;
                };
                seed = Some(s);
            }
            "--nodes" => {
                let parsed = iter.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n >= 1) else {
                    eprintln!("--nodes requires a positive integer");
                    return ExitCode::FAILURE;
                };
                adhoc_nodes = n;
            }
            "--script" => {
                let Some(p) = iter.next() else {
                    eprintln!("--script requires a file argument");
                    return ExitCode::FAILURE;
                };
                script = Some(PathBuf::from(p));
            }
            "--out" => {
                let Some(p) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(p);
            }
            "--trace" => {
                let Some(p) = iter.next() else {
                    eprintln!("--trace requires a file argument");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(p));
            }
            "--flight" => {
                let Some(p) = iter.next() else {
                    eprintln!("--flight requires a file argument");
                    return ExitCode::FAILURE;
                };
                flight_path = Some(PathBuf::from(p));
            }
            "--jobs" => {
                let parsed = iter.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            other => {
                eprintln!("unknown chaos option `{other}`");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let flight = flight_path.as_deref().map(arm_flight);
    let obs = match &flight {
        Some(f) => Obs::new(Arc::clone(f) as Arc<dyn Sink>),
        None => Obs::null(),
    };

    // Ad-hoc episode: one 2-node run with an explicit schedule.
    if seed.is_some() || script.is_some() {
        if seed.is_some() && script.is_some() {
            eprintln!("--seed and --script are mutually exclusive");
            return ExitCode::FAILURE;
        }
        let nodes = adhoc_nodes;
        let horizon =
            vod_types::Seconds::from_hours(vod_bench::ChaosBenchMode::Smoke.horizon_hours());
        let schedule = if let Some(path) = &script {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: could not read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match vod_chaos::FaultSchedule::from_script(&src) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: bad fault script {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            vod_chaos::FaultSchedule::from_seed(seed.unwrap_or(0), nodes, horizon)
        };
        eprintln!(
            "chaos: ad-hoc episode, {nodes} nodes, {} fault(s)",
            schedule.len()
        );
        let report = match vod_bench::chaos::run_chaos_adhoc(
            nodes,
            schedule,
            vod_chaos::FailoverPolicy::Migrate,
            vod_chaos::RecoveryPolicy::Warm,
            reseed_after.map(vod_types::Seconds::from_secs),
            &obs,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let s = &report.summary;
        println!(
            "faults {} ({} domain)  interrupted {}  migrated {}  parked {}  dropped {}  unplaceable {}",
            s.faults_injected,
            s.domain_faults,
            s.interrupted,
            s.migrated,
            s.parked,
            s.dropped,
            s.unplaceable
        );
        println!(
            "recoveries {}  cold_rebuilds {}  rereplications {}  rereplicated {}  ttr {}  \
             availability {:.4}  underflows {}",
            s.recoveries,
            s.cold_rebuilds,
            s.rereplications,
            s.rereplicated,
            s.mean_time_to_recover_s
                .map_or_else(|| "-".to_owned(), |t| format!("{t:.1}s")),
            s.availability,
            report.cluster.underflows(),
        );
        if let Some(f) = &flight {
            flight_report(f);
        }
        return ExitCode::SUCCESS;
    }

    let report = if let Some(trace_file) = &trace_path {
        if jobs > 1 {
            eprintln!("note: --trace runs the matrix sequentially; --jobs ignored");
        }
        let mut trace_out = String::new();
        let report = vod_bench::run_chaos_bench_traced(mode, &obs, &mut trace_out, &|line| {
            eprintln!("{line}")
        });
        if let Err(e) = std::fs::write(trace_file, trace_out) {
            eprintln!("error: could not write trace {}: {e}", trace_file.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[chaos trace -> {}]", trace_file.display());
        report
    } else {
        vod_bench::run_chaos_bench(mode, jobs, &obs, &|line| eprintln!("{line}"))
    };
    for c in &report.cells {
        println!(
            "{:>2} nodes  {:<9} {:<8} {:>6} arrivals  {:>4} interrupted  {:>4} migrated  \
             {:>4} dropped  avail {:>6.4}  {:>2} underflows  {:.2}s",
            c.nodes,
            c.scenario,
            c.failover,
            c.dispatched,
            c.interrupted,
            c.migrated,
            c.dropped,
            c.availability,
            c.underflows,
            c.wall_clock_s,
        );
    }
    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let fresh = report.to_json();
        let md = match report::render_envelope_delta(&baseline, &fresh) {
            Ok(md) => md,
            Err(problems) => {
                for p in problems {
                    eprintln!("chaos check: {p}");
                }
                eprintln!(
                    "[chaos {} check REFUSED against {}]",
                    report.mode.label(),
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        if let Some(md_path) = &envelope_report {
            if let Err(e) = std::fs::write(md_path, &md) {
                eprintln!("error: could not write {}: {e}", md_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("[envelope delta -> {}]", md_path.display());
        }
        let env = compare::envelope_delta(&baseline, &fresh)
            .expect("render_envelope_delta already validated compatibility");
        for p in &env.problems {
            eprintln!("chaos drift: {p}");
        }
        return if env.passed() {
            eprintln!(
                "[chaos {} envelope check OK against {}]",
                report.mode.label(),
                baseline_path.display()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "[chaos {} envelope check FAILED against {}]",
                report.mode.label(),
                baseline_path.display()
            );
            if let Some(f) = &flight {
                f.trigger("baseline_gate_failure");
                flight_report(f);
            }
            ExitCode::FAILURE
        };
    }
    let mut body = report.to_json();
    body.push('\n');
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[chaos {} done in {:.1}s -> {}]",
        report.mode.label(),
        report.total_wall_clock_s,
        out.display()
    );
    if let Some(f) = &flight {
        flight_report(f);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if args[0] == "bench" {
        return bench_main(&args[1..]);
    }
    if args[0] == "cluster" {
        return cluster_main(&args[1..]);
    }
    if args[0] == "chaos" {
        return chaos_main(&args[1..]);
    }
    if args[0] == "trace-analyze" {
        return trace_analyze_main(&args[1..]);
    }
    if args[0] == "report" {
        return report_main(&args[1..]);
    }
    if args[0] == "compare" {
        return compare_main(&args[1..]);
    }
    let mut scale = Scale::Full;
    let mut names: Vec<String> = Vec::new();
    let mut trace_path: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut summary_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--list" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "--trace" => {
                let Some(p) = iter.next() else {
                    eprintln!("--trace requires a file argument");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(p));
            }
            "--flight" => {
                let Some(p) = iter.next() else {
                    eprintln!("--flight requires a file argument");
                    return ExitCode::FAILURE;
                };
                flight_path = Some(PathBuf::from(p));
            }
            "--summary-json" => {
                let Some(p) = iter.next() else {
                    eprintln!("--summary-json requires a file argument");
                    return ExitCode::FAILURE;
                };
                summary_path = Some(PathBuf::from(p));
            }
            "--metrics" => {
                let Some(p) = iter.next() else {
                    eprintln!("--metrics requires a file argument");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(PathBuf::from(p));
            }
            "--metrics-addr" => {
                let Some(p) = iter.next() else {
                    eprintln!("--metrics-addr requires a host:port argument");
                    return ExitCode::FAILURE;
                };
                metrics_addr = Some(p.clone());
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|(n, _)| (*n).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    // One registry shared by every simulated experiment of the run: the
    // .prom file and the scrape endpoint describe the whole invocation.
    let registry = (metrics_path.is_some() || metrics_addr.is_some())
        .then(|| Arc::new(MetricsRegistry::new()));
    let metrics = registry
        .as_ref()
        .map(|r| Metrics::new(Arc::clone(r)))
        .unwrap_or_default();
    let _server = match (&metrics_addr, &registry) {
        (Some(addr), Some(reg)) => match MetricsServer::bind(addr, Arc::clone(reg)) {
            Ok(server) => {
                eprintln!(
                    "metrics: serving Prometheus text on http://{}/metrics",
                    server.local_addr()
                );
                Some(server)
            }
            Err(e) => {
                eprintln!("error: could not bind metrics server on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => None,
    };

    let flight = flight_path.as_deref().map(arm_flight);
    let observing = trace_path.is_some() || summary_path.is_some();
    let mut trace_out = String::new();
    let mut summary_entries = json::Array::new();

    let results_dir = Path::new("results");
    for name in names {
        let started = Instant::now();
        // A fresh recorder per experiment keeps counters and the trace
        // attributable. With --summary-json alone the recorder keeps no
        // raw events (capacity 0): counters and histograms still fill.
        let sink = if observing && is_simulated(&name) {
            Some(Arc::new(if trace_path.is_some() {
                RecorderSink::new()
            } else {
                RecorderSink::with_capacity(0)
            }))
        } else {
            None
        };
        let obs = match (&sink, &flight) {
            (Some(s), Some(f)) => Obs::new(Arc::new(TeeSink::new(
                Arc::clone(s) as Arc<dyn Sink>,
                Arc::clone(f) as Arc<dyn Sink>,
            ))),
            (Some(s), None) => Obs::new(Arc::clone(s) as Arc<dyn Sink>),
            (None, Some(f)) if is_simulated(&name) => Obs::new(Arc::clone(f) as Arc<dyn Sink>),
            _ => Obs::from_env(),
        };
        let obs = if is_simulated(&name) {
            obs.with_metrics(metrics.clone())
        } else {
            obs
        };
        let Some(tables) = run_experiment(&name, scale, &obs) else {
            eprintln!("unknown experiment `{name}`");
            print_usage();
            return ExitCode::FAILURE;
        };
        let elapsed = started.elapsed();
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            let csv_name = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}_{i}")
            };
            if let Err(e) = write_csv(table, results_dir, &csv_name) {
                eprintln!("warning: could not write results/{csv_name}.csv: {e}");
            }
        }
        if let Some(sink) = sink {
            let snap = sink.snapshot();
            if trace_path.is_some() {
                // Only a bounded-capacity recorder that was asked for raw
                // events can lose trace lines; with --summary-json alone
                // the capacity-0 recorder "drops" everything by design
                // while its counters stay complete.
                if snap.dropped() > 0 {
                    eprintln!(
                        "warning: {name}: recorder dropped {} events; trace is incomplete",
                        snap.dropped()
                    );
                }
                let mut marker = json::Object::new();
                marker.str("kind", "experiment");
                marker.str("name", &name);
                marker.uint("events", snap.events().len() as u64);
                marker.uint("events_dropped", snap.events_dropped());
                marker.uint("spans_dropped", snap.spans_dropped());
                trace_out.push_str(&marker.finish());
                trace_out.push('\n');
                trace_out.push_str(&snap.export_jsonl());
            }
            // The drop totals are first-class series: whatever registry
            // is attached (file dump, live scrape) reports them.
            metrics
                .counter(CTR_EVENTS_DROPPED)
                .add(snap.events_dropped());
            metrics.counter(CTR_SPANS_DROPPED).add(snap.spans_dropped());
            let mut entry = json::Object::new();
            entry.str("name", &name);
            entry.num("wall_clock_s", elapsed.as_secs_f64());
            entry.uint("events_dropped", snap.events_dropped());
            entry.uint("spans_dropped", snap.spans_dropped());
            entry.raw("observed", &snap.to_json());
            summary_entries.raw(&entry.finish());
        } else if summary_path.is_some() {
            let mut entry = json::Object::new();
            entry.str("name", &name);
            entry.num("wall_clock_s", elapsed.as_secs_f64());
            entry.uint("events_dropped", 0);
            entry.uint("spans_dropped", 0);
            entry.null("observed"); // analytic: no engine runs, no events
            summary_entries.raw(&entry.finish());
        }
        eprintln!("[{name} done in {elapsed:.1?}]");
    }

    if let (Some(path), Some(reg)) = (&metrics_path, &registry) {
        if let Err(e) = std::fs::write(path, prom::render(&reg.snapshot())) {
            eprintln!("error: could not write metrics {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, trace_out) {
            eprintln!("error: could not write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &summary_path {
        let mut doc = json::Object::new();
        doc.str(
            "scale",
            match scale {
                Scale::Full => "full",
                Scale::Quick => "quick",
            },
        );
        doc.raw("experiments", &summary_entries.finish());
        let mut body = doc.finish();
        body.push('\n');
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: could not write summary {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(f) = &flight {
        flight_report(f);
    }
    ExitCode::SUCCESS
}
