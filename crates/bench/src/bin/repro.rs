//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--trace <file.jsonl>] [--summary-json <file>] <experiment>...
//! repro [--quick] all
//! repro --list
//! ```
//!
//! Each experiment prints aligned tables to stdout and mirrors them as CSV
//! under `results/`. `--quick` runs the simulated experiments at a reduced
//! scale (6 simulated hours, 2 seeds) — shapes hold, noise is higher.
//!
//! Observability (simulated experiments only; analytic ones emit nothing):
//!
//! * `--trace <file.jsonl>` — records every engine event and writes them
//!   as JSON Lines. Each experiment contributes a marker line
//!   `{"kind":"experiment","name":...}` followed by its events.
//! * `--summary-json <file>` — writes one JSON document with, per
//!   experiment, the host wall-clock time, per-kind event counters
//!   (admitted / deferred / rejected / underflow, …), and the recorder's
//!   histograms.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use vod_analysis::{write_csv, Table};
use vod_bench::{
    fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, gss_g, tab3, tab4, tab5, vcr, Scale,
};
use vod_obs::{json, Obs, RecorderSink};

const EXPERIMENTS: [(&str, &str); 14] = [
    ("tab3", "disk profile constants and derived N (analysis)"),
    ("fig6", "concurrent streams vs time of day (simulation)"),
    ("fig7", "estimator quality vs T_log (simulation)"),
    ("fig8", "estimator quality vs alpha (simulation)"),
    ("fig9", "buffer size vs n (analysis)"),
    ("fig10", "worst-case initial latency vs n (analysis)"),
    ("fig11", "average initial latency vs n (simulation)"),
    ("fig12", "minimum memory requirement vs n (analysis)"),
    ("fig13", "capacity vs memory, 10 disks (analysis)"),
    ("fig14", "capacity vs memory, 10 disks (simulation)"),
    (
        "tab4",
        "average initial-latency reduction ratios (simulation)",
    ),
    ("tab5", "average capacity improvement ratios (simulation)"),
    ("gss_g", "extension: memory vs GSS group size (analysis)"),
    ("vcr", "extension: VCR responsiveness (simulation)"),
];

fn is_simulated(name: &str) -> bool {
    matches!(
        name,
        "fig6" | "fig7" | "fig8" | "fig11" | "fig14" | "tab4" | "tab5" | "vcr"
    )
}

fn run_experiment(name: &str, scale: Scale, obs: &Obs) -> Option<Vec<Table>> {
    match name {
        "tab3" => Some(tab3()),
        "fig6" => Some(fig6(scale, obs)),
        "fig7" => Some(fig7(scale, obs)),
        "fig8" => Some(fig8(scale, obs)),
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "fig11" => Some(fig11(scale, obs)),
        "fig12" => Some(fig12()),
        "fig13" => Some(fig13()),
        "fig14" => Some(fig14(scale, obs)),
        "tab4" => Some(tab4(scale, obs)),
        "tab5" => Some(tab5(scale, obs)),
        "gss_g" => Some(gss_g()),
        "vcr" => Some(vcr(scale, obs)),
        _ => None,
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro [--quick] [--trace <file.jsonl>] [--summary-json <file>] \
         <experiment>... | all | --list"
    );
    eprintln!("experiments:");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<6} {desc}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let mut scale = Scale::Full;
    let mut names: Vec<String> = Vec::new();
    let mut trace_path: Option<PathBuf> = None;
    let mut summary_path: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--list" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "--trace" => {
                let Some(p) = iter.next() else {
                    eprintln!("--trace requires a file argument");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(p));
            }
            "--summary-json" => {
                let Some(p) = iter.next() else {
                    eprintln!("--summary-json requires a file argument");
                    return ExitCode::FAILURE;
                };
                summary_path = Some(PathBuf::from(p));
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|(n, _)| (*n).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let observing = trace_path.is_some() || summary_path.is_some();
    let mut trace_out = String::new();
    let mut summary_entries = json::Array::new();

    let results_dir = Path::new("results");
    for name in names {
        let started = Instant::now();
        // A fresh recorder per experiment keeps counters and the trace
        // attributable. With --summary-json alone the recorder keeps no
        // raw events (capacity 0): counters and histograms still fill.
        let sink = if observing && is_simulated(&name) {
            Some(Arc::new(if trace_path.is_some() {
                RecorderSink::new()
            } else {
                RecorderSink::with_capacity(0)
            }))
        } else {
            None
        };
        let obs = match &sink {
            Some(s) => Obs::new(Arc::clone(s) as Arc<dyn vod_obs::Sink>),
            None => Obs::from_env(),
        };
        let Some(tables) = run_experiment(&name, scale, &obs) else {
            eprintln!("unknown experiment `{name}`");
            print_usage();
            return ExitCode::FAILURE;
        };
        let elapsed = started.elapsed();
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            let csv_name = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}_{i}")
            };
            if let Err(e) = write_csv(table, results_dir, &csv_name) {
                eprintln!("warning: could not write results/{csv_name}.csv: {e}");
            }
        }
        if let Some(sink) = sink {
            let snap = sink.snapshot();
            if trace_path.is_some() {
                let mut marker = json::Object::new();
                marker.str("kind", "experiment");
                marker.str("name", &name);
                marker.uint("events", snap.events().len() as u64);
                marker.uint("dropped", snap.dropped());
                trace_out.push_str(&marker.finish());
                trace_out.push('\n');
                trace_out.push_str(&snap.export_jsonl());
            }
            let mut entry = json::Object::new();
            entry.str("name", &name);
            entry.num("wall_clock_s", elapsed.as_secs_f64());
            entry.raw("observed", &snap.to_json());
            summary_entries.raw(&entry.finish());
        } else if summary_path.is_some() {
            let mut entry = json::Object::new();
            entry.str("name", &name);
            entry.num("wall_clock_s", elapsed.as_secs_f64());
            entry.null("observed"); // analytic: no engine runs, no events
            summary_entries.raw(&entry.finish());
        }
        eprintln!("[{name} done in {elapsed:.1?}]");
    }

    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, trace_out) {
            eprintln!("error: could not write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &summary_path {
        let mut doc = json::Object::new();
        doc.str(
            "scale",
            match scale {
                Scale::Full => "full",
                Scale::Quick => "quick",
            },
        );
        doc.raw("experiments", &summary_entries.finish());
        let mut body = doc.finish();
        body.push('\n');
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: could not write summary {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
