//! `repro chaos`: the fault-injection / failover matrix.
//!
//! Sweeps fault scenario × failover policy × node count over the same
//! pinned multi-movie workloads as the cluster matrix, injecting a
//! pinned fault episode (strike at 25% of the horizon, rejoin at 60%)
//! into every cell and measuring the degradation: interrupted /
//! migrated / parked / dropped streams, recovery time, availability —
//! on top of the cluster's own deterministic counters. Single-node
//! scenarios strike node 0; zone scenarios strike the `rack0` failure
//! domain (correlated crash of every even node); disk scenarios
//! throttle a fraction of node 0's capacity without downing it, and
//! the reseed scenario adds fault-triggered re-replication.
//!
//! Every cell pins the same cluster shape (ReplicatedHot placement,
//! LeastLoaded dispatch) so the only things that vary are the fault and
//! the policy answering it. Nodes run with a finite memory budget (the
//! static worst-case reservation) so [`vod_chaos::Fault::MemoryPressure`]
//! actually bites. Recovery mode follows the scenario: a crash is a
//! cold restart (tables rebuild), a slowdown or pressure episode never
//! lost its process, so its rejoin is warm.
//!
//! Determinism matches the cluster matrix: each cell is a pure function
//! of `(mode, cell spec)`, results collect by matrix index, and the
//! document is byte-identical at any `--jobs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant as WallInstant;

use vod_chaos::{
    run_chaos_on, ChaosConfig, DomainEvent, DomainFault, DomainMap, FailoverPolicy, Fault,
    FaultEvent, FaultSchedule, RecoveryPolicy,
};
use vod_cluster::{Cluster, ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_core::memory::min_memory_static;
use vod_obs::json::{Array, Object};
use vod_obs::Obs;
use vod_types::{Instant, Seconds};
use vod_workload::Workload;

use crate::cluster::{cluster_engine_config, make_workload};

/// Node counts of the full chaos sweep.
pub const CHAOS_NODE_COUNTS: [usize; 3] = [2, 4, 8];

/// The fault scenario a cell injects: one pinned episode striking at
/// 25% of the horizon and rejoining at 60%. Single-node scenarios hit
/// node 0; zone scenarios hit the `rack0` failure domain of a 2-rack
/// [`DomainMap`] (every even-indexed node); disk scenarios hit one disk
/// (or the error path) of node 0 without downing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Node 0 crashes (streams evicted, failover engaged), cold rejoin.
    Crash,
    /// Node 0's disk slows 4× (admission capacity drops to N/4), warm
    /// rejoin.
    Slow,
    /// 60% of node 0's memory budget is withheld, warm rejoin.
    Pressure,
    /// Every node in `rack0` crashes at once (correlated failure), cold
    /// rejoin of the whole rack.
    ZoneCrash,
    /// [`ChaosScenario::ZoneCrash`] with fault-triggered re-replication:
    /// nodes down past 10% of the horizon get their movies re-placed
    /// onto survivors and parked streams re-admitted there.
    ZoneCrashReseed,
    /// Disk 1 of node 0 degrades 4× (that disk's share of the admission
    /// bound shrinks to a quarter; the node stays up), warm rejoin.
    DiskDegrade,
    /// Node 0 develops a 30% request error rate (capacity multiplier
    /// drops to 0.7; the node stays up), warm rejoin.
    DiskError,
}

impl ChaosScenario {
    /// All scenarios, in bench-matrix order.
    pub const ALL: [ChaosScenario; 7] = [
        ChaosScenario::Crash,
        ChaosScenario::Slow,
        ChaosScenario::Pressure,
        ChaosScenario::ZoneCrash,
        ChaosScenario::ZoneCrashReseed,
        ChaosScenario::DiskDegrade,
        ChaosScenario::DiskError,
    ];

    /// The original single-node scenarios, swept at every node count.
    pub const SINGLE_NODE: [ChaosScenario; 3] = [
        ChaosScenario::Crash,
        ChaosScenario::Slow,
        ChaosScenario::Pressure,
    ];

    /// The correlated / partial-fault scenarios, swept where the
    /// cluster is big enough for a rack to be a strict subset (4+
    /// nodes).
    pub const CORRELATED: [ChaosScenario; 4] = [
        ChaosScenario::ZoneCrash,
        ChaosScenario::ZoneCrashReseed,
        ChaosScenario::DiskDegrade,
        ChaosScenario::DiskError,
    ];

    /// Stable label used in the JSON document and cell labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChaosScenario::Crash => "crash",
            ChaosScenario::Slow => "slow",
            ChaosScenario::Pressure => "pressure",
            ChaosScenario::ZoneCrash => "zone_crash",
            ChaosScenario::ZoneCrashReseed => "zone_crash_reseed",
            ChaosScenario::DiskDegrade => "disk_degrade",
            ChaosScenario::DiskError => "disk_error",
        }
    }

    /// The scenario's strike fault (single-node scenarios only).
    #[must_use]
    fn strike(self) -> Fault {
        match self {
            ChaosScenario::Crash => Fault::NodeCrash,
            ChaosScenario::Slow => Fault::NodeSlow { factor: 4.0 },
            ChaosScenario::Pressure => Fault::MemoryPressure { fraction: 0.6 },
            ChaosScenario::DiskDegrade => Fault::DiskDegrade {
                disk: 1,
                factor: 4.0,
            },
            ChaosScenario::DiskError => Fault::DiskError { rate: 0.3 },
            ChaosScenario::ZoneCrash | ChaosScenario::ZoneCrashReseed => {
                unreachable!("zone scenarios build a domain schedule")
            }
        }
    }

    /// Crash episodes are cold restarts; throttle episodes rejoin warm.
    #[must_use]
    fn recovery(self) -> RecoveryPolicy {
        match self {
            ChaosScenario::Crash | ChaosScenario::ZoneCrash | ChaosScenario::ZoneCrashReseed => {
                RecoveryPolicy::Cold
            }
            ChaosScenario::Slow
            | ChaosScenario::Pressure
            | ChaosScenario::DiskDegrade
            | ChaosScenario::DiskError => RecoveryPolicy::Warm,
        }
    }

    /// The re-replication horizon: only [`ChaosScenario::ZoneCrashReseed`]
    /// reseeds, after a node has been down 10% of the horizon.
    #[must_use]
    fn reseed_after(self, horizon: Seconds) -> Option<Seconds> {
        match self {
            ChaosScenario::ZoneCrashReseed => {
                Some(Seconds::from_secs(horizon.as_secs_f64() * 0.10))
            }
            _ => None,
        }
    }

    /// The pinned schedule: strike at 25% of the horizon, rejoin at
    /// 60%. Zone scenarios expand over `rack0` of a 2-rack domain map
    /// (deterministic per-node expansion in `(t, node)` order); the
    /// rest target node 0.
    #[must_use]
    pub fn schedule(self, nodes: usize, horizon: Seconds) -> FaultSchedule {
        let h = horizon.as_secs_f64();
        let strike_at = Instant::from_secs(h * 0.25);
        let rejoin_at = Instant::from_secs(h * 0.60);
        match self {
            ChaosScenario::ZoneCrash | ChaosScenario::ZoneCrashReseed => {
                let map = DomainMap::racks(nodes, 2);
                let events = vec![
                    DomainEvent {
                        at: strike_at,
                        domain: "rack0".to_string(),
                        fault: DomainFault::Crash,
                    },
                    DomainEvent {
                        at: rejoin_at,
                        domain: "rack0".to_string(),
                        fault: DomainFault::Rejoin { mode: None },
                    },
                ];
                FaultSchedule::with_domains(&map, &events, Vec::new())
                    .expect("rack0 exists in every 2-rack map")
            }
            _ => FaultSchedule::from_events(vec![
                FaultEvent {
                    at: strike_at,
                    node: 0,
                    fault: self.strike(),
                },
                FaultEvent {
                    at: rejoin_at,
                    node: 0,
                    fault: Fault::NodeRejoin { mode: None },
                },
            ]),
        }
    }
}

/// Which slice of the chaos matrix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosBenchMode {
    /// The full sweep over a 6-hour trace: the 3 single-node scenarios
    /// × 3 failover policies × nodes ∈ {2, 4, 8} (27 cells), plus the
    /// 4 correlated/partial scenarios × 3 failover policies × nodes ∈
    /// {4, 8} (24 cells) — 51 cells total.
    Full,
    /// A CI-sized 4-cell subset over a 2-hour trace: crash/migrate
    /// (the headline failover path) and slow/drop (the throttle path)
    /// at 2 nodes, plus zone_crash_reseed/migrate (correlated failure
    /// with re-replication) and disk_degrade/park (partial fault) at
    /// 4 nodes.
    Smoke,
}

/// One cell of the chaos matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosCellSpec {
    /// Node count.
    pub nodes: usize,
    /// The injected fault episode.
    pub scenario: ChaosScenario,
    /// What happens to a crashed node's streams.
    pub failover: FailoverPolicy,
}

impl ChaosBenchMode {
    /// Mode tag used in the JSON document. The `cluster_` prefix keeps
    /// `repro compare` using the cluster comparer (same exact-counter
    /// rules) for chaos documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChaosBenchMode::Full => "cluster_chaos_full",
            ChaosBenchMode::Smoke => "cluster_chaos_smoke",
        }
    }

    /// The pinned workload/policy seed every cell uses (the cluster
    /// matrix's seed, so traces match at equal shape).
    #[must_use]
    pub fn seed(self) -> u64 {
        1
    }

    /// Catalog size.
    #[must_use]
    pub fn movies(self) -> usize {
        match self {
            ChaosBenchMode::Full => 64,
            ChaosBenchMode::Smoke => 16,
        }
    }

    /// Expected arrivals per node (total scales with the cell's node
    /// count, as in the cluster matrix).
    #[must_use]
    pub fn arrivals_per_node(self) -> f64 {
        match self {
            ChaosBenchMode::Full => 240.0,
            ChaosBenchMode::Smoke => 200.0,
        }
    }

    /// Simulated horizon in hours (peak at the midpoint; the strike
    /// lands before the peak, the rejoin after it).
    #[must_use]
    pub fn horizon_hours(self) -> f64 {
        match self {
            ChaosBenchMode::Full => 6.0,
            ChaosBenchMode::Smoke => 2.0,
        }
    }

    /// The cells of this mode, in run order.
    #[must_use]
    pub fn cells(self) -> Vec<ChaosCellSpec> {
        match self {
            ChaosBenchMode::Full => {
                let mut out = Vec::new();
                for nodes in CHAOS_NODE_COUNTS {
                    for scenario in ChaosScenario::SINGLE_NODE {
                        for failover in FailoverPolicy::ALL {
                            out.push(ChaosCellSpec {
                                nodes,
                                scenario,
                                failover,
                            });
                        }
                    }
                }
                // Correlated and partial-fault scenarios need a rack to
                // be a strict subset of the cluster, so they start at 4
                // nodes.
                for nodes in CHAOS_NODE_COUNTS {
                    if nodes < 4 {
                        continue;
                    }
                    for scenario in ChaosScenario::CORRELATED {
                        for failover in FailoverPolicy::ALL {
                            out.push(ChaosCellSpec {
                                nodes,
                                scenario,
                                failover,
                            });
                        }
                    }
                }
                out
            }
            ChaosBenchMode::Smoke => vec![
                ChaosCellSpec {
                    nodes: 2,
                    scenario: ChaosScenario::Crash,
                    failover: FailoverPolicy::Migrate,
                },
                ChaosCellSpec {
                    nodes: 2,
                    scenario: ChaosScenario::Slow,
                    failover: FailoverPolicy::Drop,
                },
                ChaosCellSpec {
                    nodes: 4,
                    scenario: ChaosScenario::ZoneCrashReseed,
                    failover: FailoverPolicy::Migrate,
                },
                ChaosCellSpec {
                    nodes: 4,
                    scenario: ChaosScenario::DiskDegrade,
                    failover: FailoverPolicy::Park,
                },
            ],
        }
    }

    /// Fingerprint over everything that pins this mode's matrix.
    #[must_use]
    pub fn config_fingerprint(self) -> String {
        let mut parts = vec![
            "chaos".to_owned(),
            self.label().to_owned(),
            format!("seed={}", self.seed()),
            format!("movies={}", self.movies()),
            format!("arrivals_per_node={}", self.arrivals_per_node()),
            format!("horizon_hours={}", self.horizon_hours()),
            "strike=0.25/rejoin=0.60/node=0".to_owned(),
            "disks=2/zone=rack0-of-2/reseed_after=0.10".to_owned(),
        ];
        for spec in self.cells() {
            parts.push(format!(
                "{}/{}/{}",
                spec.nodes,
                spec.scenario.label(),
                spec.failover.label()
            ));
        }
        crate::compare::fingerprint(parts)
    }
}

/// Measurements from one `(nodes, scenario, failover)` cell: the
/// cluster counters (same keys as a cluster cell, so the comparer's
/// exact rules apply unchanged) plus the chaos degradation accounting.
#[derive(Clone, Debug)]
pub struct ChaosCellResult {
    /// Node count.
    pub nodes: usize,
    /// Scenario label.
    pub scenario: &'static str,
    /// Failover-policy label.
    pub failover: &'static str,
    /// Wall-clock seconds spent running the cell.
    pub wall_clock_s: f64,
    /// Arrivals dispatched (the trace length).
    pub dispatched: u64,
    /// Streams admitted across the cluster.
    pub admitted: u64,
    /// Requests deferred across the cluster.
    pub deferred: u64,
    /// Requests rejected across the cluster.
    pub rejected: u64,
    /// Arrivals accepted by a non-primary replica.
    pub redirected: u64,
    /// Arrivals that overflowed every replica into the cluster queue.
    pub overflow_queued: u64,
    /// Buffer underflows across the cluster (must stay 0 under chaos).
    pub underflows: u64,
    /// Aggregate peak buffer memory across nodes, in mebibytes.
    pub peak_memory_mib: f64,
    /// Faults applied in the cell.
    pub faults_injected: u64,
    /// Streams interrupted by the strike (0 for throttle scenarios).
    pub interrupted: u64,
    /// Interrupted streams re-admitted on a sibling.
    pub migrated: u64,
    /// Interrupted streams parked in the overflow FIFO.
    pub parked_failover: u64,
    /// Interrupted streams dropped at failover time.
    pub dropped: u64,
    /// Parked entries unplaceable at end of run (every candidate down).
    pub unplaceable: u64,
    /// Rejoin faults applied.
    pub recoveries: u64,
    /// Rejoins that rebuilt tables cold.
    pub cold_rebuilds: u64,
    /// Domain-level events the schedule expanded from (0 for flat
    /// schedules).
    pub domain_faults: u64,
    /// Disk-degrade faults applied.
    pub disk_degradations: u64,
    /// Disk-error faults applied.
    pub disk_errors: u64,
    /// Movies re-replicated onto survivors by fault-triggered reseeds.
    pub rereplications: u64,
    /// Parked streams re-admitted through a rebuilt replica.
    pub rereplicated_streams: u64,
    /// Mean seconds from down to rejoin (None if nothing went down).
    pub mean_time_to_recover_s: Option<f64>,
    /// Fraction of node-time available over the run.
    pub availability: f64,
    /// Per-node `(node, redirected_in, redirected_out)` counters — the
    /// traced summary lists them so `trace-analyze` can reconcile hop
    /// spans per node, exactly as in a cluster cell.
    pub per_node_redirects: Vec<(usize, u64, u64)>,
}

impl ChaosCellResult {
    fn to_json(&self) -> String {
        let mut o = Object::new();
        o.uint("nodes", self.nodes as u64);
        o.str("scenario", self.scenario);
        o.str("failover", self.failover);
        // Pinned shape, spelled out so the comparer's cluster cell
        // labels stay unambiguous.
        o.str("placement", "replicated_hot");
        o.str("dispatch", "least_loaded");
        o.num("wall_clock_s", self.wall_clock_s);
        o.uint("dispatched", self.dispatched);
        o.uint("admitted", self.admitted);
        o.uint("deferred", self.deferred);
        o.uint("rejected", self.rejected);
        o.uint("redirected", self.redirected);
        o.uint("overflow_queued", self.overflow_queued);
        o.uint("underflows", self.underflows);
        o.num("peak_memory_mib", self.peak_memory_mib);
        o.uint("faults_injected", self.faults_injected);
        o.uint("interrupted", self.interrupted);
        o.uint("migrated", self.migrated);
        o.uint("parked_failover", self.parked_failover);
        o.uint("dropped", self.dropped);
        o.uint("unplaceable", self.unplaceable);
        o.uint("recoveries", self.recoveries);
        o.uint("cold_rebuilds", self.cold_rebuilds);
        o.uint("domain_faults", self.domain_faults);
        o.uint("disk_degradations", self.disk_degradations);
        o.uint("disk_errors", self.disk_errors);
        o.uint("rereplications", self.rereplications);
        o.uint("rereplicated_streams", self.rereplicated_streams);
        match self.mean_time_to_recover_s {
            Some(x) => o.num("mean_time_to_recover_s", x),
            None => o.null("mean_time_to_recover_s"),
        }
        o.num("availability", self.availability);
        o.finish()
    }
}

/// A full chaos bench run: every cell of the mode, plus totals.
#[derive(Clone, Debug)]
pub struct ChaosBenchReport {
    /// The mode that was run.
    pub mode: ChaosBenchMode,
    /// The pinned seed every cell used.
    pub seed: u64,
    /// Per-cell measurements, in matrix order.
    pub cells: Vec<ChaosCellResult>,
    /// Wall-clock seconds for the whole matrix.
    pub total_wall_clock_s: f64,
}

impl ChaosBenchReport {
    /// Renders the `BENCH_chaos.json` document (schema-versioned, same
    /// envelope as the cluster document so `repro compare` accepts it).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.uint("version", crate::compare::BENCH_SCHEMA_VERSION);
        o.str("mode", self.mode.label());
        o.uint("seed", self.seed);
        o.uint("movies", self.mode.movies() as u64);
        o.num("arrivals_per_node", self.mode.arrivals_per_node());
        o.str("config_fingerprint", &self.mode.config_fingerprint());
        let mut matrix = Object::new();
        matrix.uint("cells", self.cells.len() as u64);
        let mut node_counts = Array::new();
        for c in &self.cells {
            node_counts.raw(&c.nodes.to_string());
        }
        matrix.raw("nodes", &node_counts.finish());
        o.raw("matrix", &matrix.finish());
        let mut cells = Array::new();
        for c in &self.cells {
            cells.raw(&c.to_json());
        }
        o.raw("cells", &cells.finish());
        o.num("total_wall_clock_s", self.total_wall_clock_s);
        o.finish()
    }
}

/// The pinned cluster shape every chaos cell runs: the cluster matrix's
/// engine (dynamic scheme under Round-Robin) with a finite memory
/// budget — the static worst-case reservation — so memory-pressure
/// faults constrain a real quantity, behind 2-way replicated-hot
/// placement and least-loaded dispatch (the shape failover needs:
/// without a sibling replica there is nowhere to migrate).
fn chaos_cluster_config(mode: ChaosBenchMode, nodes: usize) -> ClusterConfig {
    let mut engine = cluster_engine_config();
    engine.memory_budget = Some(min_memory_static(
        &engine.params,
        engine.params.max_requests(),
    ));
    // Two disks per node so partial faults have a sub-budget to hit;
    // with both disks healthy the combined multiplier is exactly 1.0,
    // so non-disk cells are bit-identical to the single-disk shape.
    engine.disks = 2;
    ClusterConfig {
        nodes,
        engine,
        movies: mode.movies(),
        movie_theta: 0.271,
        placement: PlacementPolicy::ReplicatedHot {
            replicas: 2.min(nodes),
            hot_movies: (mode.movies() / 4).max(1),
        },
        dispatch: DispatchPolicy::LeastLoaded,
        seed: mode.seed(),
    }
}

fn cell_chaos_config(mode: ChaosBenchMode, spec: ChaosCellSpec) -> ChaosConfig {
    let horizon = Seconds::from_hours(mode.horizon_hours());
    ChaosConfig {
        cluster: chaos_cluster_config(mode, spec.nodes),
        schedule: spec.scenario.schedule(spec.nodes, horizon),
        failover: spec.failover,
        recovery: spec.scenario.recovery(),
        reseed_after: spec.scenario.reseed_after(horizon),
    }
}

/// Workloads shared across cells with the same node count (the trace is
/// independent of scenario and failover policy).
struct SharedTraces {
    by_nodes: Vec<(usize, Workload)>,
}

impl SharedTraces {
    fn generate(mode: ChaosBenchMode, specs: &[ChaosCellSpec]) -> Self {
        let mut node_counts: Vec<usize> = specs.iter().map(|s| s.nodes).collect();
        node_counts.sort_unstable();
        node_counts.dedup();
        SharedTraces {
            by_nodes: node_counts
                .into_iter()
                .map(|n| {
                    (
                        n,
                        make_workload(
                            mode.movies(),
                            mode.arrivals_per_node() * n as f64,
                            mode.horizon_hours(),
                            mode.seed(),
                        ),
                    )
                })
                .collect(),
        }
    }

    fn for_nodes(&self, nodes: usize) -> &Workload {
        self.by_nodes
            .iter()
            .find(|(n, _)| *n == nodes)
            .map(|(_, wl)| wl)
            .expect("every cell's node count was generated up front")
    }
}

/// Runs one chaos cell over the hoisted trace.
fn run_chaos_cell(
    mode: ChaosBenchMode,
    spec: ChaosCellSpec,
    wl: &Workload,
    obs: &Obs,
    lifecycle_trace_only: bool,
) -> ChaosCellResult {
    let cfg = cell_chaos_config(mode, spec);
    let t0 = WallInstant::now();
    let mut cluster =
        Cluster::with_observer(cfg.cluster.clone(), obs.clone()).unwrap_or_else(|e| {
            panic!(
                "chaos bench cell ({} nodes, {}/{}) must validate: {e}",
                spec.nodes,
                spec.scenario.label(),
                spec.failover.label()
            )
        });
    if lifecycle_trace_only {
        cluster.set_per_cycle_tracing(false);
    }
    let report = run_chaos_on(cluster, &cfg, &wl.arrivals, 1);
    let wall_clock_s = t0.elapsed().as_secs_f64();

    ChaosCellResult {
        nodes: spec.nodes,
        scenario: spec.scenario.label(),
        failover: spec.failover.label(),
        wall_clock_s,
        dispatched: report.cluster.dispatched,
        admitted: report.cluster.admitted(),
        deferred: report.cluster.deferrals(),
        rejected: report.cluster.rejected(),
        redirected: report.cluster.redirected,
        overflow_queued: report.cluster.overflow_queued,
        underflows: report.cluster.underflows(),
        peak_memory_mib: report.cluster.peak_memory_bits() / (8.0 * 1024.0 * 1024.0),
        faults_injected: report.summary.faults_injected,
        interrupted: report.summary.interrupted,
        migrated: report.summary.migrated,
        parked_failover: report.summary.parked,
        dropped: report.summary.dropped,
        unplaceable: report.summary.unplaceable,
        recoveries: report.summary.recoveries,
        cold_rebuilds: report.summary.cold_rebuilds,
        domain_faults: report.summary.domain_faults,
        disk_degradations: report.summary.disk_degradations,
        disk_errors: report.summary.disk_errors,
        rereplications: report.summary.rereplications,
        rereplicated_streams: report.summary.rereplicated,
        mean_time_to_recover_s: report.summary.mean_time_to_recover_s,
        availability: report.summary.availability,
        per_node_redirects: report
            .cluster
            .nodes
            .iter()
            .map(|n| (n.node, n.redirected_in, n.redirected_out))
            .collect(),
    }
}

/// Runs one ad-hoc chaos episode — the `repro chaos --script`/`--seed`
/// path: the pinned smoke shape at `nodes` nodes with a caller-supplied
/// schedule, returning the full [`vod_chaos::ChaosReport`].
///
/// # Errors
///
/// Returns [`vod_types::ConfigError`] for infeasible parameters or a
/// schedule referencing a node outside the cluster.
pub fn run_chaos_adhoc(
    nodes: usize,
    schedule: FaultSchedule,
    failover: FailoverPolicy,
    recovery: RecoveryPolicy,
    reseed_after: Option<Seconds>,
    obs: &Obs,
) -> Result<vod_chaos::ChaosReport, vod_types::ConfigError> {
    let mode = ChaosBenchMode::Smoke;
    let wl = make_workload(
        mode.movies(),
        mode.arrivals_per_node() * nodes as f64,
        mode.horizon_hours(),
        mode.seed(),
    );
    let cfg = ChaosConfig {
        cluster: chaos_cluster_config(mode, nodes),
        schedule,
        failover,
        recovery,
        reseed_after,
    };
    vod_chaos::run_chaos(&cfg, &wl.arrivals, 1, obs.clone())
}

/// Runs the chaos matrix for `mode` on up to `jobs` worker threads.
/// Cells collect by matrix index, so every deterministic field is
/// byte-identical whatever the job count; each cell's inner run is
/// single-threaded (the chaos runner interleaves faults with arrivals,
/// which is inherently sequential — only the end-of-run drain
/// parallelizes, and at bench-cell node counts it is not worth a pool).
#[must_use]
pub fn run_chaos_bench(
    mode: ChaosBenchMode,
    jobs: usize,
    obs: &Obs,
    progress: &(dyn Fn(&str) + Sync),
) -> ChaosBenchReport {
    let specs = mode.cells();
    let total = specs.len();
    let jobs = jobs.max(1).min(total.max(1));
    let t0 = WallInstant::now();
    let traces = SharedTraces::generate(mode, &specs);

    let announce = |i: usize, spec: ChaosCellSpec| {
        progress(&format!(
            "chaos [{}/{}] {} nodes / {} / {}",
            i + 1,
            total,
            spec.nodes,
            spec.scenario.label(),
            spec.failover.label(),
        ));
    };

    let cells: Vec<ChaosCellResult> = if jobs == 1 {
        specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                announce(i, spec);
                run_chaos_cell(mode, spec, traces.for_nodes(spec.nodes), obs, false)
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ChaosCellResult>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    announce(i, specs[i]);
                    let result = run_chaos_cell(
                        mode,
                        specs[i],
                        traces.for_nodes(specs[i].nodes),
                        obs,
                        false,
                    );
                    *slots[i]
                        .lock()
                        .expect("chaos bench slot mutex poisoned: a worker panicked") =
                        Some(result);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .expect("chaos bench slot mutex poisoned: a worker panicked")
                    .unwrap_or_else(|| panic!("chaos cell {i} was claimed but never filled"))
            })
            .collect()
    };

    ChaosBenchReport {
        mode,
        seed: mode.seed(),
        cells,
        total_wall_clock_s: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the chaos matrix with span tracing on, appending one traced
/// section per cell to `trace_out` as JSONL. The section markers reuse
/// the cluster kinds (`cluster_cell` / `cluster_summary`) with the
/// chaos fields added, so `repro trace-analyze` and `repro report`
/// consume chaos traces unchanged; fault and recovery events appear as
/// generic timestamped events inside the section.
#[must_use]
pub fn run_chaos_bench_traced(
    mode: ChaosBenchMode,
    base_obs: &Obs,
    trace_out: &mut String,
    progress: &(dyn Fn(&str) + Sync),
) -> ChaosBenchReport {
    let specs = mode.cells();
    let total = specs.len();
    let t0 = WallInstant::now();
    let traces = SharedTraces::generate(mode, &specs);

    let mut cells = Vec::with_capacity(total);
    for (i, &spec) in specs.iter().enumerate() {
        progress(&format!(
            "chaos [{}/{}] {} nodes / {} / {} (traced)",
            i + 1,
            total,
            spec.nodes,
            spec.scenario.label(),
            spec.failover.label(),
        ));
        let recorder = std::sync::Arc::new(vod_obs::RecorderSink::new().with_kinds(&[
            vod_obs::EventKind::SpanStart,
            vod_obs::EventKind::SpanAnnotate,
            vod_obs::EventKind::SpanEnd,
            vod_obs::EventKind::RequestAdmitted,
            vod_obs::EventKind::RequestDeferred,
            vod_obs::EventKind::RequestRejected,
            vod_obs::EventKind::Underflow,
            vod_obs::EventKind::FaultInjected,
            vod_obs::EventKind::NodeRecovered,
        ]));
        let cell_sink: std::sync::Arc<dyn vod_obs::Sink> = match base_obs.sink() {
            Some(base) => std::sync::Arc::new(vod_obs::TeeSink::new(
                std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn vod_obs::Sink>,
                base,
            )),
            None => std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn vod_obs::Sink>,
        };
        let obs = Obs::new(cell_sink).with_metrics(base_obs.metrics().clone());
        let cell = run_chaos_cell(mode, spec, traces.for_nodes(spec.nodes), &obs, true);
        let snap = recorder.snapshot();

        let mut header = Object::new();
        header.str("kind", "cluster_cell");
        header.uint("nodes", spec.nodes as u64);
        header.str("placement", "replicated_hot");
        header.str("dispatch", "least_loaded");
        header.str("scenario", spec.scenario.label());
        header.str("failover", spec.failover.label());
        trace_out.push_str(&header.finish());
        trace_out.push('\n');
        trace_out.push_str(&snap.export_jsonl());

        let mut summary = Object::new();
        summary.str("kind", "cluster_summary");
        summary.uint("redirected", cell.redirected);
        summary.uint("events", snap.events().len() as u64);
        summary.uint("events_dropped", snap.events_dropped());
        summary.uint("spans_dropped", snap.spans_dropped());
        summary.uint("faults_injected", cell.faults_injected);
        summary.uint("interrupted", cell.interrupted);
        summary.uint("migrated", cell.migrated);
        summary.uint("dropped", cell.dropped);
        let mut nodes = Array::new();
        for &(node, rin, rout) in &cell.per_node_redirects {
            let mut no = Object::new();
            no.uint("node", node as u64);
            no.uint("redirected_in", rin);
            no.uint("redirected_out", rout);
            nodes.raw(&no.finish());
        }
        summary.raw("per_node", &nodes.finish());
        trace_out.push_str(&summary.finish());
        trace_out.push('\n');

        cells.push(cell);
    }

    ChaosBenchReport {
        mode,
        seed: mode.seed(),
        cells,
        total_wall_clock_s: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_chaos::run_chaos;

    #[test]
    fn full_matrix_sweeps_every_shape_once() {
        let cells = ChaosBenchMode::Full.cells();
        // 3 single-node scenarios at {2,4,8} nodes + 4 correlated
        // scenarios at {4,8} nodes, each × 3 failover policies.
        assert_eq!(cells.len(), 3 * 3 * 3 + 4 * 2 * 3);
        let dedup: std::collections::HashSet<String> = cells
            .iter()
            .map(|c| format!("{}/{}/{}", c.nodes, c.scenario.label(), c.failover.label()))
            .collect();
        assert_eq!(dedup.len(), cells.len(), "no duplicate cells");
        assert!(
            cells
                .iter()
                .all(|c| c.nodes >= 4 || ChaosScenario::SINGLE_NODE.contains(&c.scenario)),
            "correlated scenarios need a rack to be a strict subset"
        );
    }

    #[test]
    fn smoke_matrix_runs_serializes_and_degrades_gracefully() {
        let report = run_chaos_bench(ChaosBenchMode::Smoke, 1, &Obs::null(), &|_| {});
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert!(cell.dispatched > 0);
            assert_eq!(cell.underflows, 0, "chaos must never underflow");
            assert!(cell.availability <= 1.0);
        }
        // The crash/migrate cell interrupts streams and recovers them.
        let crash = &report.cells[0];
        assert_eq!(crash.scenario, "crash");
        assert_eq!(crash.nodes, 2);
        assert_eq!(crash.faults_injected, 2, "strike + rejoin");
        assert_eq!(crash.recoveries, 1);
        assert!(crash.interrupted > 0);
        assert_eq!(
            crash.interrupted,
            crash.migrated + crash.parked_failover + crash.dropped
        );
        assert_eq!(crash.cold_rebuilds, 1);
        assert!(crash.availability < 1.0);
        assert!(crash.mean_time_to_recover_s.is_some());
        // The slow/drop cell throttles without evicting anything.
        let slow = &report.cells[1];
        assert_eq!(slow.scenario, "slow");
        assert_eq!(slow.interrupted, 0);
        assert_eq!(slow.cold_rebuilds, 0);
        // The zone_crash_reseed/migrate cell downs rack0 = {0, 2} of 4
        // nodes (2 domain events → 4 per-node faults) and rebuilds the
        // lost replicas onto the survivors before the rack rejoins.
        let zone = &report.cells[2];
        assert_eq!(zone.scenario, "zone_crash_reseed");
        assert_eq!(zone.nodes, 4);
        assert_eq!(zone.domain_faults, 2);
        assert_eq!(zone.faults_injected, 4);
        assert_eq!(zone.recoveries, 2);
        assert!(zone.interrupted > 0);
        assert!(
            zone.rereplications > 0,
            "the reseed horizon elapses while rack0 is down"
        );
        assert!(zone.rereplicated_streams <= zone.parked_failover);
        assert!(zone.availability < 1.0);
        // The disk_degrade/park cell throttles one disk's sub-budget
        // without downing the node.
        let disk = &report.cells[3];
        assert_eq!(disk.scenario, "disk_degrade");
        assert_eq!(disk.nodes, 4);
        assert_eq!(disk.disk_degradations, 1);
        assert_eq!(disk.interrupted, 0, "partial faults keep the node up");
        assert!((disk.availability - 1.0).abs() < f64::EPSILON);

        let json = report.to_json();
        assert!(json.contains("\"mode\":\"cluster_chaos_smoke\""));
        assert!(json.contains("\"scenario\":\"crash\""));
        assert!(json.contains("\"scenario\":\"zone_crash_reseed\""));
        assert!(json.contains("\"rereplications\""));
        assert!(json.contains("\"availability\""));
    }

    /// The acceptance bar: `repro chaos` output is byte-identical at
    /// any `--jobs`.
    #[test]
    fn parallel_chaos_bench_is_byte_identical_to_sequential() {
        let seq = run_chaos_bench(ChaosBenchMode::Smoke, 1, &Obs::null(), &|_| {});
        let par = run_chaos_bench(ChaosBenchMode::Smoke, 2, &Obs::null(), &|_| {});
        let strip = |mut r: ChaosBenchReport| {
            for c in &mut r.cells {
                c.wall_clock_s = 0.0;
            }
            r.total_wall_clock_s = 0.0;
            r.to_json()
        };
        assert_eq!(strip(seq), strip(par));
    }

    /// The traced chaos matrix produces identical deterministic
    /// counters, and its trace passes the schema check and the
    /// `trace-analyze` invariant audit.
    #[test]
    fn traced_smoke_matrix_is_identical_and_audits_clean() {
        let plain = run_chaos_bench(ChaosBenchMode::Smoke, 1, &Obs::null(), &|_| {});
        let mut trace = String::new();
        let traced =
            run_chaos_bench_traced(ChaosBenchMode::Smoke, &Obs::null(), &mut trace, &|_| {});
        for (a, b) in plain.cells.iter().zip(&traced.cells) {
            assert_eq!(a.dispatched, b.dispatched);
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.interrupted, b.interrupted);
            assert_eq!(a.migrated, b.migrated);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.peak_memory_mib.to_bits(), b.peak_memory_mib.to_bits());
        }
        assert!(
            trace.contains("\"kind\":\"fault_injected\""),
            "fault events must appear in the trace"
        );
        assert!(trace.contains("\"kind\":\"node_recovered\""));
        assert!(
            trace.contains("\"kind\":\"span_start\"") && trace.contains("\"failover\""),
            "failover spans must appear in the crash cell's section"
        );
        crate::traceview::check_schema(&trace).expect("trace schema must hold");
        let report = crate::traceview::analyze(&trace, 5).expect("trace must parse");
        assert_eq!(report.sections.len(), 4, "one section per smoke cell");
        assert!(
            report.audit_passed(),
            "invariant audit: {:?}",
            report
                .sections
                .iter()
                .flat_map(|s| &s.violations)
                .collect::<Vec<_>>()
        );
    }

    /// The empty-schedule identity over the full pinned 45-cell cluster
    /// matrix: every cell's plain `Cluster::run` equals the chaos
    /// runner with no faults, bit for bit (`DiskRunStats` and `to_bits`
    /// peak memory included via `ClusterReport`'s `PartialEq`).
    /// `#[ignore]`d out of tier-1 (runs the full matrix twice); CI runs
    /// it with `--ignored` in the release chaos job.
    #[test]
    #[ignore = "full 45-cell matrix twice; run in release with --ignored"]
    fn empty_schedule_is_identity_across_full_cluster_matrix() {
        use crate::cluster::{cell_config, ClusterBenchMode};
        let mode = ClusterBenchMode::Full;
        let specs = mode.cells();
        let total = specs.len();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let failures = Mutex::new(Vec::new());
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(total) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let spec = specs[i];
                    let cfg = cell_config(mode, spec, true);
                    let wl = make_workload(
                        mode.movies(),
                        mode.arrivals_per_node() * spec.nodes as f64,
                        mode.horizon_hours(),
                        mode.seed(),
                    );
                    let plain = Cluster::new(cfg.clone())
                        .expect("valid config")
                        .run(&wl.arrivals);
                    let chaos_cfg = ChaosConfig {
                        cluster: cfg,
                        schedule: FaultSchedule::empty(),
                        failover: FailoverPolicy::Migrate,
                        recovery: RecoveryPolicy::Warm,
                        reseed_after: None,
                    };
                    let chaos =
                        run_chaos(&chaos_cfg, &wl.arrivals, 1, Obs::null()).expect("valid config");
                    if chaos.cluster != plain {
                        failures.lock().unwrap().push(format!(
                            "{} nodes / {} / {}",
                            spec.nodes,
                            spec.placement.label(),
                            spec.dispatch.label()
                        ));
                    }
                });
            }
        });
        let failures = failures.into_inner().unwrap();
        assert!(failures.is_empty(), "identity broke in cells: {failures:?}");
    }

    /// The empty-schedule identity at bench shape: running the chaos
    /// engine with no faults over a chaos-configured cluster equals
    /// `Cluster::run` bit for bit (`DiskRunStats` + peak memory).
    #[test]
    fn empty_schedule_matches_plain_cluster_at_bench_shape() {
        let mode = ChaosBenchMode::Smoke;
        let wl = make_workload(
            mode.movies(),
            mode.arrivals_per_node() * 2.0,
            mode.horizon_hours(),
            mode.seed(),
        );
        let cluster_cfg = chaos_cluster_config(mode, 2);
        let plain = Cluster::new(cluster_cfg.clone())
            .expect("valid config")
            .run(&wl.arrivals);
        let cfg = ChaosConfig {
            cluster: cluster_cfg,
            schedule: FaultSchedule::empty(),
            failover: FailoverPolicy::Migrate,
            recovery: RecoveryPolicy::Warm,
            reseed_after: None,
        };
        let chaos = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid config");
        assert_eq!(chaos.cluster, plain);
        for (a, b) in plain.nodes.iter().zip(&chaos.cluster.nodes) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(
                a.stats.peak_memory.as_f64().to_bits(),
                b.stats.peak_memory.as_f64().to_bits()
            );
        }
    }
}
