//! `repro cluster`: the `cluster_scaling` performance matrix.
//!
//! Sweeps node count × placement policy × dispatch policy over a shared
//! multi-movie workload (one Poisson process per movie, Zipf catalog —
//! [`vod_workload::multi_movie`]), scaling total expected arrivals with
//! the node count so per-node load stays constant across the sweep. Each
//! cell reports the front end's deterministic counters (dispatched /
//! admitted / deferred / rejected / redirected / overflow-queued /
//! underflows), merged initial-latency percentiles, the load-imbalance
//! ratio, and each node's memory saving versus a static worst-case
//! reservation.
//!
//! Everything except wall-clock is deterministic for a given mode: the
//! trace is a pure function of `(config, seed)`, a cluster run is a pure
//! function of `(config, trace)`, and matrix results are collected by
//! cell index whatever `--jobs` says — the same contract as the engine
//! matrix in [`crate::perf`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant as WallInstant;

use vod_cluster::{Cluster, ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_core::SchemeKind;
use vod_obs::json::{Array, Object};
use vod_obs::timeseries::SeriesRecorder;
use vod_obs::Obs;
use vod_sched::SchedulingMethod;
use vod_sim::EngineConfig;
use vod_types::Seconds;
use vod_workload::{multi_movie, MultiMovieConfig, Workload};

/// Node counts of the full scaling sweep.
pub const FULL_NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Which slice of the cluster matrix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterBenchMode {
    /// The full sweep: nodes ∈ {1, 2, 4, 8, 16} × 3 placements × 3
    /// dispatch policies (45 cells) over a 6-hour trace.
    Full,
    /// A CI-sized 2-cell subset at 2 nodes over a 2-hour trace.
    Smoke,
}

/// One cell of the matrix: a cluster shape to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterCellSpec {
    /// Node count.
    pub nodes: usize,
    /// Catalog placement policy.
    pub placement: PlacementPolicy,
    /// Replica-selection policy.
    pub dispatch: DispatchPolicy,
}

impl ClusterBenchMode {
    /// Mode tag used in the JSON document and baseline check.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ClusterBenchMode::Full => "cluster_full",
            ClusterBenchMode::Smoke => "cluster_smoke",
        }
    }

    /// The pinned workload/policy seed every cell uses.
    #[must_use]
    pub fn seed(self) -> u64 {
        1
    }

    /// Catalog size.
    #[must_use]
    pub fn movies(self) -> usize {
        match self {
            ClusterBenchMode::Full => 64,
            ClusterBenchMode::Smoke => 16,
        }
    }

    /// Expected arrivals per node: total trace volume is this times the
    /// cell's node count, so per-node load is constant across the sweep.
    #[must_use]
    pub fn arrivals_per_node(self) -> f64 {
        match self {
            ClusterBenchMode::Full => 240.0,
            ClusterBenchMode::Smoke => 200.0,
        }
    }

    /// Simulated horizon in hours (peak sits at the midpoint).
    #[must_use]
    pub fn horizon_hours(self) -> f64 {
        match self {
            ClusterBenchMode::Full => 6.0,
            ClusterBenchMode::Smoke => 2.0,
        }
    }

    /// The cells of this mode, in run order.
    #[must_use]
    pub fn cells(self) -> Vec<ClusterCellSpec> {
        let hot = (self.movies() / 4).max(1);
        match self {
            ClusterBenchMode::Full => {
                let mut out = Vec::new();
                for nodes in FULL_NODE_COUNTS {
                    let placements = [
                        PlacementPolicy::RoundRobin,
                        PlacementPolicy::ZipfStripe,
                        PlacementPolicy::ReplicatedHot {
                            replicas: 2.min(nodes),
                            hot_movies: hot,
                        },
                    ];
                    let dispatches = [
                        DispatchPolicy::LeastLoaded,
                        DispatchPolicy::MostHeadroom,
                        DispatchPolicy::RandomOfK { k: 2 },
                    ];
                    for placement in placements {
                        for dispatch in dispatches {
                            out.push(ClusterCellSpec {
                                nodes,
                                placement,
                                dispatch,
                            });
                        }
                    }
                }
                out
            }
            ClusterBenchMode::Smoke => vec![
                ClusterCellSpec {
                    nodes: 2,
                    placement: PlacementPolicy::RoundRobin,
                    dispatch: DispatchPolicy::LeastLoaded,
                },
                ClusterCellSpec {
                    nodes: 2,
                    placement: PlacementPolicy::ReplicatedHot {
                        replicas: 2,
                        hot_movies: hot,
                    },
                    dispatch: DispatchPolicy::MostHeadroom,
                },
            ],
        }
    }

    /// Fingerprint over everything that pins this mode's matrix — the
    /// cluster analogue of [`crate::perf::BenchMode::config_fingerprint`].
    #[must_use]
    pub fn config_fingerprint(self) -> String {
        let mut parts = vec![
            "cluster".to_owned(),
            self.label().to_owned(),
            format!("seed={}", self.seed()),
            format!("movies={}", self.movies()),
            format!("arrivals_per_node={}", self.arrivals_per_node()),
            format!("horizon_hours={}", self.horizon_hours()),
        ];
        for spec in self.cells() {
            parts.push(format!(
                "{}/{}/{}",
                spec.nodes,
                spec.placement.label(),
                spec.dispatch.label()
            ));
        }
        crate::compare::fingerprint(parts)
    }
}

/// One node's share of a cluster cell.
#[derive(Clone, Debug)]
pub struct ClusterNodeCell {
    /// Node index.
    pub node: usize,
    /// Arrivals the front end offered to this node.
    pub dispatched: u64,
    /// Streams admitted here.
    pub admitted: u64,
    /// Requests deferred here (per-node Assumption-1 enforcement).
    pub deferred: u64,
    /// Arrivals accepted here after the primary replica refused.
    pub redirected_in: u64,
    /// Arrivals this node handed off as primary.
    pub redirected_out: u64,
    /// Peak buffer-pool usage, in mebibytes.
    pub peak_memory_mib: f64,
    /// `1 − peak / min_memory_static(N_cap)` for this node: the share
    /// of a static worst-case reservation the dynamic sizing avoided.
    pub memory_saving_vs_static: f64,
    /// Estimator-audit windows scored on this node.
    pub audit_samples: u64,
    /// Audit windows whose estimate fell short of the actual count.
    pub audit_violations: u64,
}

/// Measurements from one `(nodes, placement, dispatch)` cell.
#[derive(Clone, Debug)]
pub struct ClusterCellResult {
    /// Node count.
    pub nodes: usize,
    /// Placement-policy label.
    pub placement: &'static str,
    /// Dispatch-policy label.
    pub dispatch: &'static str,
    /// Wall-clock seconds spent running the cell.
    pub wall_clock_s: f64,
    /// Arrivals dispatched (the trace length).
    pub dispatched: u64,
    /// Streams admitted across the cluster.
    pub admitted: u64,
    /// Requests deferred across the cluster.
    pub deferred: u64,
    /// Requests rejected across the cluster.
    pub rejected: u64,
    /// Arrivals accepted by a non-primary replica.
    pub redirected: u64,
    /// Arrivals that overflowed every replica into the cluster queue.
    pub overflow_queued: u64,
    /// Buffer underflows across the cluster (0 for the enforcing scheme).
    pub underflows: u64,
    /// Aggregate peak buffer memory across nodes, in mebibytes.
    pub peak_memory_mib: f64,
    /// Median initial latency over merged samples, seconds.
    pub il_p50_s: Option<f64>,
    /// 95th-percentile initial latency over merged samples, seconds.
    pub il_p95_s: Option<f64>,
    /// Deferrals per dispatched arrival.
    pub deferral_rate: f64,
    /// Busiest node's admissions over the mean (1.0 = balanced).
    pub imbalance_ratio: f64,
    /// Mean per-node memory saving vs a static reservation (over nodes
    /// that served at least one stream).
    pub mean_memory_saving_vs_static: f64,
    /// Per-node detail, indexed by node.
    pub per_node: Vec<ClusterNodeCell>,
}

impl ClusterCellResult {
    fn to_json(&self) -> String {
        let mut o = Object::new();
        o.uint("nodes", self.nodes as u64);
        o.str("placement", self.placement);
        o.str("dispatch", self.dispatch);
        o.num("wall_clock_s", self.wall_clock_s);
        o.uint("dispatched", self.dispatched);
        o.uint("admitted", self.admitted);
        o.uint("deferred", self.deferred);
        o.uint("rejected", self.rejected);
        o.uint("redirected", self.redirected);
        o.uint("overflow_queued", self.overflow_queued);
        o.uint("underflows", self.underflows);
        o.num("peak_memory_mib", self.peak_memory_mib);
        match self.il_p50_s {
            Some(x) => o.num("il_p50_s", x),
            None => o.null("il_p50_s"),
        }
        match self.il_p95_s {
            Some(x) => o.num("il_p95_s", x),
            None => o.null("il_p95_s"),
        }
        o.num("deferral_rate", self.deferral_rate);
        o.num("imbalance_ratio", self.imbalance_ratio);
        o.num(
            "mean_memory_saving_vs_static",
            self.mean_memory_saving_vs_static,
        );
        let mut nodes = Array::new();
        for n in &self.per_node {
            let mut no = Object::new();
            no.uint("node", n.node as u64);
            no.uint("dispatched", n.dispatched);
            no.uint("admitted", n.admitted);
            no.uint("deferred", n.deferred);
            no.uint("redirected_in", n.redirected_in);
            no.uint("redirected_out", n.redirected_out);
            no.num("peak_memory_mib", n.peak_memory_mib);
            no.num("memory_saving_vs_static", n.memory_saving_vs_static);
            no.uint("audit_samples", n.audit_samples);
            no.uint("audit_violations", n.audit_violations);
            nodes.raw(&no.finish());
        }
        o.raw("per_node", &nodes.finish());
        o.finish()
    }
}

/// A full cluster bench run: every cell of the mode, plus totals.
#[derive(Clone, Debug)]
pub struct ClusterBenchReport {
    /// The mode that was run.
    pub mode: ClusterBenchMode,
    /// The pinned seed every cell used.
    pub seed: u64,
    /// Per-cell measurements, in matrix order.
    pub cells: Vec<ClusterCellResult>,
    /// Wall-clock seconds for the whole matrix.
    pub total_wall_clock_s: f64,
}

impl ClusterBenchReport {
    /// Renders the `BENCH_cluster.json` document. The cell objects are
    /// the same shape the baseline carries under `cluster_cells` (see
    /// [`crate::baseline::check_cluster_against_baseline`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.uint("version", crate::compare::BENCH_SCHEMA_VERSION);
        o.str("mode", self.mode.label());
        o.uint("seed", self.seed);
        o.uint("movies", self.mode.movies() as u64);
        o.num("arrivals_per_node", self.mode.arrivals_per_node());
        o.str("config_fingerprint", &self.mode.config_fingerprint());
        let mut matrix = Object::new();
        matrix.uint("cells", self.cells.len() as u64);
        let mut node_counts = Array::new();
        for c in &self.cells {
            node_counts.raw(&c.nodes.to_string());
        }
        matrix.raw("nodes", &node_counts.finish());
        o.raw("matrix", &matrix.finish());
        let mut cells = Array::new();
        for c in &self.cells {
            cells.raw(&c.to_json());
        }
        o.raw("cells", &cells.finish());
        o.num("total_wall_clock_s", self.total_wall_clock_s);
        o.finish()
    }
}

/// Time-series recorders for one traced cell: one cluster-wide scope
/// (imbalance ratio) plus one per node (engine series and front-end
/// load/redirection series).
struct CellSeries {
    cluster: SeriesRecorder,
    nodes: Vec<Arc<SeriesRecorder>>,
}

impl CellSeries {
    fn new(nodes: usize) -> Self {
        CellSeries {
            cluster: SeriesRecorder::new("cluster"),
            nodes: (0..nodes)
                .map(|i| Arc::new(SeriesRecorder::new(&format!("node{i}"))))
                .collect(),
        }
    }

    /// Appends every recorded series as `{"kind":"series",..}` JSONL
    /// lines: cluster scope first, then nodes in index order.
    fn append_jsonl(&self, out: &mut String) {
        out.push_str(&self.cluster.export_jsonl());
        for rec in &self.nodes {
            out.push_str(&rec.export_jsonl());
        }
    }
}

/// The per-node engine configuration every cell runs: the paper's
/// dynamic scheme under Round-Robin — the configuration whose admission
/// controller actually enforces Assumption 1, which is what redirection
/// exists to route around.
#[must_use]
pub fn cluster_engine_config() -> EngineConfig {
    EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic)
}

pub(crate) fn cell_config(
    mode: ClusterBenchMode,
    spec: ClusterCellSpec,
    fast_forward: bool,
) -> ClusterConfig {
    let mut engine = cluster_engine_config();
    engine.fast_forward = fast_forward;
    ClusterConfig {
        nodes: spec.nodes,
        engine,
        movies: mode.movies(),
        movie_theta: 0.271,
        placement: spec.placement,
        dispatch: spec.dispatch,
        seed: mode.seed(),
    }
}

/// Generates a pinned bench trace — a pure function of the arguments.
/// Shared by the cluster matrix and the chaos matrix
/// ([`crate::chaos`]), so a chaos cell's arrivals match the cluster
/// cell's at the same shape.
pub(crate) fn make_workload(
    movies: usize,
    expected_total: f64,
    horizon_hours: f64,
    seed: u64,
) -> Workload {
    let mut wl_cfg = MultiMovieConfig::paper_cluster(movies, 0.271, expected_total);
    wl_cfg.duration = Seconds::from_hours(horizon_hours);
    wl_cfg.peak = Seconds::from_hours(horizon_hours / 2.0);
    // A peaked (non-uniform) day: bursts at the peak are what push a
    // node's Assumption-1 bound below its hard N cap, exercising
    // deferral and overflow redirection rather than only rejection.
    wl_cfg.profile_theta = 0.4;
    multi_movie(&wl_cfg, seed)
        .unwrap_or_else(|e| panic!("bench workload ({movies} movies) must validate: {e}"))
}

/// Generates the trace for a cell — a pure function of `(mode, nodes)`:
/// total expected arrivals scale with the node count, everything else is
/// pinned by the mode.
fn cell_workload(mode: ClusterBenchMode, nodes: usize) -> Workload {
    make_workload(
        mode.movies(),
        mode.arrivals_per_node() * nodes as f64,
        mode.horizon_hours(),
        mode.seed(),
    )
}

/// The matrix's seed-invariant build products, generated once per run
/// instead of once per cell: the trace depends only on the node count
/// (9 full-matrix cells share each one), and the `BS_k(n)` table behind
/// every node's sizer is shared process-wide by the
/// [`vod_core::SizeTable::shared`] memo anyway — this hoists the other
/// per-cell rebuild, the multi-movie trace.
struct SharedTraces {
    by_nodes: Vec<(usize, Workload)>,
}

impl SharedTraces {
    fn generate(mode: ClusterBenchMode, specs: &[ClusterCellSpec]) -> Self {
        let mut node_counts: Vec<usize> = specs.iter().map(|s| s.nodes).collect();
        node_counts.sort_unstable();
        node_counts.dedup();
        SharedTraces {
            by_nodes: node_counts
                .into_iter()
                .map(|n| (n, cell_workload(mode, n)))
                .collect(),
        }
    }

    fn for_nodes(&self, nodes: usize) -> &Workload {
        self.by_nodes
            .iter()
            .find(|(n, _)| *n == nodes)
            .map(|(_, wl)| wl)
            .expect("every cell's node count was generated up front")
    }
}

/// Runs one cell: drives a fresh cluster over the hoisted trace `wl`
/// (generated once per node count by [`SharedTraces`]).
///
/// `lifecycle_trace_only` is the traced runner's knob: keep first-fill
/// service spans but skip steady-state per-cycle ones (emission-only —
/// see [`Cluster::set_per_cycle_tracing`]).
///
/// `series` optionally attaches time-series recorders (one cluster-wide
/// scope plus one per node) before the run; like span emission, sampling
/// reads state the cluster already maintains, so attaching it never
/// perturbs the deterministic counters.
fn run_cluster_cell(
    mode: ClusterBenchMode,
    spec: ClusterCellSpec,
    wl: &Workload,
    fast_forward: bool,
    obs: &Obs,
    lifecycle_trace_only: bool,
    series: Option<&CellSeries>,
) -> ClusterCellResult {
    let cfg = cell_config(mode, spec, fast_forward);
    let t0 = WallInstant::now();
    let mut cluster = Cluster::with_observer(cfg.clone(), obs.clone()).unwrap_or_else(|e| {
        panic!(
            "cluster bench cell ({} nodes, {}/{}) must validate: {e}",
            spec.nodes,
            spec.placement.label(),
            spec.dispatch.label()
        )
    });
    if lifecycle_trace_only {
        cluster.set_per_cycle_tracing(false);
    }
    if let Some(s) = series {
        cluster.set_series_recorders(&s.cluster, &s.nodes);
    }
    let report = cluster.run(&wl.arrivals);
    let wall_clock_s = t0.elapsed().as_secs_f64();

    let params = &cfg.engine.params;
    let per_node: Vec<ClusterNodeCell> = report
        .nodes
        .iter()
        .map(|n| ClusterNodeCell {
            node: n.node,
            dispatched: n.dispatched,
            admitted: n.stats.admitted,
            deferred: n.stats.deferrals,
            redirected_in: n.redirected_in,
            redirected_out: n.redirected_out,
            peak_memory_mib: n.stats.peak_memory.as_mebibytes(),
            memory_saving_vs_static: n.memory_saving_vs_static(params),
            audit_samples: n.audit.samples as u64,
            audit_violations: n.audit.violations as u64,
        })
        .collect();
    let served: Vec<f64> = per_node
        .iter()
        .filter(|n| n.admitted > 0)
        .map(|n| n.memory_saving_vs_static)
        .collect();
    let mean_saving = if served.is_empty() {
        0.0
    } else {
        served.iter().sum::<f64>() / served.len() as f64
    };

    ClusterCellResult {
        nodes: spec.nodes,
        placement: spec.placement.label(),
        dispatch: spec.dispatch.label(),
        wall_clock_s,
        dispatched: report.dispatched,
        admitted: report.admitted(),
        deferred: report.deferrals(),
        rejected: report.rejected(),
        redirected: report.redirected,
        overflow_queued: report.overflow_queued,
        underflows: report.underflows(),
        peak_memory_mib: report.peak_memory_bits() / (8.0 * 1024.0 * 1024.0),
        il_p50_s: report.latency_percentile(0.50).map(Seconds::as_secs_f64),
        il_p95_s: report.latency_percentile(0.95).map(Seconds::as_secs_f64),
        deferral_rate: report.deferral_rate(),
        imbalance_ratio: report.imbalance_ratio(),
        mean_memory_saving_vs_static: mean_saving,
        per_node,
    }
}

/// Runs the cluster matrix for `mode` on up to `jobs` worker threads.
///
/// `obs` is shared by every cell (pass a metrics-carrying observer to
/// accumulate the cluster's Prometheus counters across the matrix, or
/// `Obs::null()` for none); counter updates commute, so the shared
/// registry's final state is job-count independent. Results are
/// collected by matrix index, so every deterministic field of the
/// report is byte-identical whatever the job count — only wall-clock
/// varies. `progress` is called with a one-line description before each
/// cell runs.
#[must_use]
pub fn run_cluster_bench(
    mode: ClusterBenchMode,
    jobs: usize,
    obs: &Obs,
    progress: &(dyn Fn(&str) + Sync),
) -> ClusterBenchReport {
    run_cluster_bench_configured(mode, jobs, true, obs, progress)
}

/// [`run_cluster_bench`] with every node engine's event-driven
/// fast-forward toggled explicitly (`repro cluster --no-fast-forward`).
/// Deterministic fields are bit-identical either way — pinned by the
/// equivalence tests below.
#[must_use]
pub fn run_cluster_bench_configured(
    mode: ClusterBenchMode,
    jobs: usize,
    fast_forward: bool,
    obs: &Obs,
    progress: &(dyn Fn(&str) + Sync),
) -> ClusterBenchReport {
    let specs = mode.cells();
    let total = specs.len();
    let jobs = jobs.max(1).min(total.max(1));
    let t0 = WallInstant::now();
    let traces = SharedTraces::generate(mode, &specs);

    let announce = |i: usize, spec: ClusterCellSpec| {
        progress(&format!(
            "cluster [{}/{}] {} nodes / {} / {}",
            i + 1,
            total,
            spec.nodes,
            spec.placement.label(),
            spec.dispatch.label(),
        ));
    };

    let cells: Vec<ClusterCellResult> = if jobs == 1 {
        specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                announce(i, spec);
                run_cluster_cell(
                    mode,
                    spec,
                    traces.for_nodes(spec.nodes),
                    fast_forward,
                    obs,
                    false,
                    None,
                )
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ClusterCellResult>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    announce(i, specs[i]);
                    let result = run_cluster_cell(
                        mode,
                        specs[i],
                        traces.for_nodes(specs[i].nodes),
                        fast_forward,
                        obs,
                        false,
                        None,
                    );
                    *slots[i]
                        .lock()
                        .expect("cluster bench slot mutex poisoned: a worker panicked") =
                        Some(result);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .expect("cluster bench slot mutex poisoned: a worker panicked")
                    .unwrap_or_else(|| panic!("cluster cell {i} was claimed but never filled"))
            })
            .collect()
    };

    ClusterBenchReport {
        mode,
        seed: mode.seed(),
        cells,
        total_wall_clock_s: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the cluster matrix with span tracing on, appending one traced
/// section per cell to `trace_out` as JSONL:
///
/// ```text
/// {"kind":"cluster_cell","nodes":..,"placement":..,"dispatch":..}
/// <event lines of the cell>
/// {"kind":"cluster_summary","redirected":..,"per_node":[..],..}
/// ```
///
/// The `cluster_summary` marker repeats the front end's deterministic
/// redirection counters so `repro trace-analyze` can reconcile them
/// against the hop spans in the section. Cells run sequentially (each
/// gets a private recorder, so there is no cross-cell interleaving);
/// metrics from `base_obs` are shared across cells as in
/// [`run_cluster_bench`].
#[must_use]
pub fn run_cluster_bench_traced(
    mode: ClusterBenchMode,
    base_obs: &Obs,
    trace_out: &mut String,
    progress: &(dyn Fn(&str) + Sync),
) -> ClusterBenchReport {
    let specs = mode.cells();
    let total = specs.len();
    let t0 = WallInstant::now();
    let traces = SharedTraces::generate(mode, &specs);

    let mut cells = Vec::with_capacity(total);
    for (i, &spec) in specs.iter().enumerate() {
        progress(&format!(
            "cluster [{}/{}] {} nodes / {} / {} (traced)",
            i + 1,
            total,
            spec.nodes,
            spec.placement.label(),
            spec.dispatch.label(),
        ));
        // Span lifecycles plus the admission-outcome events the audit
        // reconciles against; per-cycle telemetry (services, buffer
        // events, pool occupancy) stays off so a multi-hour cell fits
        // the recorder's capacity bound with nothing dropped.
        let recorder = std::sync::Arc::new(vod_obs::RecorderSink::new().with_kinds(&[
            vod_obs::EventKind::SpanStart,
            vod_obs::EventKind::SpanAnnotate,
            vod_obs::EventKind::SpanEnd,
            vod_obs::EventKind::RequestAdmitted,
            vod_obs::EventKind::RequestDeferred,
            vod_obs::EventKind::RequestRejected,
            vod_obs::EventKind::Underflow,
        ]));
        let cell_sink: std::sync::Arc<dyn vod_obs::Sink> = match base_obs.sink() {
            // Keep the caller's sink (a flight recorder, say) listening
            // alongside the per-cell recorder.
            Some(base) => std::sync::Arc::new(vod_obs::TeeSink::new(
                std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn vod_obs::Sink>,
                base,
            )),
            None => std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn vod_obs::Sink>,
        };
        let obs = Obs::new(cell_sink).with_metrics(base_obs.metrics().clone());
        let series = CellSeries::new(spec.nodes);
        let cell = run_cluster_cell(
            mode,
            spec,
            traces.for_nodes(spec.nodes),
            true,
            &obs,
            true,
            Some(&series),
        );
        let snap = recorder.snapshot();

        let mut header = Object::new();
        header.str("kind", "cluster_cell");
        header.uint("nodes", spec.nodes as u64);
        header.str("placement", spec.placement.label());
        header.str("dispatch", spec.dispatch.label());
        trace_out.push_str(&header.finish());
        trace_out.push('\n');
        trace_out.push_str(&snap.export_jsonl());

        let mut summary = Object::new();
        summary.str("kind", "cluster_summary");
        summary.uint("redirected", cell.redirected);
        summary.uint("events", snap.events().len() as u64);
        summary.uint("events_dropped", snap.events_dropped());
        summary.uint("spans_dropped", snap.spans_dropped());
        let mut nodes = Array::new();
        for n in &cell.per_node {
            let mut no = Object::new();
            no.uint("node", n.node as u64);
            no.uint("redirected_in", n.redirected_in);
            no.uint("redirected_out", n.redirected_out);
            nodes.raw(&no.finish());
        }
        summary.raw("per_node", &nodes.finish());
        trace_out.push_str(&summary.finish());
        trace_out.push('\n');

        // Cycle-indexed time series sampled during the cell, then one
        // audit marker per node — both marker kinds `repro report`
        // renders and `trace-analyze` skips.
        series.append_jsonl(trace_out);
        for n in &cell.per_node {
            let mut audit = Object::new();
            audit.str("kind", "audit");
            audit.str("scope", &format!("node{}", n.node));
            audit.uint("samples", n.audit_samples);
            audit.uint("violations", n.audit_violations);
            trace_out.push_str(&audit.finish());
            trace_out.push('\n');
        }

        cells.push(cell);
    }

    ClusterBenchReport {
        mode,
        seed: mode.seed(),
        cells,
        total_wall_clock_s: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vod_obs::{prom, Metrics, MetricsRegistry};

    #[test]
    fn full_matrix_sweeps_every_shape_once() {
        let cells = ClusterBenchMode::Full.cells();
        assert_eq!(cells.len(), FULL_NODE_COUNTS.len() * 3 * 3);
        let dedup: std::collections::HashSet<String> = cells
            .iter()
            .map(|c| format!("{}/{}/{}", c.nodes, c.placement.label(), c.dispatch.label()))
            .collect();
        assert_eq!(dedup.len(), cells.len(), "no duplicate cells");
        // Single-node cells must clamp the replication factor.
        for c in &cells {
            if let PlacementPolicy::ReplicatedHot { replicas, .. } = c.placement {
                assert!(replicas <= c.nodes, "cell {c:?}");
            }
        }
    }

    #[test]
    fn smoke_matrix_runs_and_serializes() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = Obs::null().with_metrics(Metrics::new(Arc::clone(&registry)));
        let report = run_cluster_bench(ClusterBenchMode::Smoke, 1, &obs, &|_| {});
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.nodes, 2);
            assert!(cell.dispatched > 0);
            assert!(cell.admitted > 0);
            assert_eq!(cell.underflows, 0, "dynamic scheme must never underflow");
            assert_eq!(cell.per_node.len(), 2);
            let per_node: u64 = cell.per_node.iter().map(|n| n.dispatched).sum();
            assert_eq!(per_node, cell.dispatched);
        }
        let json = report.to_json();
        assert!(json.contains("\"mode\":\"cluster_smoke\""));
        assert!(json.contains("\"imbalance_ratio\""));
        assert!(json.contains("\"per_node\""));
        // The shared registry surfaces per-node counters for scraping.
        let text = prom::render(&registry.snapshot());
        assert!(text.contains("vod_cluster_node0_deferred_total"));
        assert!(text.contains("vod_cluster_dispatched_total"));
    }

    /// Acceptance: the traced cluster matrix produces the identical
    /// deterministic counters as the untraced run, and its trace passes
    /// the `trace-analyze` invariant audit (hop spans reconcile with
    /// the redirection counters, span lifecycles balance).
    #[test]
    fn traced_smoke_matrix_is_identical_and_audits_clean() {
        let obs = Obs::null();
        let plain = run_cluster_bench(ClusterBenchMode::Smoke, 1, &obs, &|_| {});
        let mut trace = String::new();
        let traced = run_cluster_bench_traced(ClusterBenchMode::Smoke, &obs, &mut trace, &|_| {});
        for (a, b) in plain.cells.iter().zip(&traced.cells) {
            assert_eq!(a.dispatched, b.dispatched);
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.deferred, b.deferred);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.redirected, b.redirected);
            assert_eq!(a.overflow_queued, b.overflow_queued);
            assert_eq!(a.underflows, b.underflows);
            assert_eq!(a.peak_memory_mib.to_bits(), b.peak_memory_mib.to_bits());
        }
        crate::traceview::check_schema(&trace).expect("trace schema must hold");
        let report = crate::traceview::analyze(&trace, 3).expect("trace must parse");
        assert_eq!(report.sections.len(), 2, "one section per smoke cell");
        assert!(
            report.audit_passed(),
            "invariant audit: {:?}",
            report
                .sections
                .iter()
                .flat_map(|s| &s.violations)
                .collect::<Vec<_>>()
        );
        // The smoke matrix exercises redirection, so hops must appear.
        assert!(traced.cells.iter().any(|c| c.redirected > 0));

        // Acceptance bar for `repro report`: the trace carries at least
        // five distinct engine series per node plus the front-end and
        // cluster-scope series, and the markdown report renders them.
        let inventory = crate::report::series_inventory(&trace);
        assert!(
            inventory["cluster"].contains(&"imbalance_ratio".to_owned()),
            "{inventory:?}"
        );
        for node in ["node0", "node1"] {
            let names = &inventory[node];
            assert!(
                names.len() >= 5 + 2,
                "{node} must carry the 5 engine series plus load/redirections: {names:?}"
            );
            for expected in [
                "pool_used_bits",
                "active_streams",
                "admission_headroom",
                "deferral_queue_depth",
                "cycle_service_s",
                "load",
                "redirections",
            ] {
                assert!(names.contains(&expected.to_owned()), "{node}: {names:?}");
            }
        }
        let md = crate::report::render_run_report(&trace).expect("report renders");
        assert!(md.contains("## Time series"));
        assert!(md.contains("scope `node1`"));
        assert!(md.contains("## Estimator audits"));
    }

    /// The `--jobs` acceptance bar, cluster edition: any worker count
    /// yields the identical deterministic fields.
    #[test]
    fn parallel_cluster_bench_matches_sequential_bit_for_bit() {
        let obs = Obs::null();
        let seq = run_cluster_bench(ClusterBenchMode::Smoke, 1, &obs, &|_| {});
        let par = run_cluster_bench(ClusterBenchMode::Smoke, 2, &obs, &|_| {});
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.dispatch, b.dispatch);
            assert_eq!(a.dispatched, b.dispatched);
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.deferred, b.deferred);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.redirected, b.redirected);
            assert_eq!(a.overflow_queued, b.overflow_queued);
            assert_eq!(a.underflows, b.underflows);
            assert_eq!(a.peak_memory_mib.to_bits(), b.peak_memory_mib.to_bits());
            assert_eq!(
                a.imbalance_ratio.to_bits(),
                b.imbalance_ratio.to_bits(),
                "imbalance must be bit-identical across job counts"
            );
        }
    }

    fn assert_cluster_cells_bit_identical(fast: &ClusterBenchReport, slow: &ClusterBenchReport) {
        assert_eq!(fast.cells.len(), slow.cells.len());
        for (a, b) in fast.cells.iter().zip(&slow.cells) {
            let label = format!("{}n/{}/{}", a.nodes, a.placement, a.dispatch);
            assert_eq!(a.nodes, b.nodes, "{label}");
            assert_eq!(a.placement, b.placement, "{label}");
            assert_eq!(a.dispatch, b.dispatch, "{label}");
            assert_eq!(a.dispatched, b.dispatched, "{label}: dispatched");
            assert_eq!(a.admitted, b.admitted, "{label}: admitted");
            assert_eq!(a.deferred, b.deferred, "{label}: deferred");
            assert_eq!(a.rejected, b.rejected, "{label}: rejected");
            assert_eq!(a.redirected, b.redirected, "{label}: redirected");
            assert_eq!(
                a.overflow_queued, b.overflow_queued,
                "{label}: overflow_queued"
            );
            assert_eq!(a.underflows, b.underflows, "{label}: underflows");
            assert_eq!(
                a.peak_memory_mib.to_bits(),
                b.peak_memory_mib.to_bits(),
                "{label}: peak memory"
            );
            assert_eq!(
                a.imbalance_ratio.to_bits(),
                b.imbalance_ratio.to_bits(),
                "{label}: imbalance"
            );
            for (na, nb) in a.per_node.iter().zip(&b.per_node) {
                assert_eq!(na.dispatched, nb.dispatched, "{label} node {}", na.node);
                assert_eq!(na.admitted, nb.admitted, "{label} node {}", na.node);
                assert_eq!(na.deferred, nb.deferred, "{label} node {}", na.node);
                assert_eq!(
                    na.peak_memory_mib.to_bits(),
                    nb.peak_memory_mib.to_bits(),
                    "{label} node {}",
                    na.node
                );
            }
        }
    }

    /// The tentpole contract, cluster edition at smoke scale: every node
    /// engine's fast-forward path matches the legacy path bit for bit.
    #[test]
    fn fast_forward_smoke_cluster_matches_legacy_bit_for_bit() {
        let obs = Obs::null();
        let fast = run_cluster_bench_configured(ClusterBenchMode::Smoke, 1, true, &obs, &|_| {});
        let slow = run_cluster_bench_configured(ClusterBenchMode::Smoke, 1, false, &obs, &|_| {});
        assert_cluster_cells_bit_identical(&fast, &slow);
    }

    /// The full 45-cell cluster matrix, both paths. `#[ignore]`d out of
    /// tier-1 (expensive, doubly so in debug); CI runs it with
    /// `--ignored` in a release job.
    #[test]
    #[ignore = "full 45-cell cluster matrix twice; run in release with --ignored"]
    fn fast_forward_full_cluster_matrix_matches_legacy_bit_for_bit() {
        let obs = Obs::null();
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        let fast = run_cluster_bench_configured(ClusterBenchMode::Full, jobs, true, &obs, &|_| {});
        let slow = run_cluster_bench_configured(ClusterBenchMode::Full, jobs, false, &obs, &|_| {});
        assert_cluster_cells_bit_identical(&fast, &slow);
    }
}
