//! `repro compare`: cross-run regression analytics over two bench
//! documents.
//!
//! Where `--check` ([`crate::baseline`]) gates a *fresh run* against one
//! committed baseline, `compare` diffs any two saved `BENCH_perf.json` /
//! `BENCH_cluster.json` documents — the perf *trajectory* view: exact
//! equality on every deterministic counter, tolerance-gated deltas on
//! the host-dependent ones (wall-clock, cycles/second), and per-phase
//! p95 drift. Non-zero exit on regression makes it the CI perf check.
//!
//! ## Compatibility refusal
//!
//! Two documents are only comparable when they describe the same
//! experiment. Both must carry the PR 6 metadata stamp — `version`
//! (schema), `config_fingerprint` (an FNV-1a hash over the pinned
//! matrix configuration), and `matrix` (the shape) — and the stamps
//! must agree; otherwise the diff would be apples-to-oranges garbage
//! and [`compare_documents`] refuses with [`CompareVerdict::Incompatible`]
//! instead of reporting deltas.

use crate::baseline::{parse, Json};

/// Schema version stamped into bench documents by this revision of the
/// writers ([`crate::perf::BenchReport::to_json`],
/// [`crate::cluster::ClusterBenchReport::to_json`]).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Default wall-clock / throughput slowdown factor tolerated before a
/// delta counts as a regression. Matches the historical baseline gate
/// ([`crate::baseline::WALL_CLOCK_SLOWDOWN_LIMIT`]): loose enough for
/// cross-host CI noise, tight enough for order-of-magnitude slips.
pub const DEFAULT_TOLERANCE: f64 = crate::baseline::WALL_CLOCK_SLOWDOWN_LIMIT;

/// FNV-1a 64-bit over `parts`, with a separator byte folded in between
/// parts so `["ab","c"]` and `["a","bc"]` hash differently. Pure and
/// dependency-free — the fingerprint must be reproducible anywhere.
#[must_use]
pub fn fingerprint<I, S>(parts: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in part.as_ref().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0x1f; // unit separator
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// Outcome class of a document comparison (maps to the process exit
/// code: 0 / 1 / 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareVerdict {
    /// Every deterministic field matches and every gated delta is
    /// within tolerance.
    Matches,
    /// At least one exact counter drifted or a gated delta exceeded
    /// the tolerance.
    Regression,
    /// The documents do not describe the same experiment (or do not
    /// parse); no deltas were computed.
    Incompatible,
}

/// The rendered result of [`compare_documents`].
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// The verdict class.
    pub verdict: CompareVerdict,
    /// Problems found (exact drift, out-of-tolerance deltas, or the
    /// incompatibility reasons). Empty when `verdict` is `Matches`.
    pub problems: Vec<String>,
    /// Informational delta lines (speed ratios, in-tolerance drift),
    /// one per cell.
    pub info: Vec<String>,
}

/// Which matrix a bench document describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DocKind {
    Engine,
    Cluster,
}

fn doc_kind(doc: &Json) -> Option<DocKind> {
    let mode = doc.get("mode").and_then(Json::as_str)?;
    if mode.starts_with("cluster_") {
        Some(DocKind::Cluster)
    } else {
        Some(DocKind::Engine)
    }
}

/// Checks the metadata stamps agree; returns refusal reasons otherwise.
fn compatibility_problems(old: &Json, new: &Json) -> Vec<String> {
    let mut problems = Vec::new();

    let (old_kind, new_kind) = (doc_kind(old), doc_kind(new));
    match (old_kind, new_kind) {
        (Some(a), Some(b)) if a != b => {
            problems.push(format!("document kinds differ: old is {a:?}, new is {b:?}"))
        }
        (None, _) | (_, None) => {
            problems.push("a document carries no `mode` — not a bench report".into());
        }
        _ => {}
    }
    let old_mode = old.get("mode").and_then(Json::as_str).unwrap_or("?");
    let new_mode = new.get("mode").and_then(Json::as_str).unwrap_or("?");
    if old_mode != new_mode {
        problems.push(format!("mode mismatch: old `{old_mode}`, new `{new_mode}`"));
    }

    for (key, kind) in [
        ("version", "schema version"),
        ("config_fingerprint", "config fingerprint"),
    ] {
        let o = old.get(key);
        let n = new.get(key);
        match (o, n) {
            (Some(a), Some(b)) if a != b => problems.push(format!(
                "{kind} mismatch ({key}): old {}, new {} — these runs used different {}; regenerate the older document",
                render_short(a),
                render_short(b),
                if key == "version" { "report schemas" } else { "pinned configurations" },
            )),
            (None, _) => problems.push(format!(
                "old document carries no `{key}` (written before the metadata stamp); regenerate it with this binary"
            )),
            (_, None) => problems.push(format!(
                "new document carries no `{key}` (written before the metadata stamp); regenerate it with this binary"
            )),
            _ => {}
        }
    }

    let (o, n) = (old.get("matrix"), new.get("matrix"));
    match (o, n) {
        (Some(a), Some(b)) if a != b => problems.push(format!(
            "matrix shape mismatch: old {}, new {}",
            render_short(a),
            render_short(b)
        )),
        (None, _) | (_, None) => {
            problems.push(
                "a document carries no `matrix` stamp; regenerate it with this binary".into(),
            );
        }
        _ => {}
    }

    problems
}

fn render_short(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(x) if x.fract() == 0.0 => format!("{}", *x as i64),
        Json::Num(x) => format!("{x}"),
        Json::Obj(m) => {
            let parts: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{k}={}", render_short(v)))
                .collect();
            format!("{{{}}}", parts.join(","))
        }
        Json::Arr(a) => {
            let parts: Vec<String> = a.iter().map(render_short).collect();
            format!("[{}]", parts.join(","))
        }
        Json::Bool(b) => b.to_string(),
        Json::Null => "null".into(),
    }
}

/// The deterministic per-cell counters diffed exactly, per kind.
fn exact_counters(kind: DocKind) -> &'static [&'static str] {
    match kind {
        DocKind::Engine => &[
            "cycles",
            "services",
            "admitted",
            "deferred",
            "rejected",
            "underflows",
        ],
        DocKind::Cluster => &[
            "dispatched",
            "admitted",
            "deferred",
            "rejected",
            "redirected",
            "overflow_queued",
            "underflows",
            // Chaos-cell degradation counters (`BENCH_chaos.json`); plain
            // cluster cells lack the keys, and `None == None` passes.
            "faults_injected",
            "interrupted",
            "migrated",
            "parked_failover",
            "dropped",
            "unplaceable",
            "recoveries",
            "domain_faults",
            "disk_degradations",
            "disk_errors",
            "rereplications",
            "rereplicated_streams",
        ],
    }
}

fn cell_label(kind: DocKind, cell: &Json) -> String {
    match kind {
        DocKind::Engine => format!(
            "{}/{}/θ={}",
            cell.get("scheme").and_then(Json::as_str).unwrap_or("?"),
            cell.get("method").and_then(Json::as_str).unwrap_or("?"),
            cell.get("theta").and_then(Json::as_f64).unwrap_or(f64::NAN),
        ),
        DocKind::Cluster => {
            let mut label = format!(
                "{}n/{}/{}",
                cell.get("nodes")
                    .and_then(Json::as_u64)
                    .map_or_else(|| "?".into(), |n| n.to_string()),
                cell.get("placement").and_then(Json::as_str).unwrap_or("?"),
                cell.get("dispatch").and_then(Json::as_str).unwrap_or("?"),
            );
            // Chaos cells vary by scenario/failover at fixed shape.
            if let Some(s) = cell.get("scenario").and_then(Json::as_str) {
                label.push('/');
                label.push_str(s);
            }
            if let Some(f) = cell.get("failover").and_then(Json::as_str) {
                label.push('/');
                label.push_str(f);
            }
            label
        }
    }
}

/// Diffs one pair of cells; pushes problems/info in place.
fn compare_cell(
    kind: DocKind,
    label: &str,
    old: &Json,
    new: &Json,
    tolerance: f64,
    problems: &mut Vec<String>,
    info: &mut Vec<String>,
) {
    for key in exact_counters(kind) {
        let o = old.get(key).and_then(Json::as_u64);
        let n = new.get(key).and_then(Json::as_u64);
        if o != n {
            problems.push(format!("{label}: {key} old {o:?} != new {n:?}"));
        }
    }
    let o_peak = old.get("peak_memory_mib").and_then(Json::as_f64);
    let n_peak = new.get("peak_memory_mib").and_then(Json::as_f64);
    if o_peak.map(f64::to_bits) != n_peak.map(f64::to_bits) {
        problems.push(format!(
            "{label}: peak_memory_mib old {o_peak:?} != new {n_peak:?} (deterministic; must be bit-identical)"
        ));
    }

    let o_wall = old
        .get("wall_clock_s")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let n_wall = new
        .get("wall_clock_s")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if o_wall > 0.0 && n_wall > o_wall * tolerance {
        problems.push(format!(
            "{label}: wall-clock {n_wall:.2}s is more than {tolerance}x the old {o_wall:.2}s"
        ));
    }
    if o_wall > 0.0 && n_wall > 0.0 {
        info.push(format!(
            "{label}: {:.2}x old speed ({n_wall:.2}s vs {o_wall:.2}s)",
            o_wall / n_wall
        ));
    }
    if kind == DocKind::Engine {
        let o_cps = old
            .get("cycles_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let n_cps = new
            .get("cycles_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if o_cps > 0.0 && n_cps > 0.0 && n_cps < o_cps / tolerance {
            problems.push(format!(
                "{label}: throughput fell to {n_cps:.0} cycles/s from {o_cps:.0} (more than {tolerance}x)"
            ));
        } else if o_cps > 0.0 && n_cps > 0.0 {
            info.push(format!(
                "{label}: throughput {:.2}x old ({n_cps:.0} vs {o_cps:.0} cycles/s)",
                n_cps / o_cps
            ));
        }

        // Per-phase p95 drift: phase timings are host wall-clock, so
        // drift is tolerance-gated like the cell wall-clock — but only
        // when both histograms have enough samples for a stable p95. A
        // 3-sample histogram's p95 IS its max, and a single scheduling
        // hiccup (smoke cells time some phases a handful of times) swings
        // it by orders of magnitude; below the floor it is info-only.
        const PHASE_P95_MIN_COUNT: u64 = 16;
        if let (Some(Json::Obj(op)), Some(Json::Obj(np))) = (old.get("phases"), new.get("phases")) {
            for (phase, o_hist) in op {
                let Some(n_hist) = np.get(phase) else {
                    continue;
                };
                let o95 = o_hist.get("p95").and_then(Json::as_f64).unwrap_or(0.0);
                let n95 = n_hist.get("p95").and_then(Json::as_f64).unwrap_or(0.0);
                let samples = o_hist
                    .get("count")
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    .min(n_hist.get("count").and_then(Json::as_u64).unwrap_or(0));
                if o95 > 0.0 && n95 > o95 * tolerance && samples >= PHASE_P95_MIN_COUNT {
                    problems.push(format!(
                        "{label}: phase {phase} p95 {n95:.3e}s is more than {tolerance}x the old {o95:.3e}s"
                    ));
                } else if o95 > 0.0 && n95 > 0.0 {
                    info.push(format!("{label}: phase {phase} p95 {:.2}x old", n95 / o95));
                }
            }
        }
    }
}

/// Absolute availability drift tolerated by the degradation-envelope
/// gate (the matrix is deterministic; the slack absorbs intentional
/// small behavior changes without letting availability collapse).
pub const ENVELOPE_AVAILABILITY_TOL: f64 = 0.02;
/// Absolute drift tolerated on each failover-split fraction
/// (migrated / parked / dropped / re-replicated, as fractions of the
/// interrupted streams).
pub const ENVELOPE_FRACTION_TOL: f64 = 0.05;
/// Relative time-to-recover drift tolerated by the envelope gate.
pub const ENVELOPE_TTR_REL_TOL: f64 = 0.10;
/// Absolute time-to-recover drift floor: below this many seconds, TTR
/// drift never fails the gate.
pub const ENVELOPE_TTR_MIN_S: f64 = 1.0;

/// One gated metric of a chaos cell's degradation envelope.
#[derive(Clone, Debug)]
pub struct EnvelopeMetric {
    /// Metric name (`availability`, `migrated_frac`, …).
    pub name: &'static str,
    /// Baseline value (`None` when the cell never measured it, e.g.
    /// TTR with nothing down).
    pub old: Option<f64>,
    /// Candidate value.
    pub new: Option<f64>,
    /// Absolute tolerance applied to `|new - old|`.
    pub tolerance: f64,
    /// Whether the drift is within tolerance.
    pub ok: bool,
}

/// Envelope deltas for one chaos cell.
#[derive(Clone, Debug)]
pub struct EnvelopeCellDelta {
    /// Cell label (`4n/replicated_hot/least_loaded/zone_crash/migrate`).
    pub label: String,
    /// The gated metrics, in stable order.
    pub metrics: Vec<EnvelopeMetric>,
}

/// The result of diffing two chaos documents' degradation envelopes.
#[derive(Clone, Debug)]
pub struct EnvelopeReport {
    /// Per-cell metric deltas, in matrix order.
    pub cells: Vec<EnvelopeCellDelta>,
    /// Out-of-tolerance drift, one line per violation.
    pub problems: Vec<String>,
}

impl EnvelopeReport {
    /// True when every metric of every cell stayed inside its envelope.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.problems.is_empty()
    }
}

/// True when the document describes the chaos matrix (either mode).
fn is_chaos_doc(doc: &Json) -> bool {
    doc.get("mode")
        .and_then(Json::as_str)
        .is_some_and(|m| m.starts_with("cluster_chaos"))
}

/// The degradation envelope of one chaos cell: availability, the
/// failover split as fractions of interrupted streams, and the mean
/// time to recover.
fn cell_envelope(cell: &Json) -> Vec<(&'static str, Option<f64>, f64)> {
    let interrupted = cell
        .get("interrupted")
        .and_then(Json::as_u64)
        .unwrap_or(0)
        .max(1) as f64;
    let frac = |key: &str| {
        cell.get(key)
            .and_then(Json::as_u64)
            .map(|v| v as f64 / interrupted)
    };
    vec![
        (
            "availability",
            cell.get("availability").and_then(Json::as_f64),
            ENVELOPE_AVAILABILITY_TOL,
        ),
        ("migrated_frac", frac("migrated"), ENVELOPE_FRACTION_TOL),
        (
            "parked_frac",
            frac("parked_failover"),
            ENVELOPE_FRACTION_TOL,
        ),
        ("dropped_frac", frac("dropped"), ENVELOPE_FRACTION_TOL),
        (
            "rereplicated_frac",
            frac("rereplicated_streams"),
            ENVELOPE_FRACTION_TOL,
        ),
        (
            "ttr_s",
            cell.get("mean_time_to_recover_s").and_then(Json::as_f64),
            // Placeholder; the TTR tolerance is relative and resolved
            // against the baseline value in `envelope_delta`.
            ENVELOPE_TTR_MIN_S,
        ),
    ]
}

/// Diffs two chaos documents' degradation envelopes (availability,
/// drop/migrate/park/re-replicate split, time-to-recover) under the
/// `ENVELOPE_*` tolerances. Returns `Err` with the refusal reasons when
/// the documents are not comparable or not chaos documents.
///
/// # Errors
///
/// Returns the incompatibility reasons (parse failure, non-chaos mode,
/// metadata stamp mismatch, cell mismatch).
pub fn envelope_delta(old_src: &str, new_src: &str) -> Result<EnvelopeReport, Vec<String>> {
    let old = parse(old_src).map_err(|e| vec![format!("old document does not parse: {e}")])?;
    let new = parse(new_src).map_err(|e| vec![format!("new document does not parse: {e}")])?;
    if !is_chaos_doc(&old) || !is_chaos_doc(&new) {
        return Err(vec![
            "degradation envelopes exist only for chaos documents (mode `cluster_chaos_*`)".into(),
        ]);
    }
    let problems = compatibility_problems(&old, &new);
    if !problems.is_empty() {
        return Err(problems);
    }

    let empty: Vec<Json> = Vec::new();
    let old_cells = old.get("cells").and_then(Json::as_arr).unwrap_or(&empty);
    let new_cells = new.get("cells").and_then(Json::as_arr).unwrap_or(&empty);
    if old_cells.len() != new_cells.len() {
        return Err(vec![format!(
            "cell count mismatch: old {}, new {}",
            old_cells.len(),
            new_cells.len()
        )]);
    }

    let mut cells = Vec::with_capacity(old_cells.len());
    let mut problems = Vec::new();
    for (o, n) in old_cells.iter().zip(new_cells) {
        let label = cell_label(DocKind::Cluster, n);
        if cell_label(DocKind::Cluster, o) != label {
            return Err(vec![format!(
                "cell order mismatch: old {} vs new {label}",
                cell_label(DocKind::Cluster, o)
            )]);
        }
        let mut metrics = Vec::new();
        for ((name, old_v, tol), (_, new_v, _)) in
            cell_envelope(o).into_iter().zip(cell_envelope(n))
        {
            let tolerance = if name == "ttr_s" {
                old_v.map_or(ENVELOPE_TTR_MIN_S, |x| {
                    (x.abs() * ENVELOPE_TTR_REL_TOL).max(ENVELOPE_TTR_MIN_S)
                })
            } else {
                tol
            };
            let ok = match (old_v, new_v) {
                (None, None) => true,
                (Some(a), Some(b)) => (b - a).abs() <= tolerance,
                _ => false,
            };
            if !ok {
                problems.push(format!(
                    "{label}: {name} drifted outside the envelope: old {}, new {} (tolerance ±{tolerance})",
                    old_v.map_or_else(|| "-".into(), |x| format!("{x:.4}")),
                    new_v.map_or_else(|| "-".into(), |x| format!("{x:.4}")),
                ));
            }
            metrics.push(EnvelopeMetric {
                name,
                old: old_v,
                new: new_v,
                tolerance,
                ok,
            });
        }
        cells.push(EnvelopeCellDelta { label, metrics });
    }
    Ok(EnvelopeReport { cells, problems })
}

/// Diffs two bench documents (both `BENCH_perf.json`-shaped or both
/// `BENCH_cluster.json`-shaped). See the module docs for the rules.
#[must_use]
pub fn compare_documents(old_src: &str, new_src: &str, tolerance: f64) -> CompareReport {
    let incompatible = |problems: Vec<String>| CompareReport {
        verdict: CompareVerdict::Incompatible,
        problems,
        info: Vec::new(),
    };

    let old = match parse(old_src) {
        Ok(v) => v,
        Err(e) => return incompatible(vec![format!("old document does not parse: {e}")]),
    };
    let new = match parse(new_src) {
        Ok(v) => v,
        Err(e) => return incompatible(vec![format!("new document does not parse: {e}")]),
    };

    let problems = compatibility_problems(&old, &new);
    if !problems.is_empty() {
        return incompatible(problems);
    }
    let kind = doc_kind(&old).expect("compatibility check verified the mode");

    let empty: Vec<Json> = Vec::new();
    let old_cells = old.get("cells").and_then(Json::as_arr).unwrap_or(&empty);
    let new_cells = new.get("cells").and_then(Json::as_arr).unwrap_or(&empty);
    if old_cells.len() != new_cells.len() {
        return incompatible(vec![format!(
            "cell count mismatch despite matching matrix stamp: old {}, new {}",
            old_cells.len(),
            new_cells.len()
        )]);
    }

    let mut problems = Vec::new();
    let mut info = Vec::new();
    for (o, n) in old_cells.iter().zip(new_cells) {
        let label = cell_label(kind, n);
        if cell_label(kind, o) != label {
            problems.push(format!(
                "cell order mismatch: old {} vs new {label}",
                cell_label(kind, o)
            ));
            continue;
        }
        compare_cell(kind, &label, o, n, tolerance, &mut problems, &mut info);
    }

    // Chaos documents additionally get the degradation-envelope view:
    // one info line per cell summarizing the envelope drift, and any
    // out-of-tolerance envelope metric counts as a regression (on top
    // of the exact-counter rules above).
    if is_chaos_doc(&old) && is_chaos_doc(&new) {
        if let Ok(env) = envelope_delta(old_src, new_src) {
            for cell in &env.cells {
                let deltas: Vec<String> = cell
                    .metrics
                    .iter()
                    .map(|m| match (m.old, m.new) {
                        (Some(a), Some(b)) => format!("{} {:+.4}", m.name, b - a),
                        _ => format!("{} -", m.name),
                    })
                    .collect();
                info.push(format!("{}: envelope {}", cell.label, deltas.join(", ")));
            }
            problems.extend(env.problems);
        }
    }

    CompareReport {
        verdict: if problems.is_empty() {
            CompareVerdict::Matches
        } else {
            CompareVerdict::Regression
        },
        problems,
        info,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
        assert_eq!(fingerprint(["x"]).len(), 16);
    }

    fn smoke_json() -> String {
        crate::perf::run_bench(crate::perf::BenchMode::Smoke, 1, &|_| {}).to_json()
    }

    #[test]
    fn self_compare_matches() {
        let doc = smoke_json();
        let r = compare_documents(&doc, &doc, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Matches, "{:?}", r.problems);
        assert!(!r.info.is_empty(), "per-cell speed lines expected");
    }

    #[test]
    fn injected_counter_mismatch_is_a_regression() {
        let doc = smoke_json();
        let parsed = parse(&doc).expect("parses");
        let cycles = parsed.get("cells").and_then(Json::as_arr).unwrap()[0]
            .get("cycles")
            .and_then(Json::as_u64)
            .expect("cycles present");
        let broken = doc.replacen(
            &format!("\"cycles\":{cycles}"),
            &format!("\"cycles\":{}", cycles + 1),
            1,
        );
        assert_ne!(doc, broken);
        let r = compare_documents(&doc, &broken, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Regression);
        assert!(
            r.problems.iter().any(|p| p.contains("cycles")),
            "{:?}",
            r.problems
        );
    }

    #[test]
    fn fingerprint_mismatch_is_refused_not_diffed() {
        let doc = smoke_json();
        let parsed = parse(&doc).expect("parses");
        let fp = parsed
            .get("config_fingerprint")
            .and_then(Json::as_str)
            .expect("stamped")
            .to_owned();
        let other = doc.replacen(&fp, &fingerprint(["something-else"]), 1);
        assert_ne!(doc, other);
        let r = compare_documents(&doc, &other, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Incompatible);
        assert!(
            r.problems.iter().any(|p| p.contains("config_fingerprint")),
            "{:?}",
            r.problems
        );
    }

    #[test]
    fn unstamped_document_is_refused_with_a_clear_error() {
        let doc = smoke_json();
        let old = r#"{"version":1,"mode":"smoke","seeds":[1],"cells":[],"total_wall_clock_s":1.0}"#;
        let r = compare_documents(old, &doc, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Incompatible);
        assert!(
            r.problems
                .iter()
                .any(|p| p.contains("config_fingerprint") && p.contains("regenerate")),
            "{:?}",
            r.problems
        );
    }

    /// A minimal stamped engine document with one cell, parameterized on
    /// the bits the noise-robustness tests vary: one phase histogram's
    /// sample count and p95, and the cell throughput.
    fn one_cell_doc(count: u64, p95: f64, cps: f64) -> String {
        format!(
            concat!(
                r#"{{"version":2,"mode":"smoke","config_fingerprint":"feed","#,
                r#""matrix":{{"cells":1}},"seeds":[1],"total_wall_clock_s":1.0,"cells":[{{"#,
                r#""scheme":"static","method":"Round-Robin","theta":0.0,"#,
                r#""wall_clock_s":1.0,"cycles":10,"cycles_per_sec":{cps},"services":1,"#,
                r#""admitted":1,"deferred":0,"rejected":0,"underflows":0,"#,
                r#""peak_memory_mib":1.0,"#,
                r#""phases":{{"vod_phase_service_seconds":{{"count":{count},"p95":{p95}}}}}}}]}}"#
            ),
            count = count,
            p95 = p95,
            cps = cps,
        )
    }

    #[test]
    fn phase_p95_spike_on_a_tiny_histogram_is_info_only() {
        // 3 samples: p95 == max, one scheduling hiccup away from a 100x
        // swing. Below the count floor the spike must not fail the gate.
        let old = one_cell_doc(3, 1.0e-5, 100.0);
        let new = one_cell_doc(3, 1.0e-3, 100.0);
        let r = compare_documents(&old, &new, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Matches, "{:?}", r.problems);
        assert!(
            r.info.iter().any(|i| i.contains("p95")),
            "spike still reported as info: {:?}",
            r.info
        );
        // The same spike over a well-sampled histogram IS a regression.
        let old = one_cell_doc(1000, 1.0e-5, 100.0);
        let new = one_cell_doc(1000, 1.0e-3, 100.0);
        let r = compare_documents(&old, &new, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Regression);
        assert!(
            r.problems.iter().any(|p| p.contains("p95")),
            "{:?}",
            r.problems
        );
    }

    #[test]
    fn throughput_change_is_reported_as_info() {
        let old = one_cell_doc(3, 1.0e-5, 100.0);
        let new = one_cell_doc(3, 1.0e-5, 250.0);
        let r = compare_documents(&old, &new, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Matches, "{:?}", r.problems);
        assert!(
            r.info.iter().any(|i| i.contains("throughput 2.50x old")),
            "{:?}",
            r.info
        );
    }

    /// A minimal stamped one-cell chaos document, parameterized on the
    /// envelope inputs the tests vary.
    fn chaos_doc(avail: f64, migrated: u64, dropped: u64, ttr: f64) -> String {
        format!(
            concat!(
                r#"{{"version":2,"mode":"cluster_chaos_smoke","config_fingerprint":"feed","#,
                r#""matrix":{{"cells":1}},"total_wall_clock_s":1.0,"cells":[{{"#,
                r#""nodes":4,"placement":"replicated_hot","dispatch":"least_loaded","#,
                r#""scenario":"zone_crash","failover":"migrate","wall_clock_s":1.0,"#,
                r#""dispatched":100,"admitted":90,"deferred":0,"rejected":0,"redirected":0,"#,
                r#""overflow_queued":0,"underflows":0,"peak_memory_mib":1.0,"#,
                r#""faults_injected":4,"interrupted":20,"migrated":{migrated},"#,
                r#""parked_failover":0,"dropped":{dropped},"unplaceable":0,"#,
                r#""recoveries":2,"cold_rebuilds":2,"domain_faults":2,"#,
                r#""disk_degradations":0,"disk_errors":0,"rereplications":0,"#,
                r#""rereplicated_streams":0,"mean_time_to_recover_s":{ttr},"#,
                r#""availability":{avail}}}]}}"#
            ),
            avail = avail,
            migrated = migrated,
            dropped = dropped,
            ttr = ttr,
        )
    }

    #[test]
    fn envelope_self_delta_passes_and_compare_reports_it() {
        let doc = chaos_doc(0.98, 20, 0, 2500.0);
        let env = envelope_delta(&doc, &doc).expect("comparable");
        assert!(env.passed(), "{:?}", env.problems);
        assert_eq!(env.cells.len(), 1);
        assert_eq!(env.cells[0].metrics.len(), 6);
        // `repro compare` surfaces the envelope as info lines for
        // chaos documents.
        let r = compare_documents(&doc, &doc, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Matches, "{:?}", r.problems);
        assert!(
            r.info.iter().any(|i| i.contains("envelope")),
            "{:?}",
            r.info
        );
    }

    #[test]
    fn envelope_catches_availability_and_split_drift() {
        let old = chaos_doc(0.98, 20, 0, 2500.0);
        let new = chaos_doc(0.90, 10, 10, 2500.0);
        let env = envelope_delta(&old, &new).expect("comparable");
        assert!(!env.passed());
        for name in ["availability", "migrated_frac", "dropped_frac"] {
            assert!(
                env.problems.iter().any(|p| p.contains(name)),
                "missing {name}: {:?}",
                env.problems
            );
        }
        // The envelope drift also fails `repro compare` (on top of the
        // exact-counter mismatches).
        let r = compare_documents(&old, &new, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Regression);
    }

    #[test]
    fn envelope_ttr_tolerance_is_relative_with_a_floor() {
        let old = chaos_doc(0.98, 20, 0, 2500.0);
        // 4% TTR drift: inside the 10% relative band.
        let env = envelope_delta(&old, &chaos_doc(0.98, 20, 0, 2600.0)).expect("comparable");
        assert!(env.passed(), "{:?}", env.problems);
        // 20% TTR drift: outside.
        let env = envelope_delta(&old, &chaos_doc(0.98, 20, 0, 3000.0)).expect("comparable");
        assert!(env.problems.iter().any(|p| p.contains("ttr_s")));
    }

    #[test]
    fn envelope_refuses_non_chaos_documents() {
        let engine = smoke_json();
        let err = envelope_delta(&engine, &engine).expect_err("engine docs have no envelope");
        assert!(err.iter().any(|p| p.contains("chaos")), "{err:?}");
    }

    #[test]
    fn engine_vs_cluster_documents_are_incompatible() {
        let engine = smoke_json();
        let cluster = r#"{"version":2,"mode":"cluster_smoke","config_fingerprint":"00","matrix":{"cells":2}}"#;
        let r = compare_documents(&engine, cluster, DEFAULT_TOLERANCE);
        assert_eq!(r.verdict, CompareVerdict::Incompatible);
    }
}
