//! One function per reproduced table/figure.
//!
//! Analytic experiments (Figs. 9, 10, 12, 13 and Table 3) evaluate the
//! closed forms; simulated ones (Figs. 6, 7, 8, 11, 14 and Tables 4, 5)
//! replay generated workloads through `vod-sim`. Every function returns
//! rendered [`Table`]s; the `repro` binary prints them and mirrors them to
//! CSV under `results/`.
//!
//! Simulated experiments take an [`Obs`] handle and attach it to every
//! engine/capacity run they perform (all seeds and schemes of that
//! experiment share the handle, so a `RecorderSink` behind it aggregates
//! the whole experiment). Pass [`Obs::null`] when no instrumentation is
//! wanted — attaching a sink never changes the tables.

use vod_analysis::table::fmt_f64;
use vod_analysis::{
    fig10_worst_latency, fig12_min_memory, fig13_capacity, fig9_buffer_sizes, Table,
};
use vod_core::{SchemeKind, SystemParams};
use vod_obs::Obs;
use vod_sched::SchedulingMethod;
use vod_sim::engine::EngineConfig;
use vod_sim::{
    run_latency_experiment_observed, CapacityConfig, CapacitySim, DiskRunStats, LatencyExperiment,
};
use vod_types::{Bits, Instant, Seconds};
use vod_workload::{generate, WorkloadConfig};

use crate::scale::Scale;

const THETAS: [f64; 3] = [0.0, 0.5, 1.0];

/// Table 3: the disk profile and the derived `N`.
#[must_use]
pub fn tab3() -> Vec<Table> {
    let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let d = &p.disk;
    let mut t = Table::new(
        "Table 3 — Seagate Barracuda 9LP specification (paper values)",
        &["parameter", "value"],
    );
    t.row(&[
        "Disk capacity".into(),
        format!("{:.2} GB", d.capacity.as_gigabytes()),
    ]);
    t.row(&[
        "Min transfer rate TR".into(),
        format!("{}", d.transfer_rate),
    ]);
    t.row(&["RPM".into(), d.rpm.to_string()]);
    t.row(&[
        "Max rotational latency".into(),
        format!("{:.2} ms", d.seek.max_rotational_delay.as_millis()),
    ]);
    t.row(&["mu1".into(), format!("{:.2} ms", d.seek.mu1.as_millis())]);
    t.row(&["nu1".into(), format!("{:.2} ms", d.seek.nu1.as_millis())]);
    t.row(&["mu2".into(), format!("{:.2} ms", d.seek.mu2.as_millis())]);
    t.row(&["nu2".into(), format!("{:.4} ms", d.seek.nu2.as_millis())]);
    t.row(&["Cylinders (substituted)".into(), d.cylinders.to_string()]);
    t.row(&["N (derived, Eq. 1)".into(), p.max_requests().to_string()]);
    vec![t]
}

fn series_table(
    title: String,
    unit: &str,
    series: &vod_analysis::SchemeSeries,
    scale_by: f64,
) -> Table {
    let mut t = Table::new(
        title,
        &["n", &format!("static_{unit}"), &format!("dynamic_{unit}")],
    );
    for &(n, st, dy) in &series.points {
        t.row(&[
            n.to_string(),
            fmt_f64(st * scale_by),
            fmt_f64(dy * scale_by),
        ]);
    }
    t
}

/// Fig. 9: buffer size vs. streams in service (analysis).
#[must_use]
pub fn fig9() -> Vec<Table> {
    SchedulingMethod::paper_methods()
        .iter()
        .map(|&m| {
            let s = fig9_buffer_sizes(m);
            series_table(
                format!("Fig. 9 ({}) — buffer size [Mbit] vs n (k = {})", m, s.k),
                "mbit",
                &s,
                1.0e-6,
            )
        })
        .collect()
}

/// Fig. 10: worst-case initial latency vs. streams in service (analysis).
#[must_use]
pub fn fig10() -> Vec<Table> {
    SchedulingMethod::paper_methods()
        .iter()
        .map(|&m| {
            let s = fig10_worst_latency(m);
            series_table(
                format!(
                    "Fig. 10 ({m}) — worst initial latency [s] vs n (k = {})",
                    s.k
                ),
                "seconds",
                &s,
                1.0,
            )
        })
        .collect()
}

/// Fig. 12: minimum memory requirement vs. streams in service (analysis).
#[must_use]
pub fn fig12() -> Vec<Table> {
    SchedulingMethod::paper_methods()
        .iter()
        .map(|&m| {
            let s = fig12_min_memory(m);
            series_table(
                format!("Fig. 12 ({m}) — min memory [MB] vs n (k = {})", s.k),
                "mbyte",
                &s,
                1.0 / 8.0e6,
            )
        })
        .collect()
}

/// Fig. 13: concurrent streams vs. total memory, 10 disks (analysis).
#[must_use]
pub fn fig13() -> Vec<Table> {
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let memories: Vec<Bits> = (1..=11)
        .map(|g| Bits::from_gigabytes(f64::from(g)))
        .collect();
    THETAS
        .iter()
        .map(|&theta| {
            let st = fig13_capacity(&params, SchemeKind::Static, 10, theta, &memories);
            let dy = fig13_capacity(&params, SchemeKind::Dynamic, 10, theta, &memories);
            let mut t = Table::new(
                format!(
                    "Fig. 13 (θ = {theta}) — concurrent streams vs memory, 10 disks (analysis)"
                ),
                &["memory_gb", "static", "dynamic"],
            );
            for (s, d) in st.iter().zip(&dy) {
                t.row(&[
                    format!("{:.0}", s.memory.as_gigabytes()),
                    s.concurrent.to_string(),
                    d.concurrent.to_string(),
                ]);
            }
            t
        })
        .collect()
}

fn engine_cfg(method: SchedulingMethod, scheme: SchemeKind) -> EngineConfig {
    EngineConfig::paper(method, scheme)
}

fn workload_cfg(scale: Scale, theta: f64) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::paper_single_disk(theta, scale.expected_arrivals());
    cfg.duration = scale.duration();
    cfg.peak = scale.peak();
    cfg
}

pub(crate) fn experiment(
    scale: Scale,
    method: SchedulingMethod,
    scheme: SchemeKind,
    theta: f64,
) -> LatencyExperiment {
    LatencyExperiment {
        engine: engine_cfg(method, scheme),
        workload: workload_cfg(scale, theta),
        seeds: scale.seeds(),
    }
}

/// Fig. 6: concurrent streams over the simulated day, per profile skew θ
/// (dynamic scheme, Round-Robin; the admitted-load trace is
/// scheme-insensitive away from saturation).
#[must_use]
pub fn fig6(scale: Scale, obs: &Obs) -> Vec<Table> {
    let slot = Seconds::from_minutes(30.0);
    let slots = (scale.duration() / slot).ceil() as usize;
    let mut t = Table::new(
        "Fig. 6 — concurrent streams vs time of day (simulation, dynamic scheme)",
        &["hour", "theta_0.0", "theta_0.5", "theta_1.0"],
    );
    let mut columns: Vec<Vec<usize>> = Vec::new();
    for &theta in &THETAS {
        let workload = generate(&workload_cfg(scale, theta), 1)
            .unwrap_or_else(|e| panic!("fig6 workload (θ = {theta}) must validate: {e}"));
        let engine = vod_sim::DiskEngine::with_observer(
            engine_cfg(SchedulingMethod::RoundRobin, SchemeKind::Dynamic),
            obs.clone(),
        )
        .expect("valid engine");
        let stats = engine.run(&workload.arrivals);
        let column = (0..slots)
            .map(|i| stats.concurrency_at(Instant::ZERO + slot * (i as f64 + 1.0)))
            .collect();
        columns.push(column);
    }
    for i in 0..slots {
        let cells: Vec<String> = std::iter::once(format!("{:.1}", (i + 1) as f64 * 0.5))
            .chain(columns.iter().map(|c| c[i].to_string()))
            .collect();
        t.row(&cells);
    }
    vec![t]
}

/// Runs `exp` with every seed's engine reporting into `obs`.
fn run_observed(exp: &LatencyExperiment, obs: &Obs) -> vod_sim::LatencyResult {
    run_latency_experiment_observed(exp, &|_| obs.clone())
        .unwrap_or_else(|e| {
            panic!(
                "latency experiment ({:?} / {}) has a pinned config; it must validate: {e}",
                exp.engine.scheme,
                exp.engine.params.method.label()
            )
        })
        .result
}

fn estimator_row(
    scale: Scale,
    method: SchedulingMethod,
    t_log: Seconds,
    alpha: u32,
    obs: &Obs,
) -> (f64, f64) {
    let mut exp = experiment(scale, method, SchemeKind::Dynamic, 0.5);
    exp.engine.t_log = t_log;
    exp.engine.params.alpha = alpha;
    let res = run_observed(&exp, obs);
    (res.audit.mean_estimated, res.audit.success_probability)
}

/// Fig. 7: mean estimated additional requests and successful-estimation
/// probability vs. `T_log` (α = 1), per scheduling method.
#[must_use]
pub fn fig7(scale: Scale, obs: &Obs) -> Vec<Table> {
    let mut mean_t = Table::new(
        "Fig. 7a — mean estimated additional requests vs T_log [min] (α = 1)",
        &["t_log_min", "round_robin", "sweep", "gss"],
    );
    let mut prob_t = Table::new(
        "Fig. 7b — successful estimation probability vs T_log [min] (α = 1)",
        &["t_log_min", "round_robin", "sweep", "gss"],
    );
    for t_log_min in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
        let mut means = Vec::new();
        let mut probs = Vec::new();
        for m in SchedulingMethod::paper_methods() {
            let (mean, prob) = estimator_row(scale, m, Seconds::from_minutes(t_log_min), 1, obs);
            means.push(fmt_f64(mean));
            probs.push(fmt_f64(prob));
        }
        mean_t.row(&[
            format!("{t_log_min:.0}"),
            means[0].clone(),
            means[1].clone(),
            means[2].clone(),
        ]);
        prob_t.row(&[
            format!("{t_log_min:.0}"),
            probs[0].clone(),
            probs[1].clone(),
            probs[2].clone(),
        ]);
    }
    vec![mean_t, prob_t]
}

/// Fig. 8: the same quantities vs. α (T_log at the paper's choices:
/// 40 min for Round-Robin, 20 min for Sweep\*/GSS\*).
#[must_use]
pub fn fig8(scale: Scale, obs: &Obs) -> Vec<Table> {
    let mut mean_t = Table::new(
        "Fig. 8a — mean estimated additional requests vs α (paper T_log)",
        &["alpha", "round_robin", "sweep", "gss"],
    );
    let mut prob_t = Table::new(
        "Fig. 8b — successful estimation probability vs α (paper T_log)",
        &["alpha", "round_robin", "sweep", "gss"],
    );
    for alpha in 1..=5u32 {
        let mut means = Vec::new();
        let mut probs = Vec::new();
        for m in SchedulingMethod::paper_methods() {
            let t_log = match m {
                SchedulingMethod::RoundRobin => Seconds::from_minutes(40.0),
                _ => Seconds::from_minutes(20.0),
            };
            let (mean, prob) = estimator_row(scale, m, t_log, alpha, obs);
            means.push(fmt_f64(mean));
            probs.push(fmt_f64(prob));
        }
        mean_t.row(&[
            alpha.to_string(),
            means[0].clone(),
            means[1].clone(),
            means[2].clone(),
        ]);
        prob_t.row(&[
            alpha.to_string(),
            probs[0].clone(),
            probs[1].clone(),
            probs[2].clone(),
        ]);
    }
    vec![mean_t, prob_t]
}

/// Buckets per-n latency means into groups of `width` for readable tables.
fn bucketed_latency(stats: &DiskRunStats, max_n: usize, width: usize) -> Vec<(usize, f64, usize)> {
    let by_load = stats.latency_by_load(max_n);
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo <= max_n {
        let hi = (lo + width - 1).min(max_n);
        let mut count = 0usize;
        let mut total = 0.0;
        for (count_i, mean_i) in by_load[lo..=hi].iter() {
            if let Some(m) = mean_i {
                total += m.as_secs_f64() * *count_i as f64;
                count += count_i;
            }
        }
        if count > 0 {
            out.push((lo, total / count as f64, count));
        }
        lo = hi + 1;
    }
    out
}

/// Fig. 11: average initial latency vs. streams in service (simulation,
/// θ = 0 for full load coverage, 5 seeds), per method.
#[must_use]
pub fn fig11(scale: Scale, obs: &Obs) -> Vec<Table> {
    SchedulingMethod::paper_methods()
        .iter()
        .map(|&m| {
            let st = run_observed(&experiment(scale, m, SchemeKind::Static, 0.0), obs);
            let dy = run_observed(&experiment(scale, m, SchemeKind::Dynamic, 0.0), obs);
            let st_b = bucketed_latency(&st.stats, 79, 5);
            let dy_b = bucketed_latency(&dy.stats, 79, 5);
            let mut t = Table::new(
                format!("Fig. 11 ({m}) — average initial latency [s] vs n (simulation, θ = 0)"),
                &[
                    "n_bucket",
                    "static_s",
                    "static_samples",
                    "dynamic_s",
                    "dynamic_samples",
                ],
            );
            // Buckets may be sparse on either side; pair by bucket start.
            let dyn_by_lo: std::collections::HashMap<usize, (f64, usize)> = dy_b
                .iter()
                .map(|&(lo, mean, count)| (lo, (mean, count)))
                .collect();
            for (lo, st_mean, st_count) in st_b {
                let (dmean, dcount) = match dyn_by_lo.get(&lo) {
                    Some(&(mean, count)) => (fmt_f64(mean), count.to_string()),
                    None => ("-".into(), "0".into()),
                };
                t.row(&[
                    format!("{lo}-{}", (lo + 4).min(79)),
                    fmt_f64(st_mean),
                    st_count.to_string(),
                    dmean,
                    dcount,
                ]);
            }
            t
        })
        .collect()
}

/// Fig. 14: concurrent streams vs. total memory, 10 disks (simulation).
#[must_use]
pub fn fig14(scale: Scale, obs: &Obs) -> Vec<Table> {
    THETAS
        .iter()
        .map(|&theta| fig14_for_theta(scale, theta, obs).0)
        .collect()
}

/// Runs Fig. 14 for one θ; returns the table and the per-memory
/// `(static, dynamic)` means used by Table 5.
fn fig14_for_theta(scale: Scale, theta: f64, obs: &Obs) -> (Table, Vec<(f64, f64)>) {
    let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
    let mut t = Table::new(
        format!("Fig. 14 (θ = {theta}) — concurrent streams vs memory, 10 disks (simulation)"),
        &["memory_gb", "static", "dynamic"],
    );
    let mut pairs = Vec::new();
    for gb in 1..=11u32 {
        let mut means = [0.0f64; 2];
        for (i, scheme) in [SchemeKind::Static, SchemeKind::Dynamic].iter().enumerate() {
            let mut total = 0.0;
            for &seed in &scale.seeds() {
                let mut wl_cfg = WorkloadConfig::paper_ten_disk(theta, scale.capacity_arrivals());
                wl_cfg.duration = scale.duration();
                wl_cfg.peak = scale.peak();
                let workload = generate(&wl_cfg, seed).unwrap_or_else(|e| {
                    panic!("fig14 workload (θ = {theta}, seed {seed}) must validate: {e}")
                });
                let sim = CapacitySim::with_observer(
                    CapacityConfig {
                        params: params.clone(),
                        scheme: *scheme,
                        disks: 10,
                        total_memory: Bits::from_gigabytes(f64::from(gb)),
                        t_log: Seconds::from_minutes(40.0),
                    },
                    obs.clone(),
                )
                .unwrap_or_else(|e| {
                    panic!("fig14 capacity sim ({scheme:?}, {gb} GB) must validate: {e}")
                });
                total += sim.run(&workload).max_concurrent as f64;
            }
            means[i] = total / scale.seeds().len() as f64;
        }
        t.row(&[
            gb.to_string(),
            format!("{:.0}", means[0]),
            format!("{:.0}", means[1]),
        ]);
        pairs.push((means[0], means[1]));
    }
    (t, pairs)
}

/// Table 4: average reduction ratio of the initial latency, dynamic vs.
/// static, per θ × scheduling method (ratios averaged over the per-n
/// buckets of Fig. 11, as the paper averages over load levels).
#[must_use]
pub fn tab4(scale: Scale, obs: &Obs) -> Vec<Table> {
    let mut t = Table::new(
        "Table 4 — average reduction ratio of initial latency (static/dynamic)",
        &["theta", "round_robin", "sweep", "gss"],
    );
    for &theta in &THETAS {
        let mut cells = Vec::new();
        for m in SchedulingMethod::paper_methods() {
            let st = run_observed(&experiment(scale, m, SchemeKind::Static, theta), obs);
            let dy = run_observed(&experiment(scale, m, SchemeKind::Dynamic, theta), obs);
            let st_b = bucketed_latency(&st.stats, 79, 5);
            let dy_b = bucketed_latency(&dy.stats, 79, 5);
            let mut ratios = Vec::new();
            for (lo, st_mean, _) in &st_b {
                if let Some((_, dy_mean, _)) = dy_b.iter().find(|(dlo, _, _)| dlo == lo) {
                    if *dy_mean > 0.0 {
                        ratios.push(st_mean / dy_mean);
                    }
                }
            }
            let avg = if ratios.is_empty() {
                f64::NAN
            } else {
                ratios.iter().sum::<f64>() / ratios.len() as f64
            };
            cells.push(format!("1/{avg:.2}"));
        }
        t.row(&[
            format!("{theta:.1}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    vec![t]
}

/// Table 5: average improvement ratio of concurrent streams, dynamic vs.
/// static, per θ (averaged over the Fig. 14 memory sizes).
#[must_use]
pub fn tab5(scale: Scale, obs: &Obs) -> Vec<Table> {
    let mut t = Table::new(
        "Table 5 — average improvement ratio of concurrent streams (dynamic/static)",
        &["theta", "improvement"],
    );
    for &theta in &THETAS {
        let (_, pairs) = fig14_for_theta(scale, theta, obs);
        let ratios: Vec<f64> = pairs
            .iter()
            .filter(|(s, _)| *s > 0.0)
            .map(|(s, d)| d / s)
            .collect();
        let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        t.row(&[format!("{theta:.1}"), format!("{avg:.2}")]);
    }
    vec![t]
}

/// Extension experiment `gss_g` (§5.1): full-load memory requirement as a
/// function of the GSS group size `g`, reproducing the choice `g = 8`.
#[must_use]
pub fn gss_g() -> Vec<Table> {
    use vod_core::memory::{min_memory_with, optimal_gss_group_size};
    use vod_core::static_scheme::static_buffer_size;

    let base = SystemParams::paper_defaults(SchedulingMethod::GSS_PAPER);
    let big_n = base.max_requests();
    let mut t = Table::new(
        "Extension (§5.1) — full-load memory vs GSS group size g",
        &["g", "memory_mb"],
    );
    for g in 1..=32usize {
        let mut p = base.clone();
        p.method = SchedulingMethod::Gss { group_size: g };
        let bs = static_buffer_size(&p, big_n);
        let mem = min_memory_with(&p, bs, big_n, 0);
        t.row(&[g.to_string(), fmt_f64(mem.as_bytes() / 1.0e6)]);
    }
    let best = optimal_gss_group_size(&base);
    t.row(&["optimal".into(), format!("g = {best}")]);
    vec![t]
}

/// Extension experiment `vcr`: initial latency under a VCR-happy audience
/// (every skip is a new request — §1's motivation for minimizing IL).
#[must_use]
pub fn vcr(scale: Scale, obs: &Obs) -> Vec<Table> {
    use vod_workload::{with_vcr_actions, VcrConfig};
    let mut t = Table::new(
        "Extension — VCR responsiveness (mean / p95 initial latency, s)",
        &["scheme", "requests", "mean_s", "p95_s", "underflows"],
    );
    let base = generate(&workload_cfg(scale, 1.0), 21)
        .unwrap_or_else(|e| panic!("vcr base workload must validate: {e}"));
    let fidgety = with_vcr_actions(&base, VcrConfig::fidgety(), 9)
        .unwrap_or_else(|e| panic!("fidgety VCR overlay must validate: {e}"));
    for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
        let stats = vod_sim::DiskEngine::with_observer(
            engine_cfg(SchedulingMethod::RoundRobin, scheme),
            obs.clone(),
        )
        .expect("valid engine")
        .run(&fidgety.arrivals);
        t.row(&[
            scheme.label().into(),
            stats.admitted.to_string(),
            fmt_f64(stats.mean_latency().map_or(f64::NAN, |s| s.as_secs_f64())),
            fmt_f64(
                stats
                    .latency_percentile(0.95)
                    .map_or(f64::NAN, |s| s.as_secs_f64()),
            ),
            stats.underflows.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab3_lists_all_constants() {
        let t = &tab3()[0];
        assert_eq!(t.len(), 10);
        let rendered = t.render();
        assert!(rendered.contains("120.00 Mbps"));
        assert!(rendered.contains("79"));
    }

    #[test]
    fn analytic_figures_have_full_series() {
        for tables in [fig9(), fig10(), fig12()] {
            assert_eq!(tables.len(), 3);
            for t in tables {
                assert_eq!(t.len(), 79);
            }
        }
        let f13 = fig13();
        assert_eq!(f13.len(), 3);
        for t in f13 {
            assert_eq!(t.len(), 11);
        }
    }

    #[test]
    fn fig6_quick_produces_the_time_series() {
        let tables = fig6(Scale::Quick, &Obs::null());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 12); // 6 h / 30 min
    }

    #[test]
    fn fig6_recorder_sees_cycle_service_and_admission_events() {
        use std::sync::Arc;
        use vod_obs::{EventKind, RecorderSink};

        let plain = fig6(Scale::Quick, &Obs::null());
        let sink = Arc::new(RecorderSink::new());
        let observed = fig6(Scale::Quick, &Obs::new(sink.clone()));
        // Instrumentation must not change the rendered table.
        assert_eq!(plain[0].render(), observed[0].render());
        let snap = sink.snapshot();
        assert!(snap.counter(EventKind::CyclePlanned) > 0);
        assert!(snap.counter(EventKind::StreamServiced) > 0);
        assert!(snap.counter(EventKind::RequestAdmitted) > 0);
    }

    #[test]
    fn gss_g_has_a_clear_interior_minimum() {
        let t = &gss_g()[0];
        assert_eq!(t.len(), 33);
        let rendered = t.render();
        assert!(rendered.contains("optimal"));
    }

    #[test]
    fn vcr_extension_runs_clean_at_quick_scale() {
        let t = &vcr(Scale::Quick, &Obs::null())[0];
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        // Both schemes must report zero underflows in the last column.
        for line in rendered.lines().skip(3) {
            assert!(line.trim_end().ends_with('0'), "underflows in: {line}");
        }
    }

    #[test]
    fn fig14_quick_shows_dynamic_advantage_under_tight_memory() {
        let (_, pairs) = fig14_for_theta(Scale::Quick, 0.0, &Obs::null());
        // At 2 GB (index 1) dynamic must beat static clearly.
        let (st, dy) = pairs[1];
        assert!(dy > st * 1.3, "static {st}, dynamic {dy}");
    }
}
