//! Experiment implementations behind the `repro` binary and the Criterion
//! benches: one function per table/figure of the paper, each returning the
//! rendered [`Table`](vod_analysis::Table)s so callers can print them and mirror them to CSV.
//!
//! See `EXPERIMENTS.md` at the repository root for the experiment index
//! and the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod cluster;
pub mod compare;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod scale;
pub mod traceview;

pub use baseline::{
    check_against_baseline, check_cluster_against_baseline, merge_cluster_into_baseline,
};
pub use chaos::{run_chaos_bench, run_chaos_bench_traced, ChaosBenchMode, ChaosBenchReport};
pub use cluster::{
    run_cluster_bench, run_cluster_bench_configured, run_cluster_bench_traced, ClusterBenchMode,
    ClusterBenchReport, ClusterCellResult,
};
pub use compare::{compare_documents, CompareReport, CompareVerdict};
pub use experiments::{
    fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, gss_g, tab3, tab4, tab5, vcr,
};
pub use perf::{run_bench, run_bench_configured, BenchMode, BenchReport, CellResult};
pub use report::render_run_report;
pub use scale::Scale;
