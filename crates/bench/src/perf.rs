//! `repro bench`: a fixed-matrix performance harness.
//!
//! Runs a pinned set of paper cells (buffer scheme × scheduling method × θ)
//! with pinned seeds. Every cell gets a fresh [`MetricsRegistry`], so the
//! phase histograms recorded by the engine ([`PHASE_CYCLE_PLAN`],
//! [`PHASE_SERVICE`], …) describe exactly that cell. The result renders as
//! the `BENCH_perf.json` document CI archives: per-cell wall-clock,
//! cycles/second, admission counters, peak pool memory, and p50/p95/max
//! per instrumented phase.
//!
//! The numbers in the document are host-dependent (wall-clock); the
//! counters and peak memory are deterministic for a given seed list.
//! Cells are independent — each gets a private registry and a pinned
//! seed list — so the matrix can run on a scoped thread pool
//! (`repro bench --jobs N`). Results are collected by matrix index, so
//! every counter in the report is byte-identical whatever the job count;
//! only the wall-clock fields vary (and under `--jobs > 1` the per-cell
//! wall-clocks include scheduling noise from neighbours).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant as WallInstant;

use vod_core::SchemeKind;
use vod_obs::json::{Array, Object};
use vod_obs::metrics::{
    PHASE_ADMISSION, PHASE_CYCLE_PLAN, PHASE_SERVICE, PHASE_TABLE_BUILD, PHASE_WORKLOAD_GEN,
};
use vod_obs::{Metrics, MetricsRegistry, MetricsSnapshot, Obs};
use vod_sched::SchedulingMethod;
use vod_sim::run_latency_experiment_observed;

use crate::experiments::experiment;
use crate::scale::Scale;

/// Every phase histogram the engine and runner feed, in report order.
pub const PHASES: [&str; 5] = [
    PHASE_TABLE_BUILD,
    PHASE_WORKLOAD_GEN,
    PHASE_ADMISSION,
    PHASE_CYCLE_PLAN,
    PHASE_SERVICE,
];

/// Which slice of the matrix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchMode {
    /// The full 18-cell matrix (2 schemes × 3 methods × 3 θ) at paper
    /// scale with seeds 1–3.
    Full,
    /// A 2-cell CI-sized subset (both schemes, Round-Robin, θ = 0.5) at
    /// quick scale with seed 1.
    Smoke,
}

impl BenchMode {
    /// Mode tag used in the JSON document.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BenchMode::Full => "full",
            BenchMode::Smoke => "smoke",
        }
    }

    /// Workload scale backing the cells.
    #[must_use]
    pub fn scale(self) -> Scale {
        match self {
            BenchMode::Full => Scale::Full,
            BenchMode::Smoke => Scale::Quick,
        }
    }

    /// Pinned seeds shared by every cell.
    #[must_use]
    pub fn seeds(self) -> Vec<u64> {
        match self {
            BenchMode::Full => vec![1, 2, 3],
            BenchMode::Smoke => vec![1],
        }
    }

    /// The `(scheme, method, θ)` cells of this mode, in run order.
    #[must_use]
    pub fn cells(self) -> Vec<(SchemeKind, SchedulingMethod, f64)> {
        match self {
            BenchMode::Full => {
                let mut out = Vec::new();
                for scheme in [SchemeKind::Static, SchemeKind::Dynamic] {
                    for method in SchedulingMethod::paper_methods() {
                        for theta in [0.0, 0.5, 1.0] {
                            out.push((scheme, method, theta));
                        }
                    }
                }
                out
            }
            BenchMode::Smoke => vec![
                (SchemeKind::Static, SchedulingMethod::RoundRobin, 0.5),
                (SchemeKind::Dynamic, SchedulingMethod::RoundRobin, 0.5),
            ],
        }
    }

    /// Fingerprint over everything that pins this mode's matrix: the
    /// mode itself, the workload scale, the seeds, and every cell spec.
    /// Two documents with different fingerprints came from different
    /// experiments and `repro compare` refuses to diff them.
    #[must_use]
    pub fn config_fingerprint(self) -> String {
        let mut parts = vec![
            "engine".to_owned(),
            self.label().to_owned(),
            format!("{:?}", self.scale()),
        ];
        for s in self.seeds() {
            parts.push(format!("seed={s}"));
        }
        for (scheme, method, theta) in self.cells() {
            parts.push(format!(
                "{}/{}/{theta}",
                scheme_label(scheme),
                method.label()
            ));
        }
        crate::compare::fingerprint(parts)
    }
}

/// Measurements from one `(scheme, method, θ)` cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Buffer allocation scheme simulated.
    pub scheme: SchemeKind,
    /// Disk scheduling method simulated.
    pub method: SchedulingMethod,
    /// Access-profile skew θ.
    pub theta: f64,
    /// Wall-clock seconds spent running the cell (all seeds).
    pub wall_clock_s: f64,
    /// Scheduler cycles simulated, summed over seeds.
    pub cycles: u64,
    /// Stream services completed, summed over seeds.
    pub services: u64,
    /// Requests admitted, summed over seeds.
    pub admitted: u64,
    /// Requests deferred at least once, summed over seeds.
    pub deferred: u64,
    /// Requests rejected, summed over seeds.
    pub rejected: u64,
    /// Buffer underflows, summed over seeds.
    pub underflows: u64,
    /// Peak buffer-pool usage across seeds, in mebibytes.
    pub peak_memory_mib: f64,
    /// The cell's private metrics registry, frozen after the run.
    pub metrics: MetricsSnapshot,
}

impl CellResult {
    /// Simulated cycles per wall-clock second (0 when the cell ran too
    /// fast to time).
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_clock_s > 0.0 {
            self.cycles as f64 / self.wall_clock_s
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        let mut o = Object::new();
        o.str("scheme", scheme_label(self.scheme));
        o.str("method", self.method.label());
        o.num("theta", self.theta);
        o.num("wall_clock_s", self.wall_clock_s);
        o.uint("cycles", self.cycles);
        o.num("cycles_per_sec", self.cycles_per_sec());
        o.uint("services", self.services);
        o.uint("admitted", self.admitted);
        o.uint("deferred", self.deferred);
        o.uint("rejected", self.rejected);
        o.uint("underflows", self.underflows);
        o.num("peak_memory_mib", self.peak_memory_mib);
        let mut phases = Object::new();
        for name in PHASES {
            if let Some(h) = self.metrics.histogram(name) {
                phases.raw(name, &h.to_json());
            }
        }
        o.raw("phases", &phases.finish());
        o.finish()
    }
}

/// A full bench run: every cell of the mode, plus totals.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The mode that was run.
    pub mode: BenchMode,
    /// Seeds every cell used.
    pub seeds: Vec<u64>,
    /// Per-cell measurements, in matrix order.
    pub cells: Vec<CellResult>,
    /// Wall-clock seconds for the whole matrix.
    pub total_wall_clock_s: f64,
}

impl BenchReport {
    /// Renders the `BENCH_perf.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.uint("version", crate::compare::BENCH_SCHEMA_VERSION);
        o.str("mode", self.mode.label());
        o.str(
            "scale",
            match self.mode.scale() {
                Scale::Full => "full",
                Scale::Quick => "quick",
            },
        );
        o.str("config_fingerprint", &self.mode.config_fingerprint());
        let mut matrix = Object::new();
        matrix.uint("cells", self.cells.len() as u64);
        matrix.uint("seeds", self.seeds.len() as u64);
        o.raw("matrix", &matrix.finish());
        let mut seeds = Array::new();
        for &s in &self.seeds {
            seeds.raw(&s.to_string());
        }
        o.raw("seeds", &seeds.finish());
        let mut cells = Array::new();
        for c in &self.cells {
            cells.raw(&c.to_json());
        }
        o.raw("cells", &cells.finish());
        o.num("total_wall_clock_s", self.total_wall_clock_s);
        o.finish()
    }
}

fn scheme_label(scheme: SchemeKind) -> &'static str {
    match scheme {
        SchemeKind::Static => "static",
        SchemeKind::StaticMaxUse => "static_max_use",
        SchemeKind::NaiveDynamic => "naive_dynamic",
        SchemeKind::Dynamic => "dynamic",
    }
}

/// Runs one cell against a fresh registry.
fn run_cell(
    mode: BenchMode,
    scheme: SchemeKind,
    method: SchedulingMethod,
    theta: f64,
    fast_forward: bool,
) -> CellResult {
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Obs::null().with_metrics(Metrics::new(Arc::clone(&registry)));
    let mut exp = experiment(mode.scale(), method, scheme, theta);
    exp.seeds = mode.seeds();
    exp.engine.fast_forward = fast_forward;
    let t0 = WallInstant::now();
    let out = run_latency_experiment_observed(&exp, &|_| obs.clone()).unwrap_or_else(|e| {
        panic!(
            "bench cell ({scheme:?} / {} / θ = {theta}) has a pinned config; it must validate: {e}",
            method.label()
        )
    });
    let wall_clock_s = t0.elapsed().as_secs_f64();
    let stats = &out.result.stats;
    CellResult {
        scheme,
        method,
        theta,
        wall_clock_s,
        cycles: stats.cycles,
        services: stats.services,
        admitted: stats.admitted,
        deferred: stats.deferrals,
        rejected: stats.rejected,
        underflows: stats.underflows,
        peak_memory_mib: stats.peak_memory.as_mebibytes(),
        metrics: registry.snapshot(),
    }
}

/// Runs the matrix for `mode` on up to `jobs` worker threads and
/// collects the report.
///
/// Workers claim cells from a shared index, but every result lands at
/// its matrix position, so the report's cell order — and every
/// deterministic field in it — is independent of `jobs`. `jobs = 1`
/// runs the matrix inline on the calling thread.
///
/// `progress` is called with a one-line description before each cell
/// runs (the `repro` binary points it at stderr; tests pass a no-op).
/// With `jobs > 1` the lines interleave in claim order.
#[must_use]
pub fn run_bench(mode: BenchMode, jobs: usize, progress: &(dyn Fn(&str) + Sync)) -> BenchReport {
    run_bench_configured(mode, jobs, true, progress)
}

/// [`run_bench`] with the engine's event-driven fast-forward toggled
/// explicitly. `fast_forward = false` is the `repro bench
/// --no-fast-forward` escape hatch: every engine takes the legacy
/// hop-by-hop idle path. Deterministic fields are bit-identical either
/// way (pinned by the equivalence tests below); only throughput moves.
#[must_use]
pub fn run_bench_configured(
    mode: BenchMode,
    jobs: usize,
    fast_forward: bool,
    progress: &(dyn Fn(&str) + Sync),
) -> BenchReport {
    let cells_spec = mode.cells();
    let total = cells_spec.len();
    let jobs = jobs.max(1).min(total.max(1));
    let t0 = WallInstant::now();

    let announce = |i: usize, scheme: SchemeKind, method: SchedulingMethod, theta: f64| {
        progress(&format!(
            "bench [{}/{}] {} / {} / θ = {theta}",
            i + 1,
            total,
            scheme_label(scheme),
            method.label(),
        ));
    };

    let cells: Vec<CellResult> = if jobs == 1 {
        cells_spec
            .iter()
            .enumerate()
            .map(|(i, &(scheme, method, theta))| {
                announce(i, scheme, method, theta);
                run_cell(mode, scheme, method, theta, fast_forward)
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let (scheme, method, theta) = cells_spec[i];
                    announce(i, scheme, method, theta);
                    let result = run_cell(mode, scheme, method, theta, fast_forward);
                    *slots[i].lock().expect("bench worker poisoned a slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("bench worker poisoned a slot")
                    .expect("every cell index was claimed and filled")
            })
            .collect()
    };

    BenchReport {
        mode,
        seeds: mode.seeds(),
        cells,
        total_wall_clock_s: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_covers_all_paper_cells() {
        let cells = BenchMode::Full.cells();
        assert_eq!(cells.len(), 18);
        let dedup: std::collections::HashSet<String> = cells
            .iter()
            .map(|(s, m, t)| format!("{s:?}/{m:?}/{t}"))
            .collect();
        assert_eq!(dedup.len(), 18);
        assert_eq!(BenchMode::Full.seeds(), vec![1, 2, 3]);
    }

    #[test]
    fn smoke_bench_reports_every_instrumented_phase() {
        let report = run_bench(BenchMode::Smoke, 1, &|_| {});
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.cycles > 0);
            assert!(cell.services > 0);
            assert!(cell.admitted > 0);
            assert!(cell.peak_memory_mib > 0.0);
            // Static cells never build a BS_k(n) table; every other phase
            // must have samples in every cell.
            for name in PHASES {
                let h = cell.metrics.histogram(name);
                if name == PHASE_TABLE_BUILD && cell.scheme == SchemeKind::Static {
                    continue;
                }
                let h = h.unwrap_or_else(|| panic!("missing phase {name}"));
                assert!(h.count > 0, "phase {name} recorded no samples");
            }
        }
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"mode\":\"smoke\""));
        assert!(json.contains("\"cycles_per_sec\""));
        assert!(json.contains(PHASE_CYCLE_PLAN));
    }

    /// The acceptance bar for `--jobs`: every deterministic field of the
    /// report is identical whatever the worker count — only wall-clock
    /// (and derived cycles/sec) may differ.
    #[test]
    fn parallel_bench_matches_sequential_bit_for_bit() {
        let seq = run_bench(BenchMode::Smoke, 1, &|_| {});
        let par = run_bench(BenchMode::Smoke, 2, &|_| {});
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.method, b.method);
            assert_eq!(a.theta.to_bits(), b.theta.to_bits());
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.services, b.services);
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.deferred, b.deferred);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.underflows, b.underflows);
            assert_eq!(
                a.peak_memory_mib.to_bits(),
                b.peak_memory_mib.to_bits(),
                "peak memory must be bit-identical across job counts"
            );
        }
    }

    fn assert_cells_bit_identical(fast: &BenchReport, slow: &BenchReport) {
        assert_eq!(fast.cells.len(), slow.cells.len());
        for (a, b) in fast.cells.iter().zip(&slow.cells) {
            let label = format!("{}/{}/θ={}", a.scheme, a.method.label(), a.theta);
            assert_eq!(a.scheme, b.scheme, "{label}");
            assert_eq!(a.method, b.method, "{label}");
            assert_eq!(a.cycles, b.cycles, "{label}: cycles");
            assert_eq!(a.services, b.services, "{label}: services");
            assert_eq!(a.admitted, b.admitted, "{label}: admitted");
            assert_eq!(a.deferred, b.deferred, "{label}: deferred");
            assert_eq!(a.rejected, b.rejected, "{label}: rejected");
            assert_eq!(a.underflows, b.underflows, "{label}: underflows");
            assert_eq!(
                a.peak_memory_mib.to_bits(),
                b.peak_memory_mib.to_bits(),
                "{label}: peak memory must be bit-identical across paths"
            );
        }
    }

    /// The tentpole contract at smoke scale: the fast-forward path and
    /// the `--no-fast-forward` legacy path produce bit-identical
    /// deterministic fields.
    #[test]
    fn fast_forward_smoke_matrix_matches_legacy_bit_for_bit() {
        let fast = run_bench_configured(BenchMode::Smoke, 1, true, &|_| {});
        let slow = run_bench_configured(BenchMode::Smoke, 1, false, &|_| {});
        assert_cells_bit_identical(&fast, &slow);
    }

    /// The tentpole contract at paper scale: all 18 full-matrix cells,
    /// seeds 1–3, both paths, compared field by field. Minutes of work
    /// in release mode (far worse in debug), so `#[ignore]`d out of
    /// tier-1; CI runs it with `--ignored` in a release job.
    #[test]
    #[ignore = "full 18-cell matrix twice; run in release with --ignored"]
    fn fast_forward_full_matrix_matches_legacy_bit_for_bit() {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        let fast = run_bench_configured(BenchMode::Full, jobs, true, &|_| {});
        let slow = run_bench_configured(BenchMode::Full, jobs, false, &|_| {});
        assert_cells_bit_identical(&fast, &slow);
    }
}
