//! `repro report`: a self-contained markdown run report rendered from a
//! trace JSONL file.
//!
//! The input is the combined stream `repro cluster --trace` (or
//! `repro --trace`) writes: section markers, span/request events,
//! `{"kind":"series",..}` cycle-indexed time-series lines,
//! `{"kind":"audit",..}` estimator-audit markers, and
//! `{"kind":"flight_dump",..}` anomaly snapshots. The report stitches
//! all of them into one document:
//!
//! - per-section span statistics and latency breakdowns (reusing
//!   [`crate::traceview::analyze`]),
//! - every recorded series as a sparkline table row (n, stride, min /
//!   mean / max / last, and a fixed-width unicode sparkline),
//! - per-node estimator audits,
//! - flight-recorder dumps cross-referenced to the cycle index at which
//!   they fired (the last series sample at or before the dump's first
//!   event time).
//!
//! Everything here is a pure function of the trace text, so the report
//! is as deterministic as the trace itself (wall-clock never appears).

use std::collections::BTreeMap;

use crate::baseline::{parse, Json};
use crate::traceview;

/// One parsed `{"kind":"series",..}` line.
#[derive(Clone, Debug)]
struct SeriesLine {
    scope: String,
    name: String,
    stride: u64,
    count: u64,
    /// `(index, t, value)` triples, in index order.
    points: Vec<(u64, f64, f64)>,
}

/// One parsed `{"kind":"audit",..}` line.
#[derive(Clone, Debug)]
struct AuditLine {
    scope: String,
    samples: u64,
    violations: u64,
}

/// One flight dump with the time of its first captured event.
#[derive(Clone, Debug)]
struct DumpLine {
    reason: String,
    seq: u64,
    dropped: u64,
    first_event_t: Option<f64>,
}

/// Glyph ramp used for sparklines, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Sparkline column width: series longer than this are resampled by
/// position bucketing so every row lines up.
const SPARK_WIDTH: usize = 40;

fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = values.len().min(SPARK_WIDTH);
    let mut out = String::with_capacity(width * 3);
    for b in 0..width {
        // Position bucket [lo, hi) of the samples this glyph covers.
        let lo = b * values.len() / width;
        let hi = (((b + 1) * values.len()) / width).max(lo + 1);
        let bucket = &values[lo..hi];
        let v = bucket.iter().sum::<f64>() / bucket.len() as f64;
        let level = if max > min {
            (((v - min) / (max - min)) * (SPARKS.len() - 1) as f64).round() as usize
        } else {
            SPARKS.len() / 2
        };
        out.push(SPARKS[level.min(SPARKS.len() - 1)]);
    }
    out
}

fn parse_series(v: &Json) -> Option<SeriesLine> {
    let mut points = Vec::new();
    for triple in v.get("points")?.as_arr()? {
        let t = triple.as_arr()?;
        if t.len() != 3 {
            return None;
        }
        points.push((t[0].as_u64()?, t[1].as_f64()?, t[2].as_f64()?));
    }
    Some(SeriesLine {
        scope: v.get("scope")?.as_str()?.to_owned(),
        name: v.get("name")?.as_str()?.to_owned(),
        stride: v.get("stride")?.as_u64()?,
        count: v.get("count")?.as_u64()?,
        points,
    })
}

fn num(x: f64) -> String {
    if x == 0.0 {
        return "0".to_owned();
    }
    let a = x.abs();
    if (1e-3..1e7).contains(&a) && x.fract() == 0.0 {
        format!("{x}")
    } else if (1e-3..1e7).contains(&a) {
        format!("{x:.3}")
    } else {
        format!("{x:.3e}")
    }
}

/// Renders the markdown run report for a trace file.
///
/// # Errors
///
/// Returns the first malformed line (the same parser as
/// `trace-analyze`).
pub fn render_run_report(src: &str) -> Result<String, String> {
    let analysis = traceview::analyze(src, 3)?;

    // Second pass for the marker kinds analyze skips. Series lines are
    // grouped per section in file order; the section labels below
    // mirror analyze's so the tables can be cross-read.
    let mut section = String::from("(unnamed)");
    let mut series: Vec<(String, SeriesLine)> = Vec::new();
    let mut audits: Vec<(String, AuditLine)> = Vec::new();
    let mut dumps: Vec<DumpLine> = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: not JSON: {e}", i + 1))?;
        let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
        match kind {
            "experiment" => {
                section = v
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("experiment")
                    .to_owned();
            }
            "cluster_cell" => {
                section = format!(
                    "cluster {} nodes / {} / {}",
                    v.get("nodes").and_then(Json::as_u64).unwrap_or(0),
                    v.get("placement").and_then(Json::as_str).unwrap_or("?"),
                    v.get("dispatch").and_then(Json::as_str).unwrap_or("?"),
                );
                // Chaos cells carry the injected scenario and failover
                // policy; fold them into the label so sections stay
                // distinguishable across the chaos matrix.
                if let (Some(s), Some(f)) = (
                    v.get("scenario").and_then(Json::as_str),
                    v.get("failover").and_then(Json::as_str),
                ) {
                    section.push_str(&format!(" / {s}/{f}"));
                }
            }
            "series" => {
                let s = parse_series(&v)
                    .ok_or_else(|| format!("line {}: malformed series line", i + 1))?;
                series.push((section.clone(), s));
            }
            "audit" => audits.push((
                section.clone(),
                AuditLine {
                    scope: v
                        .get("scope")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    samples: v.get("samples").and_then(Json::as_u64).unwrap_or(0),
                    violations: v.get("violations").and_then(Json::as_u64).unwrap_or(0),
                },
            )),
            "flight_dump" => dumps.push(DumpLine {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                seq: v.get("seq").and_then(Json::as_u64).unwrap_or(0),
                dropped: v.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                first_event_t: None,
            }),
            _ => {
                // The first event after a dump marker timestamps it.
                if let Some(d) = dumps.last_mut() {
                    if d.first_event_t.is_none() {
                        d.first_event_t = v.get("t").and_then(Json::as_f64);
                    }
                }
            }
        }
    }

    let mut out = String::from("# Run report\n");

    // Section overview from the invariant audit.
    out.push_str("\n## Sections\n\n");
    out.push_str("| section | events | spans | traces | audit | mean deferral | mean ttfs |\n");
    out.push_str("|---|---:|---:|---:|---|---:|---:|\n");
    for s in &analysis.sections {
        let verdict = if !s.audited {
            "schema only".to_owned()
        } else if s.violations.is_empty() {
            "OK".to_owned()
        } else {
            format!("{} violation(s)", s.violations.len())
        };
        let mean = |xs: Vec<f64>| {
            if xs.is_empty() {
                "n/a".to_owned()
            } else {
                format!("{:.3}s", xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            s.name,
            s.events,
            s.spans,
            s.traces,
            verdict,
            mean(
                s.breakdowns
                    .iter()
                    .filter_map(|b| b.deferral_wait_s)
                    .collect()
            ),
            mean(
                s.breakdowns
                    .iter()
                    .filter_map(|b| b.time_to_first_service_s)
                    .collect()
            ),
        ));
    }
    for s in &analysis.sections {
        for viol in &s.violations {
            out.push_str(&format!("\n- **violation** ({}): {viol}\n", s.name));
        }
    }

    // Time-series timelines, grouped section → scope.
    out.push_str("\n## Time series\n");
    if series.is_empty() {
        out.push_str("\n_No series lines in this trace (run with series recording on)._\n");
    }
    let mut last_group = String::new();
    for (sec, s) in &series {
        let group = format!("{sec} — scope `{}`", s.scope);
        if group != last_group {
            out.push_str(&format!("\n### {group}\n\n"));
            out.push_str("| series | n | stride | min | mean | max | last | timeline |\n");
            out.push_str("|---|---:|---:|---:|---:|---:|---:|---|\n");
            last_group = group;
        }
        let values: Vec<f64> = s.points.iter().map(|p| p.2).collect();
        let (min, max, mean, last) = if values.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (
                values.iter().copied().fold(f64::INFINITY, f64::min),
                values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                values.iter().sum::<f64>() / values.len() as f64,
                *values.last().expect("non-empty"),
            )
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            s.name,
            s.count,
            s.stride,
            num(min),
            num(mean),
            num(max),
            num(last),
            sparkline(&values),
        ));
    }

    // Estimator audits.
    if !audits.is_empty() {
        out.push_str("\n## Estimator audits\n\n");
        out.push_str("| section | scope | windows | violations | success |\n");
        out.push_str("|---|---|---:|---:|---:|\n");
        for (sec, a) in &audits {
            let success = if a.samples == 0 {
                "n/a".to_owned()
            } else {
                format!(
                    "{:.1}%",
                    100.0 * (a.samples - a.violations) as f64 / a.samples as f64
                )
            };
            out.push_str(&format!(
                "| {sec} | {} | {} | {} | {success} |\n",
                a.scope, a.samples, a.violations
            ));
        }
    }

    // Flight-recorder dumps, cross-referenced to the cycle index: the
    // engine samples every series once per cycle, so the last sample at
    // or before the dump's first event time names the cycle in which
    // the anomaly fired.
    if !dumps.is_empty() {
        out.push_str("\n## Flight-recorder dumps\n\n");
        for d in &dumps {
            let at = match d.first_event_t {
                Some(t) => {
                    let cycle = series
                        .iter()
                        .flat_map(|(_, s)| s.points.iter())
                        .filter(|p| p.1 <= t)
                        .map(|p| p.0)
                        .max();
                    match cycle {
                        Some(c) => format!("t={t:.3}s, around cycle index {c}"),
                        None => format!("t={t:.3}s (before the first series sample)"),
                    }
                }
                None => "no events captured".to_owned(),
            };
            out.push_str(&format!(
                "- dump #{} (`{}`): {at}{}\n",
                d.seq,
                d.reason,
                if d.dropped > 0 {
                    format!(", ring dropped {} earlier events", d.dropped)
                } else {
                    String::new()
                }
            ));
        }
    }

    // Slowest traces, verbatim from the analyzer.
    let trees: Vec<&String> = analysis
        .sections
        .iter()
        .flat_map(|s| s.slowest.iter())
        .collect();
    if !trees.is_empty() {
        out.push_str("\n## Slowest traces\n\n```text\n");
        for tree in trees {
            out.push_str(tree);
        }
        out.push_str("```\n");
    }

    Ok(out)
}

/// Renders the degradation-envelope delta between two chaos documents
/// (`repro report --chaos-delta old.json new.json`) as a markdown
/// table: one row per (cell, envelope metric) with the drift and its
/// tolerance, plus a verdict line. Pure function of the two documents.
///
/// # Errors
///
/// Returns the incompatibility reasons when the documents cannot be
/// compared (see [`crate::compare::envelope_delta`]).
pub fn render_envelope_delta(old_src: &str, new_src: &str) -> Result<String, Vec<String>> {
    let env = crate::compare::envelope_delta(old_src, new_src)?;
    let mut out = String::from("# Degradation-envelope delta\n");
    out.push_str(
        "\nAvailability, failover split (fractions of interrupted streams), and \
         time-to-recover per chaos cell, baseline vs candidate.\n",
    );
    out.push_str("\n| cell | metric | old | new | Δ | tolerance | verdict |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---|\n");
    for cell in &env.cells {
        for m in &cell.metrics {
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |x| format!("{x:.4}"));
            let delta = match (m.old, m.new) {
                (Some(a), Some(b)) => format!("{:+.4}", b - a),
                _ => "-".to_owned(),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {delta} | ±{:.4} | {} |\n",
                cell.label,
                m.name,
                fmt(m.old),
                fmt(m.new),
                m.tolerance,
                if m.ok { "OK" } else { "**DRIFT**" },
            ));
        }
    }
    out.push('\n');
    if env.passed() {
        out.push_str("**Verdict: within envelope.**\n");
    } else {
        out.push_str("**Verdict: outside envelope.**\n\n");
        for p in &env.problems {
            out.push_str(&format!("- {p}\n"));
        }
    }
    Ok(out)
}

/// Re-renders every `{"kind":"series",..}` line of a trace as the flat
/// CSV exchange format (`scope,name,index,t,value` — the same shape
/// [`vod_obs::timeseries::SeriesRecorder::export_csv`] writes), in file
/// order.
#[must_use]
pub fn series_csv(src: &str) -> String {
    let mut out = String::from(vod_obs::timeseries::SERIES_CSV_HEADER);
    for line in src.lines() {
        let Ok(v) = parse(line) else { continue };
        if v.get("kind").and_then(Json::as_str) != Some("series") {
            continue;
        }
        let Some(s) = parse_series(&v) else { continue };
        for (index, t, value) in &s.points {
            out.push_str(&format!(
                "{},{},{index},{},{}\n",
                s.scope,
                s.name,
                vod_obs::json::number(*t),
                vod_obs::json::number(*value),
            ));
        }
    }
    out
}

/// Returns how many distinct series names appear per scope — used by
/// tests and the CLI to sanity-check coverage.
#[must_use]
pub fn series_inventory(src: &str) -> BTreeMap<String, Vec<String>> {
    let mut inv: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in src.lines() {
        let Ok(v) = parse(line) else { continue };
        if v.get("kind").and_then(Json::as_str) != Some("series") {
            continue;
        }
        if let Some(s) = parse_series(&v) {
            let names = inv.entry(s.scope).or_default();
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_range_to_glyphs() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Constant series renders mid-glyphs, not a divide-by-zero.
        assert!(sparkline(&[5.0; 10]).chars().all(|c| c == SPARKS[4]));
        // Long series resample to the fixed width.
        let long: Vec<f64> = (0..1000).map(f64::from).collect();
        assert_eq!(sparkline(&long).chars().count(), SPARK_WIDTH);
    }

    #[test]
    fn report_renders_series_audits_and_dump_cross_reference() {
        let src = concat!(
            "{\"kind\":\"cluster_cell\",\"nodes\":1,\"placement\":\"rr\",\"dispatch\":\"ll\"}\n",
            "{\"kind\":\"cluster_summary\",\"redirected\":0,\"per_node\":[]}\n",
            "{\"kind\":\"series\",\"scope\":\"node0\",\"name\":\"active_streams\",",
            "\"stride\":1,\"count\":3,\"points\":[[0,0.5,1.0],[1,1.5,2.0],[2,2.5,3.0]]}\n",
            "{\"kind\":\"audit\",\"scope\":\"node0\",\"samples\":4,\"violations\":1}\n",
            "{\"kind\":\"flight_dump\",\"reason\":\"underflow\",\"seq\":1,\"events\":1,\"dropped\":0}\n",
            "{\"kind\":\"underflow\",\"t\":1.75,\"id\":3,\"stream\":7}\n",
        );
        let md = render_run_report(src).expect("report renders");
        assert!(md.contains("# Run report"));
        assert!(md.contains("active_streams"));
        assert!(md.contains('▁'), "sparkline glyphs expected:\n{md}");
        assert!(md.contains("75.0%"), "audit success rate:\n{md}");
        // The dump at t=1.75 lands after sample index 1 (t=1.5) and
        // before index 2 (t=2.5).
        assert!(md.contains("around cycle index 1"), "{md}");

        let csv = series_csv(src);
        assert!(csv.starts_with("scope,name,index,t,value\n"));
        assert!(csv.contains("node0,active_streams,1,1.5,2.0\n"), "{csv}");
    }

    #[test]
    fn inventory_counts_distinct_names_per_scope() {
        let src = concat!(
            "{\"kind\":\"series\",\"scope\":\"a\",\"name\":\"x\",\"stride\":1,\"count\":0,\"points\":[]}\n",
            "{\"kind\":\"series\",\"scope\":\"a\",\"name\":\"y\",\"stride\":1,\"count\":0,\"points\":[]}\n",
            "{\"kind\":\"series\",\"scope\":\"a\",\"name\":\"x\",\"stride\":1,\"count\":0,\"points\":[]}\n",
        );
        let inv = series_inventory(src);
        assert_eq!(inv["a"], vec!["x".to_owned(), "y".to_owned()]);
    }

    #[test]
    fn empty_trace_still_renders() {
        let md = render_run_report("").expect("empty ok");
        assert!(md.contains("No series lines"));
    }

    #[test]
    fn envelope_delta_renders_a_verdicted_table() {
        let doc = |avail: f64| {
            format!(
                concat!(
                    r#"{{"version":2,"mode":"cluster_chaos_smoke","config_fingerprint":"feed","#,
                    r#""matrix":{{"cells":1}},"cells":[{{"nodes":4,"#,
                    r#""placement":"replicated_hot","dispatch":"least_loaded","#,
                    r#""scenario":"zone_crash","failover":"migrate","interrupted":10,"#,
                    r#""migrated":10,"parked_failover":0,"dropped":0,"#,
                    r#""rereplicated_streams":0,"mean_time_to_recover_s":100.0,"#,
                    r#""availability":{avail}}}]}}"#
                ),
                avail = avail,
            )
        };
        let md = render_envelope_delta(&doc(0.98), &doc(0.98)).expect("comparable");
        assert!(md.contains("# Degradation-envelope delta"));
        assert!(md.contains("| availability |"), "{md}");
        assert!(md.contains("within envelope"), "{md}");

        let md = render_envelope_delta(&doc(0.98), &doc(0.90)).expect("comparable");
        assert!(md.contains("**DRIFT**"), "{md}");
        assert!(md.contains("outside envelope"), "{md}");

        render_envelope_delta("{}", "{}").expect_err("unstamped docs are refused");
    }
}
