//! Experiment scaling: paper-sized runs vs. quick smoke runs.

use vod_types::Seconds;

/// How big to run the simulated experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's setup: 24 simulated hours, five seeds.
    Full,
    /// A fast smoke configuration (6 simulated hours, two seeds) for CI
    /// and the Criterion benches. Shapes hold; absolute noise is higher.
    Quick,
}

impl Scale {
    /// Seeds to run (the paper uses five, §5.2).
    #[must_use]
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Full => vec![1, 2, 3, 4, 5],
            Scale::Quick => vec![1, 2],
        }
    }

    /// Simulated horizon.
    #[must_use]
    pub fn duration(self) -> Seconds {
        match self {
            Scale::Full => Seconds::from_hours(24.0),
            Scale::Quick => Seconds::from_hours(6.0),
        }
    }

    /// Peak hour of the arrival profile (hour 9 in the paper; scaled runs
    /// keep the peak proportionally placed).
    #[must_use]
    pub fn peak(self) -> Seconds {
        match self {
            Scale::Full => Seconds::from_hours(9.0),
            Scale::Quick => Seconds::from_hours(2.25),
        }
    }

    /// Expected arrivals over the horizon. Calibration (see
    /// EXPERIMENTS.md): 1 440/day gives a steady uniform-profile load of
    /// ~60 streams (Fig. 6c's level) and saturates the disk around the
    /// peak for θ ∈ {0, 0.5}, producing the rejections the paper reports
    /// between hours 7 and 13.
    #[must_use]
    pub fn expected_arrivals(self) -> f64 {
        match self {
            Scale::Full => 1440.0,
            Scale::Quick => 360.0,
        }
    }

    /// Offered arrivals for the 10-disk capacity runs (enough to saturate
    /// all ten disks).
    #[must_use]
    pub fn capacity_arrivals(self) -> f64 {
        match self {
            Scale::Full => 20_000.0,
            Scale::Quick => 5_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_the_paper_setup() {
        assert_eq!(Scale::Full.seeds().len(), 5);
        assert_eq!(Scale::Full.duration(), Seconds::from_hours(24.0));
        assert_eq!(Scale::Full.peak(), Seconds::from_hours(9.0));
    }

    #[test]
    fn quick_is_smaller_everywhere() {
        assert!(Scale::Quick.seeds().len() < Scale::Full.seeds().len());
        assert!(Scale::Quick.duration() < Scale::Full.duration());
        assert!(Scale::Quick.expected_arrivals() < Scale::Full.expected_arrivals());
        assert!(Scale::Quick.capacity_arrivals() < Scale::Full.capacity_arrivals());
        // Peak stays inside the horizon.
        assert!(Scale::Quick.peak() < Scale::Quick.duration());
    }
}
