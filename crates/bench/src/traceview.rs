//! `repro trace-analyze`: offline analysis of `--trace` JSONL output.
//!
//! A trace file is a sequence of sections, each introduced by a marker
//! line (`{"kind":"experiment",...}` from `repro --trace`,
//! `{"kind":"cluster_cell",...}` from `repro cluster --trace`) and
//! followed by the section's event lines. `{"kind":"cluster_summary",...}`
//! carries the front end's deterministic counters for the preceding
//! cell, and `{"kind":"flight_dump",...}` introduces a flight-recorder
//! ring snapshot (analyzed for schema only — a bounded ring legitimately
//! truncates span lifecycles).
//!
//! Three layers of output:
//!
//! 1. **Schema check** — every line parses, has a known `kind`, and
//!    carries that kind's required fields ([`check_schema`], the
//!    CI gate behind `--schema-only`).
//! 2. **Invariant audit** — span starts and ends balance, span ends
//!    refer to started spans, every `request_admitted` event has exactly
//!    one admission span ended `admitted`, and (when a
//!    `cluster_summary` is present) hop spans reconcile one-for-one
//!    with the redirection counters, per node and in total.
//! 3. **Latency breakdowns** — per-trace deferral wait (admission span
//!    duration), hop count, and time-to-first-service (first
//!    `first_fill` service span end minus request start), plus the
//!    top-k slowest traces rendered as span trees.
//!
//! Trace ids may repeat across sections (each cell derives them from
//! the same pinned seed) and across sub-runs inside one experiment
//! section (multi-seed runs share a recorder), so the audit works on
//! *event counts per span id* — starts equal ends, kinds consistent —
//! rather than global uniqueness.

use std::collections::BTreeMap;

use crate::baseline::{parse, Json};

/// Everything known about one span id within a section.
#[derive(Clone, Debug, Default)]
struct SpanRec {
    starts: u64,
    ends: u64,
    kind: Option<String>,
    kind_conflict: bool,
    parent: Option<u64>,
    status: Option<String>,
    first_start_t: Option<f64>,
    last_end_t: Option<f64>,
    annos: Vec<(String, Json)>,
}

/// Expected counters from a `cluster_summary` marker.
#[derive(Clone, Debug, Default)]
struct ClusterExpect {
    redirected: u64,
    /// Span records the recorder had to drop — any truncation voids the
    /// lifecycle audit, so it is reported as a violation of its own.
    spans_dropped: u64,
    /// `node -> (redirected_in, redirected_out)`.
    per_node: BTreeMap<u64, (u64, u64)>,
}

/// One audited section of the trace file.
#[derive(Clone, Debug)]
pub struct SectionReport {
    /// Marker-derived section name.
    pub name: String,
    /// False for flight-recorder dumps (schema-checked only).
    pub audited: bool,
    /// Event lines in the section.
    pub events: usize,
    /// Distinct span ids seen.
    pub spans: usize,
    /// Distinct trace ids seen.
    pub traces: usize,
    /// Invariant violations (empty = audit passed).
    pub violations: Vec<String>,
    /// Per-trace latency breakdowns (admitted requests only).
    pub breakdowns: Vec<TraceBreakdown>,
    /// Rendered span trees of the slowest traces.
    pub slowest: Vec<String>,
}

/// Latency decomposition of one request trace.
#[derive(Clone, Debug)]
pub struct TraceBreakdown {
    /// The trace id (16 hex digits).
    pub trace: String,
    /// Admission span duration: how long the request waited in the
    /// queue (deferral wait), seconds.
    pub deferral_wait_s: Option<f64>,
    /// Redirection hops the request took before landing on a node.
    pub hops: usize,
    /// First `first_fill` service-span end minus request start: the
    /// traced time-to-first-service, seconds.
    pub time_to_first_service_s: Option<f64>,
}

/// The full analysis of a trace file.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Total lines read.
    pub lines: usize,
    /// Sections in file order.
    pub sections: Vec<SectionReport>,
}

impl TraceReport {
    /// True when every audited section passed its invariant audit.
    #[must_use]
    pub fn audit_passed(&self) -> bool {
        self.sections.iter().all(|s| s.violations.is_empty())
    }
}

const MARKER_KINDS: [&str; 6] = [
    "experiment",
    "cluster_cell",
    "cluster_summary",
    "flight_dump",
    "series",
    "audit",
];

fn is_span_kind(kind: &str) -> bool {
    matches!(kind, "span_start" | "span_annotate" | "span_end")
}

fn hex_id(v: &Json) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

/// Returns true when the trace body has no non-empty lines — a
/// zero-byte or fully truncated file. `repro trace-analyze` and
/// `repro report` refuse such inputs with a diagnostic instead of
/// reporting success over nothing ("schema OK: 0 lines" used to pass).
#[must_use]
pub fn is_empty_trace(src: &str) -> bool {
    src.lines().all(|line| line.trim().is_empty())
}

/// Validates every line of a trace file against the event/marker
/// schema without building any per-span state.
///
/// # Errors
///
/// Returns every malformed line as `"line N: why"`.
pub fn check_schema(src: &str) -> Result<SchemaSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut summary = SchemaSummary::default();
    for (i, line) in src.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        summary.lines += 1;
        let v = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {n}: not JSON: {e}"));
                continue;
            }
        };
        let Some(kind) = v.get("kind").and_then(Json::as_str) else {
            errors.push(format!("line {n}: missing string field `kind`"));
            continue;
        };
        if MARKER_KINDS.contains(&kind) {
            summary.markers += 1;
            continue;
        }
        summary.events += 1;
        if v.get("t").and_then(Json::as_f64).is_none() {
            errors.push(format!("line {n}: event `{kind}` missing numeric `t`"));
        }
        if !is_span_kind(kind) {
            continue;
        }
        summary.span_events += 1;
        for field in ["trace", "span"] {
            match v.get(field) {
                Some(val) if hex_id(val).is_some() => {}
                _ => errors.push(format!("line {n}: `{kind}` needs 16-hex `{field}`")),
            }
        }
        match kind {
            "span_start" => {
                if v.get("span_kind").and_then(Json::as_str).is_none() {
                    errors.push(format!("line {n}: span_start missing `span_kind`"));
                }
                match v.get("parent") {
                    Some(Json::Null) => {}
                    Some(p) if hex_id(p).is_some() => {}
                    _ => errors.push(format!("line {n}: span_start needs `parent` (hex or null)")),
                }
            }
            "span_annotate" => {
                if v.get("key").and_then(Json::as_str).is_none() {
                    errors.push(format!("line {n}: span_annotate missing `key`"));
                }
                if v.get("value").is_none() {
                    errors.push(format!("line {n}: span_annotate missing `value`"));
                }
            }
            "span_end" => {
                if v.get("status").and_then(Json::as_str).is_none() {
                    errors.push(format!("line {n}: span_end missing `status`"));
                }
            }
            _ => unreachable!("is_span_kind gated"),
        }
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

/// Line/marker/event tallies from a clean schema pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchemaSummary {
    /// Non-empty lines.
    pub lines: usize,
    /// Marker lines.
    pub markers: usize,
    /// Event lines.
    pub events: usize,
    /// Span-lifecycle event lines.
    pub span_events: usize,
}

/// In-flight state of the section being accumulated.
struct SectionState {
    name: String,
    audited: bool,
    events: usize,
    /// `(trace, span) -> record`.
    spans: BTreeMap<(u64, u64), SpanRec>,
    /// Non-span event counts by kind label.
    event_counts: BTreeMap<String, u64>,
    expect: Option<ClusterExpect>,
}

impl SectionState {
    fn new(name: String, audited: bool) -> Self {
        SectionState {
            name,
            audited,
            events: 0,
            spans: BTreeMap::new(),
            event_counts: BTreeMap::new(),
            expect: None,
        }
    }
}

/// Parses and audits a trace file. `top_k` bounds the slowest-trace
/// span trees rendered per section.
///
/// # Errors
///
/// Returns the first malformed line (run [`check_schema`] for the
/// exhaustive list).
pub fn analyze(src: &str, top_k: usize) -> Result<TraceReport, String> {
    let mut sections: Vec<SectionReport> = Vec::new();
    let mut current: Option<SectionState> = None;
    let mut lines = 0usize;

    let flush = |state: Option<SectionState>, out: &mut Vec<SectionReport>| {
        if let Some(s) = state {
            out.push(finish_section(s, top_k));
        }
    };

    for (i, line) in src.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let v = parse(line).map_err(|e| format!("line {n}: not JSON: {e}"))?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing `kind`"))?
            .to_owned();
        match kind.as_str() {
            "experiment" => {
                flush(current.take(), &mut sections);
                let mut name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("experiment")
                    .to_owned();
                // A marker that declares dropped span records announces
                // its own truncation: lifecycles are torn by the ring,
                // not by a bug, so the audit would only report noise.
                let dropped = v.get("spans_dropped").and_then(Json::as_u64).unwrap_or(0);
                if dropped > 0 {
                    name.push_str(&format!(" [truncated: {dropped} span records dropped]"));
                }
                current = Some(SectionState::new(name, dropped == 0));
            }
            "cluster_cell" => {
                flush(current.take(), &mut sections);
                let mut name = format!(
                    "cluster {} nodes / {} / {}",
                    v.get("nodes").and_then(Json::as_u64).unwrap_or(0),
                    v.get("placement").and_then(Json::as_str).unwrap_or("?"),
                    v.get("dispatch").and_then(Json::as_str).unwrap_or("?"),
                );
                // Chaos cells also name their scenario and failover
                // policy; include them so matrix sections stay unique.
                if let (Some(s), Some(f)) = (
                    v.get("scenario").and_then(Json::as_str),
                    v.get("failover").and_then(Json::as_str),
                ) {
                    name.push_str(&format!(" / {s}/{f}"));
                }
                current = Some(SectionState::new(name, true));
            }
            "cluster_summary" => {
                if let Some(state) = current.as_mut() {
                    state.expect = Some(parse_expect(&v));
                }
            }
            // Time-series and audit marker lines ride inside a section
            // (appended after its summary) but are `repro report`'s
            // input, not span events — the audit ignores them.
            "series" | "audit" => {}
            "flight_dump" => {
                flush(current.take(), &mut sections);
                let reason = v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned();
                current = Some(SectionState::new(format!("flight dump ({reason})"), false));
            }
            _ => {
                let state = current.get_or_insert_with(|| {
                    // Headerless files (a raw export) audit as one
                    // anonymous section.
                    SectionState::new("(unnamed)".to_owned(), true)
                });
                state.events += 1;
                ingest_event(state, &kind, &v).map_err(|e| format!("line {n}: {e}"))?;
            }
        }
    }
    flush(current.take(), &mut sections);
    Ok(TraceReport { lines, sections })
}

fn parse_expect(v: &Json) -> ClusterExpect {
    let mut expect = ClusterExpect {
        redirected: v.get("redirected").and_then(Json::as_u64).unwrap_or(0),
        spans_dropped: v.get("spans_dropped").and_then(Json::as_u64).unwrap_or(0),
        per_node: BTreeMap::new(),
    };
    if let Some(nodes) = v.get("per_node").and_then(Json::as_arr) {
        for nv in nodes {
            let Some(node) = nv.get("node").and_then(Json::as_u64) else {
                continue;
            };
            let rin = nv.get("redirected_in").and_then(Json::as_u64).unwrap_or(0);
            let rout = nv.get("redirected_out").and_then(Json::as_u64).unwrap_or(0);
            expect.per_node.insert(node, (rin, rout));
        }
    }
    expect
}

fn ingest_event(state: &mut SectionState, kind: &str, v: &Json) -> Result<(), String> {
    if !is_span_kind(kind) {
        *state.event_counts.entry(kind.to_owned()).or_insert(0) += 1;
        return Ok(());
    }
    let trace = v
        .get("trace")
        .and_then(hex_id)
        .ok_or("span event missing hex `trace`")?;
    let span = v
        .get("span")
        .and_then(hex_id)
        .ok_or("span event missing hex `span`")?;
    let t = v.get("t").and_then(Json::as_f64).ok_or("missing `t`")?;
    let rec = state.spans.entry((trace, span)).or_default();
    match kind {
        "span_start" => {
            rec.starts += 1;
            let sk = v
                .get("span_kind")
                .and_then(Json::as_str)
                .ok_or("span_start missing `span_kind`")?;
            match &rec.kind {
                Some(prev) if prev != sk => rec.kind_conflict = true,
                Some(_) => {}
                None => rec.kind = Some(sk.to_owned()),
            }
            rec.parent = v.get("parent").and_then(hex_id);
            if rec.first_start_t.is_none() {
                rec.first_start_t = Some(t);
            }
        }
        "span_annotate" => {
            let key = v
                .get("key")
                .and_then(Json::as_str)
                .ok_or("span_annotate missing `key`")?;
            if let Some(value) = v.get("value") {
                rec.annos.push((key.to_owned(), value.clone()));
            }
        }
        "span_end" => {
            rec.ends += 1;
            rec.status = v.get("status").and_then(Json::as_str).map(str::to_owned);
            rec.last_end_t = Some(t);
        }
        _ => unreachable!("is_span_kind gated"),
    }
    Ok(())
}

fn anno_u64(rec: &SpanRec, key: &str) -> Option<u64> {
    rec.annos
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

#[allow(clippy::too_many_lines)]
fn finish_section(state: SectionState, top_k: usize) -> SectionReport {
    let mut violations = Vec::new();
    let traces: std::collections::BTreeSet<u64> =
        state.spans.keys().map(|&(trace, _)| trace).collect();

    if state.audited {
        // 1. Lifecycle balance: every started span ends (same number of
        //    times — sections may replay identical sub-runs), ends never
        //    outnumber starts, kinds are consistent, ends have a start,
        //    parents refer to known spans.
        let mut admitted_ends = 0u64;
        let mut hop_total = 0u64;
        let mut hops_from: BTreeMap<u64, u64> = BTreeMap::new();
        let mut hops_to: BTreeMap<u64, u64> = BTreeMap::new();
        for (&(trace, span), rec) in &state.spans {
            let label = format!("trace {trace:016x} span {span:016x}");
            if rec.starts == 0 {
                violations.push(format!("{label}: ended/annotated but never started"));
                continue;
            }
            if rec.starts != rec.ends {
                violations.push(format!(
                    "{label} ({}): {} starts vs {} ends",
                    rec.kind.as_deref().unwrap_or("?"),
                    rec.starts,
                    rec.ends
                ));
            }
            if rec.kind_conflict {
                violations.push(format!("{label}: restarted with a different span_kind"));
            }
            if let Some(parent) = rec.parent {
                if !state.spans.contains_key(&(trace, parent)) {
                    violations.push(format!("{label}: parent {parent:016x} never started"));
                }
            }
            match rec.kind.as_deref() {
                Some("admission") if rec.status.as_deref() == Some("admitted") => {
                    admitted_ends += rec.ends;
                }
                Some("hop") => {
                    hop_total += rec.starts;
                    if let Some(f) = anno_u64(rec, "from_node") {
                        *hops_from.entry(f).or_insert(0) += rec.starts;
                    }
                    if let Some(t) = anno_u64(rec, "to_node") {
                        *hops_to.entry(t).or_insert(0) += rec.starts;
                    }
                }
                _ => {}
            }
        }

        // 2. Every admitted stream has exactly one admission span ended
        //    `admitted` — so admitted-end events match the engine's own
        //    `request_admitted` events one for one.
        let admitted_events = state
            .event_counts
            .get("request_admitted")
            .copied()
            .unwrap_or(0);
        if admitted_ends != admitted_events {
            violations.push(format!(
                "{} admission spans ended `admitted` vs {} request_admitted events",
                admitted_ends, admitted_events
            ));
        }

        // 3. Hop spans reconcile with the redirection counters.
        if let Some(expect) = &state.expect {
            if expect.spans_dropped > 0 {
                violations.push(format!(
                    "recorder dropped {} span records — the section is truncated",
                    expect.spans_dropped
                ));
            }
            if hop_total != expect.redirected {
                violations.push(format!(
                    "{} hop spans vs cluster redirected counter {}",
                    hop_total, expect.redirected
                ));
            }
            for (&node, &(rin, rout)) in &expect.per_node {
                let seen_in = hops_to.get(&node).copied().unwrap_or(0);
                let seen_out = hops_from.get(&node).copied().unwrap_or(0);
                if seen_in != rin {
                    violations.push(format!(
                        "node {node}: {seen_in} hop spans in vs redirected_in {rin}"
                    ));
                }
                if seen_out != rout {
                    violations.push(format!(
                        "node {node}: {seen_out} hop spans out vs redirected_out {rout}"
                    ));
                }
            }
            for (&node, &count) in &hops_from {
                if !expect.per_node.contains_key(&node) {
                    violations.push(format!(
                        "{count} hop spans leave node {node}, which the summary does not list"
                    ));
                }
            }
        }
    }

    // Latency breakdowns per trace (admitted traces only).
    let mut breakdowns: Vec<TraceBreakdown> = Vec::new();
    for &trace in &traces {
        let mut root_start: Option<f64> = None;
        let mut deferral: Option<f64> = None;
        let mut hops = 0usize;
        let mut first_service_end: Option<f64> = None;
        let mut admitted = false;
        for (&(tr, _), rec) in state.spans.range((trace, 0)..=(trace, u64::MAX)) {
            debug_assert_eq!(tr, trace);
            match rec.kind.as_deref() {
                Some("request") => root_start = rec.first_start_t,
                Some("admission") => {
                    admitted = rec.status.as_deref() == Some("admitted");
                    if let (Some(s), Some(e)) = (rec.first_start_t, rec.last_end_t) {
                        deferral = Some(e - s);
                    }
                }
                Some("hop") => hops += usize::try_from(rec.starts).unwrap_or(usize::MAX),
                Some("service") if anno_u64(rec, "first_fill") == Some(1) => {
                    let end = rec.last_end_t;
                    if first_service_end.is_none() || (end.is_some() && end < first_service_end) {
                        first_service_end = end;
                    }
                }
                _ => {}
            }
        }
        if !admitted {
            continue;
        }
        breakdowns.push(TraceBreakdown {
            trace: format!("{trace:016x}"),
            deferral_wait_s: deferral,
            hops,
            time_to_first_service_s: match (root_start, first_service_end) {
                (Some(s), Some(e)) => Some(e - s),
                _ => None,
            },
        });
    }

    // Top-k slowest by time-to-first-service, rendered as span trees.
    let mut ranked: Vec<&TraceBreakdown> = breakdowns
        .iter()
        .filter(|b| b.time_to_first_service_s.is_some())
        .collect();
    ranked.sort_by(|a, b| {
        b.time_to_first_service_s
            .partial_cmp(&a.time_to_first_service_s)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let slowest: Vec<String> = ranked
        .iter()
        .take(top_k)
        .map(|b| {
            let trace = u64::from_str_radix(&b.trace, 16).unwrap_or(0);
            render_trace_tree(&state, trace, b)
        })
        .collect();

    SectionReport {
        name: state.name,
        audited: state.audited,
        events: state.events,
        spans: state.spans.len(),
        traces: traces.len(),
        violations,
        breakdowns,
        slowest,
    }
}

/// Renders one trace as an indented span tree (roots first, children
/// by start time).
fn render_trace_tree(state: &SectionState, trace: u64, b: &TraceBreakdown) -> String {
    let spans: Vec<(u64, &SpanRec)> = state
        .spans
        .range((trace, 0)..=(trace, u64::MAX))
        .map(|(&(_, span), rec)| (span, rec))
        .collect();
    let mut out = format!(
        "trace {} — ttfs {:.3}s, deferral {}, {} hop(s)\n",
        b.trace,
        b.time_to_first_service_s.unwrap_or(f64::NAN),
        b.deferral_wait_s
            .map_or_else(|| "n/a".to_owned(), |d| format!("{d:.3}s")),
        b.hops,
    );
    let mut children: BTreeMap<Option<u64>, Vec<u64>> = BTreeMap::new();
    for &(span, rec) in &spans {
        let parent = rec.parent.filter(|p| spans.iter().any(|&(s, _)| s == *p));
        children.entry(parent).or_default().push(span);
    }
    for list in children.values_mut() {
        list.sort_by(|a, b| {
            let ta = state.spans[&(trace, *a)].first_start_t.unwrap_or(f64::MAX);
            let tb = state.spans[&(trace, *b)].first_start_t.unwrap_or(f64::MAX);
            ta.partial_cmp(&tb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
    }
    let roots = children.get(&None).cloned().unwrap_or_default();
    for root in roots {
        render_span(state, trace, root, &children, 1, &mut out);
    }
    out
}

fn render_span(
    state: &SectionState,
    trace: u64,
    span: u64,
    children: &BTreeMap<Option<u64>, Vec<u64>>,
    depth: usize,
    out: &mut String,
) {
    let rec = &state.spans[&(trace, span)];
    let start = rec.first_start_t.unwrap_or(f64::NAN);
    let dur = match (rec.first_start_t, rec.last_end_t) {
        (Some(s), Some(e)) => format!("{:.3}s", e - s),
        _ => "open".to_owned(),
    };
    let annos = rec
        .annos
        .iter()
        .map(|(k, v)| match v {
            Json::Str(s) => format!("{k}={s}"),
            Json::Num(x) => format!("{k}={x}"),
            other => format!("{k}={other:?}"),
        })
        .collect::<Vec<_>>()
        .join(" ");
    out.push_str(&format!(
        "{:indent$}{} [{}] t={start:.3} dur={dur}{}{}\n",
        "",
        rec.kind.as_deref().unwrap_or("?"),
        rec.status.as_deref().unwrap_or("open"),
        if annos.is_empty() { "" } else { " " },
        annos,
        indent = depth * 2,
    ));
    if let Some(kids) = children.get(&Some(span)) {
        for &kid in kids {
            render_span(state, trace, kid, children, depth + 1, out);
        }
    }
}

/// Renders the human-readable analysis report.
#[must_use]
pub fn render(report: &TraceReport) -> String {
    let mut out = String::new();
    for s in &report.sections {
        out.push_str(&format!(
            "== {} — {} events, {} spans, {} traces{} ==\n",
            s.name,
            s.events,
            s.spans,
            s.traces,
            if s.audited { "" } else { " (schema only)" },
        ));
        if s.audited {
            if s.violations.is_empty() {
                out.push_str("  invariant audit: OK\n");
            } else {
                for v in &s.violations {
                    out.push_str(&format!("  VIOLATION: {v}\n"));
                }
            }
            let waited: Vec<f64> = s
                .breakdowns
                .iter()
                .filter_map(|b| b.deferral_wait_s)
                .collect();
            let ttfs: Vec<f64> = s
                .breakdowns
                .iter()
                .filter_map(|b| b.time_to_first_service_s)
                .collect();
            let hops: usize = s.breakdowns.iter().map(|b| b.hops).sum();
            out.push_str(&format!(
                "  {} admitted traces: mean deferral {}, mean ttfs {}, {} total hop(s)\n",
                s.breakdowns.len(),
                mean_label(&waited),
                mean_label(&ttfs),
                hops,
            ));
            for tree in &s.slowest {
                for line in tree.lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
    }
    let verdict = if report.audit_passed() {
        "OK"
    } else {
        "FAILED"
    };
    out.push_str(&format!(
        "[trace-analyze: {} lines, {} sections, invariant audit {verdict}]\n",
        report.lines,
        report.sections.len(),
    ));
    out
}

fn mean_label(xs: &[f64]) -> String {
    if xs.is_empty() {
        return "n/a".to_owned();
    }
    format!("{:.3}s", xs.iter().sum::<f64>() / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vod_obs::span::{
        AnnoValue, SpanId, SpanKind, SpanStatus, TraceId, SEQ_ADMISSION, SEQ_FIRST_SERVICE,
        SEQ_REQUEST,
    };
    use vod_obs::{Obs, RecorderSink};
    use vod_types::Instant;

    /// Emits one complete admitted-request lifecycle into a recorder
    /// and returns its JSONL.
    fn lifecycle_jsonl() -> String {
        let rec = Arc::new(RecorderSink::new());
        let obs = Obs::new(Arc::clone(&rec) as Arc<dyn vod_obs::Sink>);
        let trace = TraceId::derive(9, 0);
        let root = SpanId::derive(trace, SEQ_REQUEST);
        let adm = SpanId::derive(trace, SEQ_ADMISSION);
        let svc = SpanId::derive(trace, SEQ_FIRST_SERVICE);
        let t = Instant::from_secs;
        obs.span_start(t(0.0), trace, root, None, SpanKind::Request);
        obs.span_start(t(0.0), trace, adm, Some(root), SpanKind::Admission);
        obs.span_end(t(1.5), trace, adm, SpanStatus::Admitted);
        obs.emit(&vod_obs::Event::RequestAdmitted {
            at: t(1.5),
            id: vod_types::RequestId::new(0),
            n: 1,
            waited: vod_types::Seconds::from_secs(1.5),
        });
        obs.span_start(t(1.5), trace, svc, Some(root), SpanKind::Service);
        obs.span_annotate(t(2.0), trace, svc, "first_fill", AnnoValue::U64(1));
        obs.span_end(t(2.0), trace, svc, SpanStatus::Ok);
        obs.span_end(t(5.0), trace, root, SpanStatus::Ok);
        rec.snapshot().export_jsonl()
    }

    #[test]
    fn clean_lifecycle_passes_schema_and_audit() {
        let src = format!(
            "{{\"kind\":\"experiment\",\"name\":\"t\"}}\n{}",
            lifecycle_jsonl()
        );
        let summary = check_schema(&src).expect("schema must pass");
        assert_eq!(summary.markers, 1);
        assert!(summary.span_events >= 7);
        let report = analyze(&src, 3).expect("analyze");
        assert!(report.audit_passed(), "{:?}", report.sections[0].violations);
        let s = &report.sections[0];
        assert_eq!(s.traces, 1);
        assert_eq!(s.breakdowns.len(), 1);
        let b = &s.breakdowns[0];
        assert_eq!(b.hops, 0);
        assert!((b.deferral_wait_s.unwrap() - 1.5).abs() < 1e-9);
        assert!((b.time_to_first_service_s.unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(s.slowest.len(), 1);
        assert!(s.slowest[0].contains("request"));
        assert!(s.slowest[0].contains("admission"));
    }

    #[test]
    fn unbalanced_span_is_a_violation() {
        let rec = Arc::new(RecorderSink::new());
        let obs = Obs::new(Arc::clone(&rec) as Arc<dyn vod_obs::Sink>);
        let trace = TraceId::derive(3, 1);
        let root = SpanId::derive(trace, SEQ_REQUEST);
        obs.span_start(Instant::ZERO, trace, root, None, SpanKind::Request);
        // Never ended.
        let report = analyze(&rec.snapshot().export_jsonl(), 3).expect("analyze");
        assert!(!report.audit_passed());
        assert!(report.sections[0].violations[0].contains("1 starts vs 0 ends"));
    }

    #[test]
    fn end_without_start_is_a_violation() {
        let rec = Arc::new(RecorderSink::new());
        let obs = Obs::new(Arc::clone(&rec) as Arc<dyn vod_obs::Sink>);
        let trace = TraceId::derive(3, 2);
        obs.span_end(
            Instant::ZERO,
            trace,
            SpanId::derive(trace, SEQ_REQUEST),
            SpanStatus::Ok,
        );
        let report = analyze(&rec.snapshot().export_jsonl(), 3).expect("analyze");
        assert!(!report.audit_passed());
        assert!(report.sections[0].violations[0].contains("never started"));
    }

    #[test]
    fn hop_spans_reconcile_against_cluster_summary() {
        let rec = Arc::new(RecorderSink::new());
        let obs = Obs::new(Arc::clone(&rec) as Arc<dyn vod_obs::Sink>);
        let trace = TraceId::derive(5, 0);
        let hop = SpanId::derive(trace, vod_obs::span::SEQ_HOP_DISPATCH);
        obs.span_start(Instant::ZERO, trace, hop, None, SpanKind::Hop);
        obs.span_annotate(Instant::ZERO, trace, hop, "from_node", AnnoValue::U64(0));
        obs.span_annotate(Instant::ZERO, trace, hop, "to_node", AnnoValue::U64(1));
        obs.span_end(Instant::ZERO, trace, hop, SpanStatus::Ok);
        let events = rec.snapshot().export_jsonl();

        let good = format!(
            "{{\"kind\":\"cluster_cell\",\"nodes\":2,\"placement\":\"rr\",\"dispatch\":\"ll\"}}\n\
             {events}{{\"kind\":\"cluster_summary\",\"redirected\":1,\"per_node\":[\
             {{\"node\":0,\"redirected_in\":0,\"redirected_out\":1}},\
             {{\"node\":1,\"redirected_in\":1,\"redirected_out\":0}}]}}\n"
        );
        assert!(analyze(&good, 3).expect("analyze").audit_passed());

        let bad = good.replace("\"redirected\":1", "\"redirected\":2");
        let report = analyze(&bad, 3).expect("analyze");
        assert!(!report.audit_passed());
        assert!(report.sections[0]
            .violations
            .iter()
            .any(|v| v.contains("hop spans vs cluster redirected")));
    }

    #[test]
    fn flight_dump_sections_skip_the_audit() {
        // A ring snapshot legitimately holds an end without its start.
        let rec = Arc::new(RecorderSink::new());
        let obs = Obs::new(Arc::clone(&rec) as Arc<dyn vod_obs::Sink>);
        let trace = TraceId::derive(3, 2);
        obs.span_end(
            Instant::ZERO,
            trace,
            SpanId::derive(trace, SEQ_REQUEST),
            SpanStatus::Ok,
        );
        let src = format!(
            "{{\"kind\":\"flight_dump\",\"reason\":\"underflow\"}}\n{}",
            rec.snapshot().export_jsonl()
        );
        let report = analyze(&src, 3).expect("analyze");
        assert!(report.audit_passed());
        assert!(!report.sections[0].audited);
    }

    #[test]
    fn schema_checker_rejects_malformed_lines() {
        let errs =
            check_schema("{\"kind\":\"span_start\",\"t\":1.0}\nnot json\n").expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("16-hex")));
        assert!(errs.iter().any(|e| e.contains("not JSON")));
    }

    #[test]
    fn empty_trace_detection_ignores_blank_lines_only() {
        assert!(is_empty_trace(""));
        assert!(is_empty_trace("\n\n  \n\t\n"));
        assert!(!is_empty_trace(
            "{\"kind\":\"experiment\",\"name\":\"t\"}\n"
        ));
        assert!(!is_empty_trace("\n\ngarbage\n"));
    }

    #[test]
    fn render_mentions_audit_verdict() {
        let src = format!(
            "{{\"kind\":\"experiment\",\"name\":\"t\"}}\n{}",
            lifecycle_jsonl()
        );
        let report = analyze(&src, 1).expect("analyze");
        let text = render(&report);
        assert!(text.contains("invariant audit: OK"));
        assert!(text.contains("invariant audit OK"));
    }
}
