//! The allocation budget of the steady-state hot loop.
//!
//! A counting global allocator wraps [`System`] and tallies every
//! `alloc`/`realloc`. The test warms an engine into steady state (all
//! streams admitted, scratch vectors and heap capacities grown), then
//! advances simulated time across a window of pure service cycles and
//! asserts the window allocated **nothing** (static scheme) or within a
//! tiny amortised bound (dynamic scheme, whose audit log may grow).
//!
//! Meaningful only in release mode: debug builds run the engine's
//! shadow-scan `debug_assert!`s, which are allowed to allocate. The test
//! is a no-op under `debug_assertions` so plain `cargo test` stays
//! green; CI runs it with `cargo test --release`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vod_core::SchemeKind;
use vod_sched::SchedulingMethod;
use vod_sim::{DiskEngine, EngineConfig};
use vod_types::{DiskId, Instant, Seconds, VideoId};
use vod_workload::Arrival;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Drives `streams` arrivals into a fresh engine, warms it for
/// `warm_s` simulated seconds, then measures allocations across a
/// `window_s` steady-state window. Returns `(allocs_in_window, cycles)`
/// where `cycles` is the whole run's cycle count (a sanity floor that
/// the window actually contained service cycles).
fn measure(scheme: SchemeKind, streams: u64, warm_s: f64, window_s: f64) -> (u64, u64) {
    let cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, scheme);
    let mut engine = DiskEngine::new(cfg).expect("paper config is valid");
    // All viewings outlast the window: the measured stretch is pure
    // cycle service — no arrivals, no departures, no pool churn.
    for i in 0..streams {
        engine.offer(&Arrival {
            at: Instant::ZERO,
            disk: DiskId::new(0),
            video: VideoId::new(i % 8),
            viewing: Seconds::from_secs(warm_s + window_s + 600.0),
        });
    }
    engine.advance_to(Instant::from_secs(warm_s));
    let before = allocations();
    engine.advance_to(Instant::from_secs(warm_s + window_s));
    let in_window = allocations() - before;
    let stats = engine.finish();
    assert_eq!(
        stats.underflows, 0,
        "{scheme:?}: steady state must not underflow"
    );
    (in_window, stats.cycles)
}

#[test]
fn static_steady_state_cycles_are_allocation_free() {
    if cfg!(debug_assertions) {
        eprintln!("alloc_budget: skipped (debug build runs allocating shadow-scan asserts)");
        return;
    }
    let (allocs, cycles) = measure(SchemeKind::Static, 20, 120.0, 60.0);
    assert!(
        cycles > 100,
        "window must span real service cycles, got {cycles}"
    );
    assert_eq!(
        allocs, 0,
        "static steady-state window performed {allocs} heap allocations; the hot loop must not allocate"
    );
}

#[test]
fn dynamic_steady_state_cycles_stay_within_the_amortised_budget() {
    if cfg!(debug_assertions) {
        eprintln!("alloc_budget: skipped (debug build runs allocating shadow-scan asserts)");
        return;
    }
    // The dynamic scheme's estimator memo and table cache make its
    // steady-state cycle allocation-free too; the only permitted heap
    // traffic is amortised growth of long-lived containers (audit log,
    // due heap) — a handful of reallocs across thousands of cycles.
    let (allocs, cycles) = measure(SchemeKind::Dynamic, 20, 120.0, 60.0);
    assert!(
        cycles > 100,
        "window must span real service cycles, got {cycles}"
    );
    assert!(
        allocs <= 8,
        "dynamic steady-state window performed {allocs} heap allocations (budget 8)"
    );
}
