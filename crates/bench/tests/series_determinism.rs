//! Acceptance bar for the time-series telemetry layer, mirroring the
//! tracing one in `trace_nonperturbation.rs`:
//!
//! 1. Across the full 18-cell bench matrix (compressed scale), a run
//!    with series sampling attached produces `DiskRunStats`
//!    bit-identical to a detached run — sampling reads state the engine
//!    already maintains and is emission-gated exactly like spans.
//! 2. The sampled series themselves are deterministic: a cluster run
//!    exports byte-identical series JSONL whatever the `--jobs` count.

use std::sync::Arc;

use vod_bench::cluster::cluster_engine_config;
use vod_bench::BenchMode;
use vod_cluster::{Cluster, ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_obs::timeseries::{engine_series, SeriesRecorder};
use vod_sim::DiskEngine;
use vod_types::Seconds;
use vod_workload::{generate, multi_movie, MultiMovieConfig, WorkloadConfig};

#[test]
fn full_matrix_stats_are_bit_identical_with_series_sampling() {
    let cells = BenchMode::Full.cells();
    assert_eq!(cells.len(), 18, "the paper matrix is 18 cells");

    let mut sampled_points_total = 0usize;
    for (scheme, method, theta) in cells {
        let mut wl_cfg = WorkloadConfig::paper_single_disk(theta, 60.0);
        wl_cfg.duration = Seconds::from_minutes(30.0);
        wl_cfg.peak = Seconds::from_minutes(15.0);
        wl_cfg.max_viewing = Seconds::from_minutes(10.0);
        let wl = generate(&wl_cfg, 1).expect("valid workload config");

        let cfg = vod_sim::EngineConfig::paper(method, scheme);
        let bare = DiskEngine::new(cfg.clone())
            .expect("paper config is valid")
            .run(&wl.arrivals);

        let recorder = SeriesRecorder::new("engine");
        let mut engine = DiskEngine::new(cfg).expect("paper config is valid");
        engine.set_series_recorder(&recorder);
        let sampled = engine.run(&wl.arrivals);

        assert_eq!(
            bare,
            sampled,
            "({scheme:?} / {} / θ = {theta}): series sampling perturbed the run",
            method.label()
        );
        assert_eq!(
            bare.peak_memory.as_f64().to_bits(),
            sampled.peak_memory.as_f64().to_bits(),
            "({scheme:?} / {} / θ = {theta}): peak memory drifted",
            method.label()
        );

        let series = recorder.snapshot();
        let names: Vec<&str> = series.iter().map(|s| s.name()).collect();
        for expected in [
            engine_series::POOL_USED_BITS,
            engine_series::ACTIVE_STREAMS,
            engine_series::ADMISSION_HEADROOM,
            engine_series::DEFERRAL_QUEUE_DEPTH,
            engine_series::CYCLE_SERVICE_S,
        ] {
            assert!(
                names.contains(&expected),
                "({scheme:?} / {} / θ = {theta}): series `{expected}` missing, have {names:?}",
                method.label()
            );
        }
        sampled_points_total += series.iter().map(|s| s.points().len()).sum::<usize>();
    }
    assert!(
        sampled_points_total > 0,
        "the sampled runs must actually have recorded points"
    );
}

/// Runs one small cluster cell with series recorders attached and
/// returns the full series JSONL export (cluster scope, then nodes).
fn cluster_series_jsonl(jobs: usize) -> String {
    let movies = 8;
    let cfg = ClusterConfig {
        nodes: 2,
        engine: cluster_engine_config(),
        movies,
        movie_theta: 0.271,
        placement: PlacementPolicy::ReplicatedHot {
            replicas: 2,
            hot_movies: 2,
        },
        dispatch: DispatchPolicy::MostHeadroom,
        seed: 1,
    };
    let mut wl_cfg = MultiMovieConfig::paper_cluster(movies, 0.271, 300.0);
    wl_cfg.duration = Seconds::from_hours(1.0);
    wl_cfg.peak = Seconds::from_hours(0.5);
    wl_cfg.profile_theta = 0.4;
    let wl = multi_movie(&wl_cfg, 1).expect("valid workload config");

    let cluster_rec = SeriesRecorder::new("cluster");
    let node_recs: Vec<Arc<SeriesRecorder>> = (0..2)
        .map(|i| Arc::new(SeriesRecorder::new(&format!("node{i}"))))
        .collect();
    let mut cluster =
        Cluster::with_observer(cfg, vod_obs::Obs::null()).expect("valid cluster config");
    cluster.set_series_recorders(&cluster_rec, &node_recs);
    let report = cluster.run_with_jobs(&wl.arrivals, jobs);
    assert!(report.dispatched > 0);

    let mut out = cluster_rec.export_jsonl();
    for rec in &node_recs {
        out.push_str(&rec.export_jsonl());
    }
    out
}

#[test]
fn cluster_series_export_is_byte_identical_across_job_counts() {
    let seq = cluster_series_jsonl(1);
    let par = cluster_series_jsonl(2);
    assert!(!seq.is_empty(), "the run must record series");
    assert!(
        seq.contains("\"scope\":\"cluster\"") && seq.contains("imbalance_ratio"),
        "cluster-scope series expected: {}",
        &seq[..seq.len().min(400)]
    );
    assert!(
        seq.contains("\"scope\":\"node1\""),
        "per-node series expected"
    );
    assert_eq!(
        seq, par,
        "series export must not depend on the worker count"
    );
}
