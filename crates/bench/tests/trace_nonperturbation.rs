//! Acceptance bar for the tracing layer: across the full 18-cell bench
//! matrix (2 schemes × 3 methods × 3 θ, here at a compressed scale so
//! the suite stays fast), a fully traced run produces `DiskRunStats`
//! bit-identical to a detached run. Span assignment is data flow the
//! engine computes unconditionally; only *emission* is gated on the
//! sink, so attaching a recorder must not move a single bit.

use std::sync::Arc;

use vod_bench::BenchMode;
use vod_obs::{EventKind, Obs, RecorderSink, Sink};
use vod_sim::{DiskEngine, EngineConfig};
use vod_workload::{generate, WorkloadConfig};

#[test]
fn full_matrix_stats_are_bit_identical_with_tracing() {
    let cells = BenchMode::Full.cells();
    assert_eq!(cells.len(), 18, "the paper matrix is 18 cells");

    let mut span_starts_total = 0u64;
    for (scheme, method, theta) in cells {
        // Half a simulated hour of short viewings: enough load for
        // admissions, deferrals, and per-cycle service spans, while the
        // full event stream (spans included) fits the recorder ring.
        let mut wl_cfg = WorkloadConfig::paper_single_disk(theta, 60.0);
        wl_cfg.duration = vod_types::Seconds::from_minutes(30.0);
        wl_cfg.peak = vod_types::Seconds::from_minutes(15.0);
        wl_cfg.max_viewing = vod_types::Seconds::from_minutes(10.0);
        let wl = generate(&wl_cfg, 1).expect("valid workload config");

        let cfg = EngineConfig::paper(method, scheme);
        let bare = DiskEngine::new(cfg.clone())
            .expect("paper config is valid")
            .run(&wl.arrivals);

        let recorder = Arc::new(RecorderSink::new());
        let traced =
            DiskEngine::with_observer(cfg, Obs::new(Arc::clone(&recorder) as Arc<dyn Sink>))
                .expect("paper config is valid")
                .run(&wl.arrivals);

        assert_eq!(
            bare,
            traced,
            "({scheme:?} / {} / θ = {theta}): tracing perturbed the run",
            method.label()
        );
        assert_eq!(
            bare.peak_memory.as_f64().to_bits(),
            traced.peak_memory.as_f64().to_bits(),
            "({scheme:?} / {} / θ = {theta}): peak memory drifted",
            method.label()
        );

        let snap = recorder.snapshot();
        assert_eq!(snap.spans_dropped(), 0, "ring must hold the whole run");
        span_starts_total += snap.counter(EventKind::SpanStart);
    }
    assert!(
        span_starts_total > 0,
        "the traced runs must actually have emitted spans"
    );
}
