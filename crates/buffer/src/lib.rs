//! Shared buffer-pool substrate for VOD servers.
//!
//! §2.1 of the paper fixes the memory model this crate implements:
//!
//! * every active stream owns one logical buffer, filled once per service
//!   period by the server;
//! * streams consume at their consumption rate `CR` and release memory the
//!   moment data is consumed (*use-it-and-toss-it*), so buffers share one
//!   physical pool;
//! * memory is handed out by the **page**, but pages need not be physically
//!   contiguous (a buffer is a logically contiguous chain of pages), so
//!   sharing causes no fragmentation. The paper's analysis then idealizes
//!   pages to **variable-length** (bit-granular) allocation, noting the
//!   difference is negligible because pages are much smaller than buffers.
//!
//! [`BufferPool`] supports both granularities:
//! [`Granularity::Variable`] reproduces the analysis exactly, while
//! [`Granularity::Pages`] rounds each buffer's footprint up to whole pages
//! so the idealization itself can be measured (see the pool tests and the
//! `ablation` benches).
//!
//! The pool is internally synchronized (`parking_lot::Mutex`), so a
//! threaded server can share one pool across admission and service paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{BufferPool, Granularity, PoolConfig, PoolStats};
