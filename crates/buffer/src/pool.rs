//! The shared buffer pool.

use std::collections::HashMap;

use parking_lot::Mutex;
use vod_obs::metrics::{CTR_POOL_FILLS, GAUGE_POOL_PEAK, GAUGE_POOL_USED};
use vod_obs::{Counter, Event, EventKind, Gauge, Obs};
use vod_types::{Bits, ConfigError, Instant, RequestId, VodError};

/// Allocation granularity of the pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Granularity {
    /// Bit-granular, variable-length allocation — the idealization the
    /// paper's analysis uses (§2.1).
    Variable,
    /// Page-granular allocation: each buffer's footprint is rounded up to
    /// whole pages of the given size.
    Pages {
        /// Size of one page.
        page: Bits,
    },
}

/// Pool configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoolConfig {
    /// Physical memory available, or `None` for an unbounded pool (used
    /// when the experiment only *measures* memory instead of limiting it).
    pub capacity: Option<Bits>,
    /// Allocation granularity.
    pub granularity: Granularity,
}

impl PoolConfig {
    /// An unbounded, variable-granularity pool — the configuration the
    /// paper's analysis assumes.
    #[must_use]
    pub fn unbounded() -> Self {
        PoolConfig {
            capacity: None,
            granularity: Granularity::Variable,
        }
    }

    /// A bounded, variable-granularity pool.
    #[must_use]
    pub fn bounded(capacity: Bits) -> Self {
        PoolConfig {
            capacity: Some(capacity),
            granularity: Granularity::Variable,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-positive capacities or page sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(cap) = self.capacity {
            if !cap.is_valid_size() || cap.is_zero() {
                return Err(ConfigError::new("pool_capacity", "must be positive"));
            }
        }
        if let Granularity::Pages { page } = self.granularity {
            if !page.is_valid_size() || page.is_zero() {
                return Err(ConfigError::new("page_size", "must be positive"));
            }
        }
        Ok(())
    }
}

/// A snapshot of pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Memory currently held by all buffers (after granularity rounding).
    pub used: Bits,
    /// High-water mark of `used` since the last [`BufferPool::reset_peak`].
    pub peak: Bits,
    /// Number of `fill` operations performed.
    pub fills: u64,
    /// Number of registered (active) streams.
    pub streams: usize,
    /// Number of underflow events recorded by `consume`.
    pub underflows: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Account {
    /// Unconsumed data held for the stream.
    data: Bits,
    /// Physical footprint charged to the pool (≥ `data` under page mode).
    held: Bits,
}

#[derive(Debug, Default)]
struct Inner {
    accounts: HashMap<RequestId, Account>,
    used: Bits,
    peak: Bits,
    fills: u64,
    underflows: u64,
    /// Simulated clock stamped onto emitted events (the pool itself has
    /// no notion of time; the driver advances it via [`BufferPool::set_time`]).
    now: Instant,
}

/// The shared memory pool backing every stream's buffer.
///
/// All sizes are logical ([`Bits`]); the pool is an accounting structure,
/// not a byte arena — the simulator and a real server alike only need the
/// occupancy numbers, which is also all the paper's theorems speak about.
#[derive(Debug)]
pub struct BufferPool {
    config: PoolConfig,
    inner: Mutex<Inner>,
    obs: Obs,
    /// Metric handles resolved once at construction (no-ops when the
    /// observer carries no registry); updated under the same lock
    /// that guards the accounting they mirror.
    m_used: Gauge,
    m_peak: Gauge,
    m_fills: Counter,
}

impl BufferPool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid configuration.
    pub fn new(config: PoolConfig) -> Result<Self, ConfigError> {
        Self::with_observer(config, Obs::null())
    }

    /// Creates a pool with an observability handle attached;
    /// [`Event::PoolOccupancy`] is emitted at every new occupancy
    /// high-water mark, stamped with the clock last set via
    /// [`Self::set_time`]. Emission never alters pool accounting.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid configuration.
    pub fn with_observer(config: PoolConfig, obs: Obs) -> Result<Self, ConfigError> {
        config.validate()?;
        let metrics = obs.metrics();
        let m_used = metrics.gauge(GAUGE_POOL_USED);
        let m_peak = metrics.gauge(GAUGE_POOL_PEAK);
        let m_fills = metrics.counter(CTR_POOL_FILLS);
        Ok(BufferPool {
            config,
            inner: Mutex::new(Inner::default()),
            obs,
            m_used,
            m_peak,
            m_fills,
        })
    }

    /// Advances the simulated clock stamped onto emitted events. The pool
    /// has no clock of its own — wall time would break the determinism
    /// guarantee — so the driver pushes it in.
    pub fn set_time(&self, now: Instant) {
        self.inner.lock().now = now;
    }

    /// The pool's configuration.
    #[must_use]
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Registers a new stream with an empty buffer.
    ///
    /// # Errors
    ///
    /// Returns [`VodError::UnknownRequest`]-symmetric failure — registering
    /// the same stream twice is a caller bug and reported as `Config`.
    pub fn register(&self, request: RequestId) -> Result<(), VodError> {
        let mut inner = self.inner.lock();
        if inner.accounts.contains_key(&request) {
            return Err(ConfigError::new(
                "request",
                format!("{request} already registered with the pool"),
            )
            .into());
        }
        inner.accounts.insert(request, Account::default());
        Ok(())
    }

    /// Removes a stream, releasing everything it held.
    ///
    /// # Errors
    ///
    /// Returns [`VodError::UnknownRequest`] for unregistered streams.
    pub fn unregister(&self, request: RequestId) -> Result<(), VodError> {
        let mut inner = self.inner.lock();
        let account = inner
            .accounts
            .remove(&request)
            .ok_or(VodError::UnknownRequest(request))?;
        inner.used -= account.held;
        inner.used = inner.used.clamp_non_negative();
        self.m_used.set(inner.used.as_f64());
        Ok(())
    }

    /// Adds `amount` bits of freshly read data to the stream's buffer,
    /// acquiring memory from the pool.
    ///
    /// # Errors
    ///
    /// * [`VodError::UnknownRequest`] — stream not registered.
    /// * [`VodError::OutOfMemory`] — a bounded pool cannot cover the new
    ///   footprint; the fill is not applied.
    pub fn fill(&self, request: RequestId, amount: Bits) -> Result<(), VodError> {
        if !amount.is_valid_size() {
            return Err(ConfigError::new("amount", "must be a valid size").into());
        }
        let mut inner = self.inner.lock();
        let account = *inner
            .accounts
            .get(&request)
            .ok_or(VodError::UnknownRequest(request))?;
        let new_data = account.data + amount;
        let new_held = self.footprint(new_data);
        let delta = new_held - account.held;
        if let Some(cap) = self.config.capacity {
            if inner.used + delta > cap {
                return Err(VodError::OutOfMemory {
                    requested: delta,
                    available: (cap - inner.used).clamp_non_negative(),
                });
            }
        }
        let entry = inner
            .accounts
            .get_mut(&request)
            .expect("account existence checked above");
        entry.data = new_data;
        entry.held = new_held;
        inner.used += delta;
        inner.fills += 1;
        self.m_used.set(inner.used.as_f64());
        self.m_peak.set_max(inner.used.as_f64());
        self.m_fills.inc();
        if inner.used > inner.peak {
            inner.peak = inner.used;
            self.obs
                .emit_with(EventKind::PoolOccupancy, || Event::PoolOccupancy {
                    at: inner.now,
                    used: inner.used,
                    peak: inner.peak,
                    streams: inner.accounts.len(),
                });
        }
        Ok(())
    }

    /// Consumes `amount` bits from the stream's buffer, releasing memory
    /// back to the pool (use-it-and-toss-it).
    ///
    /// On underflow the buffer is drained to zero, the event is counted,
    /// and [`VodError::BufferUnderflow`] reports the deficit — the caller
    /// (the simulator's continuity checker) decides whether that is fatal.
    ///
    /// # Errors
    ///
    /// * [`VodError::UnknownRequest`] — stream not registered.
    /// * [`VodError::BufferUnderflow`] — the stream consumed past its data.
    pub fn consume(&self, request: RequestId, amount: Bits) -> Result<(), VodError> {
        if !amount.is_valid_size() {
            return Err(ConfigError::new("amount", "must be a valid size").into());
        }
        let mut inner = self.inner.lock();
        let account = *inner
            .accounts
            .get(&request)
            .ok_or(VodError::UnknownRequest(request))?;
        let deficit = (amount - account.data).clamp_non_negative();
        let new_data = (account.data - amount).clamp_non_negative();
        let new_held = self.footprint(new_data);
        let delta = account.held - new_held;
        {
            let entry = inner
                .accounts
                .get_mut(&request)
                .expect("account existence checked above");
            entry.data = new_data;
            entry.held = new_held;
        }
        inner.used -= delta;
        inner.used = inner.used.clamp_non_negative();
        self.m_used.set(inner.used.as_f64());
        if !deficit.is_zero() {
            inner.underflows += 1;
            return Err(VodError::BufferUnderflow { request, deficit });
        }
        Ok(())
    }

    /// Unconsumed data currently buffered for a stream.
    #[must_use]
    pub fn data_level(&self, request: RequestId) -> Option<Bits> {
        self.inner.lock().accounts.get(&request).map(|a| a.data)
    }

    /// Current total occupancy.
    #[must_use]
    pub fn used(&self) -> Bits {
        self.inner.lock().used
    }

    /// Free space, or `None` for an unbounded pool.
    #[must_use]
    pub fn free(&self) -> Option<Bits> {
        self.config
            .capacity
            .map(|cap| (cap - self.inner.lock().used).clamp_non_negative())
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            used: inner.used,
            peak: inner.peak,
            fills: inner.fills,
            streams: inner.accounts.len(),
            underflows: inner.underflows,
        }
    }

    /// Resets the high-water mark to the current occupancy.
    pub fn reset_peak(&self) {
        let mut inner = self.inner.lock();
        inner.peak = inner.used;
    }

    fn footprint(&self, data: Bits) -> Bits {
        match self.config.granularity {
            Granularity::Variable => data,
            Granularity::Pages { page } => {
                if data.is_zero() {
                    Bits::ZERO
                } else {
                    let pages = (data.as_f64() / page.as_f64()).ceil();
                    page * pages
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbounded() -> BufferPool {
        BufferPool::new(PoolConfig::unbounded()).expect("valid config")
    }

    const R0: RequestId = RequestId::new(0);
    const R1: RequestId = RequestId::new(1);

    #[test]
    fn register_fill_consume_lifecycle() {
        let pool = unbounded();
        pool.register(R0).expect("fresh stream");
        pool.fill(R0, Bits::new(1000.0)).expect("unbounded fill");
        assert_eq!(pool.data_level(R0), Some(Bits::new(1000.0)));
        assert_eq!(pool.used(), Bits::new(1000.0));
        pool.consume(R0, Bits::new(400.0)).expect("enough data");
        assert_eq!(pool.data_level(R0), Some(Bits::new(600.0)));
        assert_eq!(pool.used(), Bits::new(600.0));
        pool.unregister(R0).expect("registered");
        assert_eq!(pool.used(), Bits::ZERO);
        assert_eq!(pool.data_level(R0), None);
    }

    #[test]
    fn duplicate_registration_fails() {
        let pool = unbounded();
        pool.register(R0).expect("fresh");
        assert!(pool.register(R0).is_err());
    }

    #[test]
    fn operations_on_unknown_stream_fail() {
        let pool = unbounded();
        assert_eq!(
            pool.fill(R0, Bits::new(1.0)),
            Err(VodError::UnknownRequest(R0))
        );
        assert_eq!(
            pool.consume(R0, Bits::new(1.0)),
            Err(VodError::UnknownRequest(R0))
        );
        assert_eq!(pool.unregister(R0), Err(VodError::UnknownRequest(R0)));
    }

    #[test]
    fn underflow_is_reported_and_counted() {
        let pool = unbounded();
        pool.register(R0).expect("fresh");
        pool.fill(R0, Bits::new(100.0)).expect("fill");
        let err = pool.consume(R0, Bits::new(150.0)).expect_err("underflow");
        match err {
            VodError::BufferUnderflow { request, deficit } => {
                assert_eq!(request, R0);
                assert_eq!(deficit, Bits::new(50.0));
            }
            other => panic!("expected underflow, got {other}"),
        }
        assert_eq!(pool.data_level(R0), Some(Bits::ZERO));
        assert_eq!(pool.stats().underflows, 1);
    }

    #[test]
    fn bounded_pool_rejects_over_capacity_fill() {
        let pool = BufferPool::new(PoolConfig::bounded(Bits::new(1000.0))).expect("valid");
        pool.register(R0).expect("fresh");
        pool.fill(R0, Bits::new(800.0)).expect("fits");
        let err = pool.fill(R0, Bits::new(300.0)).expect_err("over capacity");
        match err {
            VodError::OutOfMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, Bits::new(300.0));
                assert_eq!(available, Bits::new(200.0));
            }
            other => panic!("expected OutOfMemory, got {other}"),
        }
        // Failed fill must not change state.
        assert_eq!(pool.data_level(R0), Some(Bits::new(800.0)));
        assert_eq!(pool.used(), Bits::new(800.0));
        assert_eq!(pool.free(), Some(Bits::new(200.0)));
    }

    #[test]
    fn memory_freed_by_one_stream_is_usable_by_another() {
        let pool = BufferPool::new(PoolConfig::bounded(Bits::new(1000.0))).expect("valid");
        pool.register(R0).expect("fresh");
        pool.register(R1).expect("fresh");
        pool.fill(R0, Bits::new(900.0)).expect("fits");
        assert!(pool.fill(R1, Bits::new(200.0)).is_err());
        pool.consume(R0, Bits::new(500.0)).expect("enough data");
        pool.fill(R1, Bits::new(200.0))
            .expect("released memory is shared");
    }

    #[test]
    fn page_granularity_rounds_up() {
        let pool = BufferPool::new(PoolConfig {
            capacity: None,
            granularity: Granularity::Pages {
                page: Bits::new(64.0),
            },
        })
        .expect("valid");
        pool.register(R0).expect("fresh");
        pool.fill(R0, Bits::new(100.0)).expect("fill");
        // 100 bits of data occupy 2 × 64-bit pages.
        assert_eq!(pool.used(), Bits::new(128.0));
        pool.consume(R0, Bits::new(40.0)).expect("enough");
        // 60 bits left -> 1 page.
        assert_eq!(pool.used(), Bits::new(64.0));
        pool.consume(R0, Bits::new(60.0)).expect("exact drain");
        assert_eq!(pool.used(), Bits::ZERO);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let pool = unbounded();
        pool.register(R0).expect("fresh");
        pool.fill(R0, Bits::new(500.0)).expect("fill");
        pool.consume(R0, Bits::new(400.0)).expect("enough");
        pool.fill(R0, Bits::new(100.0)).expect("fill");
        let stats = pool.stats();
        assert_eq!(stats.peak, Bits::new(500.0));
        assert_eq!(stats.used, Bits::new(200.0));
        assert_eq!(stats.fills, 2);
        assert_eq!(stats.streams, 1);
        pool.reset_peak();
        assert_eq!(pool.stats().peak, Bits::new(200.0));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(BufferPool::new(PoolConfig::bounded(Bits::ZERO)).is_err());
        assert!(BufferPool::new(PoolConfig {
            capacity: None,
            granularity: Granularity::Pages { page: Bits::ZERO },
        })
        .is_err());
    }

    #[test]
    fn invalid_amounts_are_rejected() {
        let pool = unbounded();
        pool.register(R0).expect("fresh");
        assert!(pool.fill(R0, Bits::new(-5.0)).is_err());
        assert!(pool.consume(R0, Bits::new(f64::NAN)).is_err());
    }

    #[test]
    fn pool_emits_occupancy_high_water_events() {
        let rec = std::sync::Arc::new(vod_obs::RecorderSink::new());
        let pool = BufferPool::with_observer(PoolConfig::unbounded(), Obs::new(rec.clone()))
            .expect("valid config");
        pool.register(R0).expect("fresh");
        pool.set_time(Instant::from_secs(5.0));
        pool.fill(R0, Bits::new(100.0)).expect("fill"); // new peak
        pool.consume(R0, Bits::new(50.0)).expect("enough");
        pool.fill(R0, Bits::new(20.0)).expect("fill"); // below peak: no event
        pool.fill(R0, Bits::new(80.0)).expect("fill"); // new peak
        let snap = rec.snapshot();
        assert_eq!(snap.counter(EventKind::PoolOccupancy), 2);
        assert!(matches!(
            snap.events()[0],
            Event::PoolOccupancy { at, streams: 1, .. } if at == Instant::from_secs(5.0)
        ));
    }

    #[test]
    fn pool_publishes_gauges_and_fill_counter() {
        use vod_obs::metrics::{Metrics, MetricsRegistry};
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let obs = Obs::null().with_metrics(Metrics::new(std::sync::Arc::clone(&reg)));
        let pool = BufferPool::with_observer(PoolConfig::unbounded(), obs).expect("valid config");
        pool.register(R0).expect("fresh");
        pool.fill(R0, Bits::new(100.0)).expect("fill");
        pool.fill(R0, Bits::new(50.0)).expect("fill");
        pool.consume(R0, Bits::new(120.0)).expect("enough");
        let snap = reg.snapshot();
        assert_eq!(snap.counter(CTR_POOL_FILLS), Some(2));
        assert_eq!(snap.gauge(GAUGE_POOL_USED), Some(30.0));
        assert_eq!(snap.gauge(GAUGE_POOL_PEAK), Some(150.0));
        // Unregister releases everything; the gauge follows.
        pool.unregister(R0).expect("registered");
        assert_eq!(reg.snapshot().gauge(GAUGE_POOL_USED), Some(0.0));
        // The peak gauge is a high-water mark and stays put.
        assert_eq!(reg.snapshot().gauge(GAUGE_POOL_PEAK), Some(150.0));
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(unbounded());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let r = RequestId::new(t);
                pool.register(r).expect("distinct ids");
                for _ in 0..100 {
                    pool.fill(r, Bits::new(10.0)).expect("unbounded");
                    pool.consume(r, Bits::new(10.0)).expect("just filled");
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(pool.used(), Bits::ZERO);
        assert_eq!(pool.stats().fills, 400);
    }
}
