//! Property tests for the buffer pool: accounting conservation across
//! arbitrary operation sequences.

use proptest::prelude::*;
use vod_buffer::{BufferPool, Granularity, PoolConfig};
use vod_types::{Bits, RequestId};

#[derive(Debug, Clone)]
enum Op {
    Register(u8),
    Unregister(u8),
    Fill(u8, u32),
    Consume(u8, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Register),
        (0u8..8).prop_map(Op::Unregister),
        ((0u8..8), (0u32..2_000_000)).prop_map(|(id, amt)| Op::Fill(id, amt)),
        ((0u8..8), (0u32..2_000_000)).prop_map(|(id, amt)| Op::Consume(id, amt)),
    ]
}

/// A reference model: per-stream data levels, independently tracked.
fn run_model(pool: &BufferPool, ops: &[Op], page: Option<f64>) {
    let mut model: std::collections::HashMap<u8, f64> = std::collections::HashMap::new();
    let footprint = |data: f64| match page {
        None => data,
        Some(p) => {
            if data == 0.0 {
                0.0
            } else {
                (data / p).ceil() * p
            }
        }
    };
    let mut max_seen: f64 = 0.0;
    for op in ops {
        match *op {
            Op::Register(id) => {
                let res = pool.register(RequestId::new(u64::from(id)));
                if let std::collections::hash_map::Entry::Vacant(e) = model.entry(id) {
                    assert!(res.is_ok());
                    e.insert(0.0);
                } else {
                    assert!(res.is_err(), "duplicate registration must fail");
                }
            }
            Op::Unregister(id) => {
                let res = pool.unregister(RequestId::new(u64::from(id)));
                assert_eq!(res.is_ok(), model.remove(&id).is_some());
            }
            Op::Fill(id, amt) => {
                let res = pool.fill(RequestId::new(u64::from(id)), Bits::new(f64::from(amt)));
                if let Some(level) = model.get_mut(&id) {
                    assert!(res.is_ok(), "unbounded fill cannot fail");
                    *level += f64::from(amt);
                } else {
                    assert!(res.is_err(), "fill of unknown stream must fail");
                }
            }
            Op::Consume(id, amt) => {
                let res = pool.consume(RequestId::new(u64::from(id)), Bits::new(f64::from(amt)));
                if let Some(level) = model.get_mut(&id) {
                    if f64::from(amt) <= *level + 1e-9 {
                        assert!(res.is_ok(), "covered consumption cannot underflow");
                        *level -= f64::from(amt);
                    } else {
                        assert!(res.is_err(), "over-consumption must report underflow");
                        *level = 0.0;
                    }
                } else {
                    assert!(res.is_err());
                }
            }
        }
        // Conservation: pool usage equals the model's footprints.
        let expected: f64 = model.values().map(|&d| footprint(d)).sum();
        let used = pool.used().as_f64();
        assert!(
            (used - expected).abs() < 1e-6 * expected.max(1.0),
            "pool used {used} != model {expected}"
        );
        max_seen = max_seen.max(used);
        assert!(pool.stats().peak.as_f64() >= max_seen - 1e-6);
        assert_eq!(pool.stats().streams, model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn variable_granularity_conserves_accounting(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let pool = BufferPool::new(PoolConfig::unbounded()).expect("valid");
        run_model(&pool, &ops, None);
    }

    #[test]
    fn page_granularity_conserves_accounting(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let page = 4096.0 * 8.0;
        let pool = BufferPool::new(PoolConfig {
            capacity: None,
            granularity: Granularity::Pages { page: Bits::new(page) },
        })
        .expect("valid");
        run_model(&pool, &ops, Some(page));
    }

    #[test]
    fn bounded_pool_never_exceeds_capacity(
        ops in prop::collection::vec(op_strategy(), 1..120),
        cap in 1_000_000u32..10_000_000,
    ) {
        let capacity = Bits::new(f64::from(cap));
        let pool = BufferPool::new(PoolConfig::bounded(capacity)).expect("valid");
        for op in &ops {
            match *op {
                Op::Register(id) => { let _ = pool.register(RequestId::new(u64::from(id))); }
                Op::Unregister(id) => { let _ = pool.unregister(RequestId::new(u64::from(id))); }
                Op::Fill(id, amt) => { let _ = pool.fill(RequestId::new(u64::from(id)), Bits::new(f64::from(amt))); }
                Op::Consume(id, amt) => { let _ = pool.consume(RequestId::new(u64::from(id)), Bits::new(f64::from(amt))); }
            }
            prop_assert!(pool.used() <= capacity);
            prop_assert!(pool.free().expect("bounded") <= capacity);
        }
    }
}
