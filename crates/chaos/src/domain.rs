//! Failure domains: named groups of nodes (racks, zones) that fail as a
//! unit, layered over the placement map.
//!
//! A [`DomainMap`] is pure data; [`DomainEvent`]s against it expand
//! deterministically into per-node [`FaultEvent`]s *before* a run starts
//! (see [`FaultSchedule::with_domains`]), so the runner stays a
//! per-node interpreter and every existing identity and equivalence
//! proof — empty schedule ≡ plain run, byte-identical replay at any job
//! count — carries over structurally: a domain schedule *is* a flat
//! schedule by the time the runner sees it.
//!
//! [`FaultEvent`]: crate::FaultEvent
//! [`FaultSchedule`]: crate::FaultSchedule
//! [`FaultSchedule::with_domains`]: crate::FaultSchedule::with_domains

use vod_types::Instant;

use crate::schedule::RejoinMode;

/// A named node → domain assignment. Domains may leave nodes unassigned
/// (a node outside every rack simply never receives domain faults), and
/// a node may belong to several overlapping domains (a rack and a zone).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainMap {
    /// `(name, member nodes)` pairs; members are sorted and deduplicated
    /// so expansion order is a pure function of the map.
    domains: Vec<(String, Vec<usize>)>,
}

impl DomainMap {
    /// The empty map: no domains, so domain events cannot be addressed
    /// and a schedule built over it is exactly a flat schedule.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a map from explicit `(name, nodes)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a message for an empty domain name, a duplicate name, or
    /// a domain with no members.
    pub fn from_domains<I, S>(pairs: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = (S, Vec<usize>)>,
        S: Into<String>,
    {
        let mut domains: Vec<(String, Vec<usize>)> = Vec::new();
        for (name, mut nodes) in pairs {
            let name = name.into();
            if name.is_empty() {
                return Err("domain name must be non-empty".to_string());
            }
            if domains.iter().any(|(n, _)| *n == name) {
                return Err(format!("duplicate domain `{name}`"));
            }
            nodes.sort_unstable();
            nodes.dedup();
            if nodes.is_empty() {
                return Err(format!("domain `{name}` has no member nodes"));
            }
            domains.push((name, nodes));
        }
        Ok(Self { domains })
    }

    /// The canonical rack layout: `racks` domains named `rack0`,
    /// `rack1`, …, with node `i` in rack `i mod racks` — the round-robin
    /// assignment a top-of-rack switch topology induces. Racks beyond
    /// the node count are omitted rather than left empty.
    #[must_use]
    pub fn racks(nodes: usize, racks: usize) -> Self {
        let racks = racks.clamp(1, nodes.max(1));
        let domains = (0..racks)
            .map(|r| {
                let members: Vec<usize> = (r..nodes).step_by(racks).collect();
                (format!("rack{r}"), members)
            })
            .filter(|(_, members)| !members.is_empty())
            .collect();
        Self { domains }
    }

    /// The member nodes of `name` (sorted), if the domain exists.
    #[must_use]
    pub fn nodes_of(&self, name: &str) -> Option<&[usize]> {
        self.domains
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nodes)| nodes.as_slice())
    }

    /// True when no domains are defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Number of domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Iterates `(name, nodes)` pairs in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[usize])> {
        self.domains
            .iter()
            .map(|(n, nodes)| (n.as_str(), nodes.as_slice()))
    }

    /// Largest node index any domain references (for validation against
    /// a cluster's node count).
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.domains
            .iter()
            .flat_map(|(_, nodes)| nodes.iter().copied())
            .max()
    }
}

/// A correlated fault against every node of one domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DomainFault {
    /// Every member node crashes (rack power loss).
    Crash,
    /// Every member node's disk slows by `factor` ≥ 1 (shared uplink
    /// congestion).
    Slow {
        /// Slowdown multiple (≥ 1.0).
        factor: f64,
    },
    /// Every member node returns to service.
    Rejoin {
        /// `None` defers to the run's [`crate::RecoveryPolicy`].
        mode: Option<RejoinMode>,
    },
}

/// One scheduled domain fault: which domain, what, when. Expansion
/// produces one per-node [`crate::FaultEvent`] per member at the same
/// instant, so members fail together and in node order.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainEvent {
    /// Simulated instant the correlated fault fires.
    pub at: Instant,
    /// Target domain name (must exist in the map at expansion time).
    pub domain: String,
    /// The fault applied to every member.
    pub fault: DomainFault,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racks_round_robin_and_cover_every_node() {
        let m = DomainMap::racks(5, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.nodes_of("rack0"), Some(&[0, 2, 4][..]));
        assert_eq!(m.nodes_of("rack1"), Some(&[1, 3][..]));
        assert_eq!(m.max_node(), Some(4));
        assert_eq!(m.nodes_of("rack2"), None);
    }

    #[test]
    fn more_racks_than_nodes_omits_empty_racks() {
        let m = DomainMap::racks(2, 8);
        assert_eq!(m.len(), 2);
        assert_eq!(m.nodes_of("rack0"), Some(&[0][..]));
        assert_eq!(m.nodes_of("rack1"), Some(&[1][..]));
    }

    #[test]
    fn explicit_domains_sort_and_reject_duplicates() {
        let m = DomainMap::from_domains([("zone-a", vec![3, 1, 1]), ("zone-b", vec![0])])
            .expect("valid domains");
        assert_eq!(m.nodes_of("zone-a"), Some(&[1, 3][..]));
        assert!(DomainMap::from_domains([("z", vec![0]), ("z", vec![1])])
            .unwrap_err()
            .contains("duplicate domain"));
        assert!(DomainMap::from_domains([("z", vec![])])
            .unwrap_err()
            .contains("no member nodes"));
        assert!(DomainMap::from_domains([("", vec![0])])
            .unwrap_err()
            .contains("non-empty"));
    }

    #[test]
    fn empty_map_is_empty() {
        let m = DomainMap::empty();
        assert!(m.is_empty());
        assert_eq!(m.max_node(), None);
        assert_eq!(m.iter().count(), 0);
    }
}
