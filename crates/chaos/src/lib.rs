//! Deterministic fault injection and failover for the VOD cluster.
//!
//! The paper's buffer-allocation machinery (BS_k tables, Assumption 1
//! admission, minimum-memory reservation) is exactly the state a video
//! server must rebuild or protect when hardware fails. This crate makes
//! that story testable: a seed- or script-driven [`FaultSchedule`]
//! injects typed faults — [`Fault::NodeCrash`], [`Fault::NodeSlow`],
//! [`Fault::MemoryPressure`], [`Fault::NodeRejoin`] — into a
//! [`vod_cluster::Cluster`] run, a [`FailoverPolicy`] decides what
//! happens to a crashed node's streams, and a [`RecoveryPolicy`] decides
//! how a rejoining node rebuilds its tables (warm shared-cache hit vs
//! cold rebuild — bit-identical tables, very different cost, which is
//! the paper's argument for precomputing BS_k offline).
//!
//! # Invariants
//!
//! * **Empty schedule = identity.** [`run_chaos`] drives the cluster
//!   through the same three steppable calls `Cluster::run` makes, so an
//!   empty schedule is the plain run by construction — byte-identical
//!   reports, not approximately equal ones.
//! * **Failover never bypasses admission.** Migrated and parked streams
//!   re-enter through the surviving nodes' own admission controllers
//!   (Assumption 1 included), so chaos runs keep the zero-underflow
//!   guarantee under arbitrary schedules (property-tested in `tests/`).
//! * **Deterministic degradation.** Every count in [`ChaosSummary`] is a
//!   pure function of `(config, trace, schedule)`; runs are
//!   byte-identical at any `--jobs`.
//!
//! Fault semantics lean on the paper's model: a disk that is `f`×
//! slower serves `N/f` streams (disk speed enters only through the
//! admission bound), so [`Fault::NodeSlow`] tightens admission capacity
//! rather than perturbing the service loop — strictly safe, never
//! underflow-inducing. [`Fault::MemoryPressure`] shrinks the memory
//! budget the reservation check admits against, for the same reason.
//! Partial faults extend the same equivalence below the node: a
//! [`Fault::DiskDegrade`] throttles one disk's share of the admission
//! bound and a [`Fault::DiskError`] maps an error rate `r` to a `1 − r`
//! capacity multiplier — deterministic, admission-only, underflow-free.
//!
//! Correlated failures are modelled by a [`DomainMap`] (racks/zones
//! layered over placement) whose [`DomainEvent`]s expand into flat
//! per-node schedules before the run starts, and recovery is
//! placement-aware: a node down past [`ChaosConfig::reseed_after`]
//! triggers re-replication of its movies onto the least-loaded
//! survivors, with parked streams re-admitted through the new replicas'
//! own admission controllers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod policy;
pub mod runner;
pub mod schedule;

pub use domain::{DomainEvent, DomainFault, DomainMap};
pub use policy::{FailoverPolicy, RecoveryPolicy};
pub use runner::{run_chaos, run_chaos_on, ChaosConfig, ChaosReport, ChaosSummary};
pub use schedule::{Fault, FaultEvent, FaultSchedule, RejoinMode};
