//! Failover and recovery policies: what happens to a crashed node's
//! streams, and how a rejoining node rebuilds its state.

use crate::schedule::RejoinMode;

/// What to do with the streams a crashed node was serving.
///
/// Every policy goes *through* the surviving nodes' own admission
/// controllers — failover never bypasses Assumption 1, so the zero
/// underflow guarantee holds under arbitrary fault schedules (the
/// property test in `tests/` pins this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Re-dispatch each interrupted stream (with its remaining viewing
    /// time) to the least-loaded sibling replica that would accept it
    /// now; park it in the cluster overflow FIFO when every sibling is
    /// saturated; drop it only when no sibling holds the video at all.
    Migrate,
    /// Park every interrupted stream in the overflow FIFO and let the
    /// normal retry path re-admit it when capacity (or the crashed node)
    /// comes back. Trades latency for load: no surviving node takes a
    /// thundering herd at crash time.
    Park,
    /// Drop every interrupted stream. The lower bound for availability
    /// and the upper bound for surviving-stream quality — the control
    /// arm the other two policies are measured against.
    Drop,
}

impl FailoverPolicy {
    /// All policies, in bench-matrix order.
    pub const ALL: [FailoverPolicy; 3] = [
        FailoverPolicy::Migrate,
        FailoverPolicy::Park,
        FailoverPolicy::Drop,
    ];

    /// Stable label for reports and bench cells.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FailoverPolicy::Migrate => "migrate",
            FailoverPolicy::Park => "park",
            FailoverPolicy::Drop => "drop",
        }
    }

    /// Parses a label produced by [`Self::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// How a node that rejoins without an explicit per-fault mode rebuilds
/// its `BS_k` size tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Warm standby: the shared table cache still holds the tables.
    Warm,
    /// Cold restart: tables rebuild from scratch before admitting.
    Cold,
}

impl RecoveryPolicy {
    /// All policies, in bench-matrix order.
    pub const ALL: [RecoveryPolicy; 2] = [RecoveryPolicy::Warm, RecoveryPolicy::Cold];

    /// Stable label for reports and bench cells.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::Warm => "warm",
            RecoveryPolicy::Cold => "cold",
        }
    }

    /// Parses a label produced by [`Self::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }

    /// The rejoin mode this policy implies when the fault leaves it
    /// unspecified.
    #[must_use]
    pub fn rejoin_mode(&self) -> RejoinMode {
        match self {
            RecoveryPolicy::Warm => RejoinMode::Warm,
            RecoveryPolicy::Cold => RejoinMode::Cold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in FailoverPolicy::ALL {
            assert_eq!(FailoverPolicy::from_label(p.label()), Some(p));
        }
        for p in RecoveryPolicy::ALL {
            assert_eq!(RecoveryPolicy::from_label(p.label()), Some(p));
        }
        assert_eq!(FailoverPolicy::from_label("teleport"), None);
        assert_eq!(RecoveryPolicy::from_label("lukewarm"), None);
    }
}
