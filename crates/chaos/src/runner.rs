//! The chaos runner: interleaves a [`FaultSchedule`] with an arrival
//! trace over a live [`Cluster`], applying failover and recovery
//! policies, and accounts the degradation.
//!
//! # Determinism contract
//!
//! The runner drives the cluster through its public steppable API
//! ([`Cluster::advance_nodes_to`] / [`Cluster::step_arrival`] /
//! [`Cluster::finish_run`]) — the same three calls `Cluster::run` makes.
//! With an empty schedule the fault loop never fires, so the run *is*
//! `Cluster::run`, bit for bit, by construction. With faults, every
//! decision (eviction order, migration targets, parking) is a pure
//! function of `(config, trace, schedule)`: candidate ranking breaks
//! ties by node index and nothing consults wall-clock time or RNG state
//! beyond the cluster's own seeded draws.

use vod_cluster::{Cluster, ClusterConfig, ClusterReport};
use vod_core::SizeTable;
use vod_obs::event::{Event, EventKind};
use vod_obs::metrics::{
    CTR_DISK_DEGRADATIONS, CTR_DOMAIN_FAULTS, CTR_FAILOVERS, CTR_FAULTS_INJECTED, CTR_RECOVERIES,
    CTR_REREPLICATIONS, CTR_STREAMS_DROPPED,
};
use vod_obs::span::{AnnoValue, SpanId, SpanKind, SpanStatus, TraceId, SEQ_FAILOVER};
use vod_obs::Obs;
use vod_sim::EvictedStream;
use vod_types::{ConfigError, DiskId, Instant, Seconds, VideoId};
use vod_workload::Arrival;

use crate::policy::{FailoverPolicy, RecoveryPolicy};
use crate::schedule::{Fault, FaultSchedule, RejoinMode};

/// Scope salt separating chaos-minted failover traces from the cluster
/// front end's request traces derived under the same seed.
const CHAOS_TRACE_SCOPE: u64 = 0x0063_6861_6f73; // "chaos"

/// A full chaos run specification: the cluster under test plus the
/// schedule and policies applied to it.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The cluster under test.
    pub cluster: ClusterConfig,
    /// The faults to inject (empty = identity).
    pub schedule: FaultSchedule,
    /// What happens to a crashed node's streams.
    pub failover: FailoverPolicy,
    /// How unspecified rejoins rebuild tables.
    pub recovery: RecoveryPolicy,
    /// Re-replication horizon: when a node stays down this long, its
    /// movies are re-placed onto the least-loaded survivors (weighted by
    /// *observed* load) and parked streams get a re-admission pass
    /// through the new replicas' own admission controllers. `None`
    /// disables fault-triggered re-replication.
    pub reseed_after: Option<Seconds>,
}

/// Degradation accounting for one chaos run. All counts are exact (not
/// sampled) and deterministic.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ChaosSummary {
    /// Faults applied (crashes + slowdowns + pressures + rejoins).
    pub faults_injected: u64,
    /// Crash faults applied.
    pub crashes: u64,
    /// Slowdown faults applied.
    pub slowdowns: u64,
    /// Memory-pressure faults applied.
    pub pressures: u64,
    /// Domain-level fault events (rack/zone) the schedule was expanded
    /// from; each expanded into one per-node fault per member.
    pub domain_faults: u64,
    /// Partial per-disk degradation faults applied.
    pub disk_degradations: u64,
    /// Partial error-rate faults applied.
    pub disk_errors: u64,
    /// Streams interrupted by crashes (evicted mid-viewing or while
    /// queued; streams that had already finished viewing are excluded).
    pub interrupted: u64,
    /// Interrupted streams re-admitted on a sibling replica.
    pub migrated: u64,
    /// Interrupted streams parked in the overflow FIFO.
    pub parked: u64,
    /// Interrupted streams dropped at failover time (no live replica,
    /// or [`FailoverPolicy::Drop`]).
    pub dropped: u64,
    /// Parked entries — interrupted streams *or* fresh arrivals that
    /// parked against a fully-down candidate set — still unplaceable at
    /// end of run and swept instead of flushed to a dead node.
    pub unplaceable: u64,
    /// Rejoin faults applied.
    pub recoveries: u64,
    /// Rejoins that rebuilt tables from scratch (cold).
    pub cold_rebuilds: u64,
    /// Movies re-placed onto surviving nodes by fault-triggered
    /// re-replication (nodes down past `reseed_after`).
    pub rereplications: u64,
    /// Failover-parked streams re-admitted through a rebuilt replica's
    /// own admission controller (a subset of `parked`).
    pub rereplicated: u64,
    /// Mean seconds from a node going down to its rejoin; `None` when no
    /// downed node rejoined.
    pub mean_time_to_recover_s: Option<f64>,
    /// Node-seconds lost to downtime, summed over nodes.
    pub downtime_node_s: f64,
    /// `1 − downtime / (nodes × horizon)`: the fraction of node-time the
    /// cluster had available. `1.0` for an empty schedule.
    pub availability: f64,
}

/// Result of a chaos run: the cluster's own report (identical shape to
/// a fault-free run, so every existing comparer works) plus the chaos
/// accounting layered on top.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosReport {
    /// The underlying cluster report.
    pub cluster: ClusterReport,
    /// Fault/failover accounting.
    pub summary: ChaosSummary,
}

/// Builds the cluster from `cfg` and runs the schedule over `arrivals`.
///
/// # Errors
///
/// Returns [`ConfigError`] for infeasible cluster parameters or a
/// schedule referencing a node the cluster does not have.
pub fn run_chaos(
    cfg: &ChaosConfig,
    arrivals: &[Arrival],
    jobs: usize,
    obs: Obs,
) -> Result<ChaosReport, ConfigError> {
    if let Some(max) = cfg.schedule.max_node() {
        if max >= cfg.cluster.nodes {
            return Err(ConfigError::new(
                "chaos_schedule",
                format!(
                    "schedule targets node {max} but the cluster has {} nodes",
                    cfg.cluster.nodes
                ),
            ));
        }
    }
    if let Some(max) = cfg.schedule.max_disk() {
        if max >= cfg.cluster.engine.disks {
            return Err(ConfigError::new(
                "chaos_schedule",
                format!(
                    "schedule degrades disk {max} but each node has {} disk(s)",
                    cfg.cluster.engine.disks
                ),
            ));
        }
    }
    let cluster = Cluster::with_observer(cfg.cluster.clone(), obs)?;
    Ok(run_chaos_on(cluster, cfg, arrivals, jobs))
}

/// Runs the schedule over an already-built cluster (the bench layer
/// builds its own to attach tracing and series recorders first).
///
/// # Panics
///
/// Panics if the arrival trace is not time-sorted (same contract as
/// [`Cluster::run`]) or the schedule targets a node outside the cluster.
#[must_use]
pub fn run_chaos_on(
    mut cluster: Cluster,
    cfg: &ChaosConfig,
    arrivals: &[Arrival],
    jobs: usize,
) -> ChaosReport {
    assert!(
        arrivals.windows(2).all(|w| w[0].at <= w[1].at),
        "arrival trace must be time-sorted"
    );
    let mut st = ChaosState::new(&mut cluster, cfg);
    let mut faults = cfg.schedule.events().iter().peekable();
    for a in arrivals {
        // Faults due at or before this arrival fire first, each at its
        // own instant, so eviction and failover happen on caught-up
        // engines before the arrival is dispatched. The re-replication
        // check runs at every event instant (fault or arrival) — time
        // only advances at events, so that is the finest deterministic
        // granularity the horizon can be observed at.
        while let Some(&&f) = faults.peek() {
            if f.at > a.at {
                break;
            }
            cluster.advance_nodes_to(f.at);
            st.maybe_reseed(&mut cluster, f.at);
            st.apply(&mut cluster, f);
            faults.next();
        }
        cluster.advance_nodes_to(a.at);
        st.maybe_reseed(&mut cluster, a.at);
        cluster.step_arrival(a);
        st.horizon = a.at;
    }
    // Trailing faults (after the last arrival) still apply: a late
    // rejoin must get its re-admission pass before the overflow flush.
    for f in faults {
        cluster.advance_nodes_to(f.at);
        st.maybe_reseed(&mut cluster, f.at);
        st.apply(&mut cluster, *f);
    }
    // Parked entries whose every candidate is still down cannot flush
    // anywhere; account them as dropped rather than letting the flush
    // fall back to a dead node.
    st.dropped_sweep(&mut cluster);
    let summary = st.finish(&cluster);
    let cluster_report = cluster.finish_run(jobs);
    ChaosReport {
        cluster: cluster_report,
        summary,
    }
}

/// Mutable accounting threaded through one run.
struct ChaosState<'a> {
    cfg: &'a ChaosConfig,
    obs: Obs,
    seed: u64,
    summary: ChaosSummary,
    /// When each currently-down node went down.
    down_since: Vec<Option<Instant>>,
    /// Closed down-intervals' durations (seconds).
    ttr: Vec<f64>,
    /// Latest simulated instant seen (arrival or fault).
    horizon: Instant,
    /// Migration counter — the index salt for failover trace ids.
    migrations: u64,
    /// Nodes whose hot set was already re-replicated this down-interval
    /// (reset on rejoin, so a later crash can trigger a fresh rebuild).
    reseeded: Vec<bool>,
}

impl<'a> ChaosState<'a> {
    fn new(cluster: &mut Cluster, cfg: &'a ChaosConfig) -> Self {
        let obs = cluster.observer();
        let domain_faults = cfg.schedule.domain_event_count();
        if domain_faults > 0 {
            obs.metrics().counter(CTR_DOMAIN_FAULTS).add(domain_faults);
        }
        Self {
            cfg,
            obs,
            seed: cluster.seed(),
            summary: ChaosSummary {
                availability: 1.0,
                domain_faults,
                ..ChaosSummary::default()
            },
            down_since: vec![None; cluster.node_count()],
            ttr: Vec::new(),
            horizon: Instant::ZERO,
            migrations: 0,
            reseeded: vec![false; cluster.node_count()],
        }
    }

    fn apply(&mut self, cluster: &mut Cluster, f: crate::schedule::FaultEvent) {
        assert!(
            f.node < cluster.node_count(),
            "fault targets node {} outside the {}-node cluster",
            f.node,
            cluster.node_count()
        );
        self.horizon = self.horizon.max(f.at);
        self.summary.faults_injected += 1;
        self.obs
            .emit_with(EventKind::FaultInjected, || Event::FaultInjected {
                at: f.at,
                node: f.node,
                fault: f.fault.label(),
            });
        self.obs.metrics().counter(CTR_FAULTS_INJECTED).add(1);
        match f.fault {
            Fault::NodeCrash => {
                self.summary.crashes += 1;
                if self.down_since[f.node].is_none() {
                    self.down_since[f.node] = Some(f.at);
                }
                let evicted = cluster.crash_node(f.node);
                self.fail_over(cluster, f.at, f.node, evicted);
            }
            Fault::NodeSlow { factor } => {
                self.summary.slowdowns += 1;
                cluster.throttle_node(f.node, 1.0 / factor.max(1.0), 1.0);
            }
            Fault::MemoryPressure { fraction } => {
                self.summary.pressures += 1;
                cluster.throttle_node(f.node, 1.0, 1.0 - fraction.clamp(0.0, 1.0));
            }
            Fault::NodeRejoin { mode } => {
                self.rejoin(cluster, f.at, f.node, mode);
            }
            Fault::DiskDegrade { disk, factor } => {
                self.summary.disk_degradations += 1;
                // A disk `factor`× slower keeps `1/factor` of its share
                // — the same equivalence NodeSlow uses, scoped to one
                // disk.
                cluster.degrade_disk(f.node, disk, 1.0 / factor.max(1.0));
                self.obs.metrics().counter(CTR_DISK_DEGRADATIONS).add(1);
            }
            Fault::DiskError { rate } => {
                self.summary.disk_errors += 1;
                cluster.set_disk_error(f.node, rate.clamp(0.0, 1.0));
                self.obs.metrics().counter(CTR_DISK_DEGRADATIONS).add(1);
            }
        }
    }

    /// Fault-triggered re-replication: any node down for at least
    /// `reseed_after` gets its movies re-placed onto surviving nodes,
    /// once per down-interval. Target choice ranks survivors by
    /// *observed* load (offered streams plus replicas assigned earlier
    /// in this same pass, so one idle node does not absorb the whole hot
    /// set), node index as the tie-break — pure given cluster state.
    /// Parked streams are then re-admitted through the normal
    /// strict-FIFO retry, i.e. through the new replicas' own admission
    /// controllers — Assumption 1 is never bypassed.
    fn maybe_reseed(&mut self, cluster: &mut Cluster, now: Instant) {
        let Some(after) = self.cfg.reseed_after else {
            return;
        };
        for node in 0..cluster.node_count() {
            if self.reseeded[node] {
                continue;
            }
            let Some(since) = self.down_since[node] else {
                continue;
            };
            if (now - since).as_secs_f64() < after.as_secs_f64() {
                continue;
            }
            self.reseed(cluster, now, node);
        }
    }

    /// Rebuilds the replica map for one downed node's movie set.
    fn reseed(&mut self, cluster: &mut Cluster, at: Instant, node: usize) {
        self.reseeded[node] = true;
        let nodes = cluster.node_count();
        let mut assigned = vec![0usize; nodes];
        let mut moved = 0usize;
        for m in 0..self.cfg.cluster.movies {
            let video = VideoId::new(m as u64);
            if !cluster.replicas_of(video).contains(&node) {
                continue;
            }
            let target = (0..nodes)
                .filter(|&ni| !cluster.is_down(ni))
                .filter(|&ni| !cluster.replicas_of(video).contains(&ni))
                .min_by_key(|&ni| (cluster.node_offered(ni) + assigned[ni], ni));
            let Some(target) = target else {
                // Every survivor already holds a replica (or none
                // survive) — nothing to rebuild for this movie.
                continue;
            };
            if cluster.rereplicate(video, target) {
                assigned[target] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            return;
        }
        self.summary.rereplications += moved as u64;
        self.obs
            .emit_with(EventKind::ReplicaRebuilt, || Event::ReplicaRebuilt {
                at,
                node,
                movies: moved,
            });
        self.obs
            .metrics()
            .counter(CTR_REREPLICATIONS)
            .add(moved as u64);
        // Re-admission pass: parked streams whose candidate lists just
        // grew a rebuilt replica get their strict-FIFO retry now.
        cluster.retry_parked(at);
    }

    /// Applies the failover policy to one crash's evicted streams.
    fn fail_over(
        &mut self,
        cluster: &mut Cluster,
        at: Instant,
        from: usize,
        evicted: Vec<EvictedStream>,
    ) {
        for ev in evicted {
            // A stream that had finished viewing was only waiting for
            // its departure bookkeeping — nothing to fail over.
            if ev.viewing_left.as_secs_f64() <= 1e-9 {
                continue;
            }
            self.summary.interrupted += 1;
            // Mint a fresh trace for the re-placement: the original
            // trace's root span already ended `Refused` at eviction, and
            // span ids are (trace, seq)-derived, so reusing it would
            // collide. The failover span links back via `orig_trace`.
            let trace = TraceId::derive(self.seed ^ CHAOS_TRACE_SCOPE, self.migrations);
            self.migrations += 1;
            let arrival = Arrival {
                at,
                disk: DiskId::new(0),
                video: ev.video,
                viewing: ev.viewing_left,
            };
            // Sibling replicas, crashed node excluded, least-loaded
            // first with node index as the tie-break — pure given node
            // state.
            let mut candidates: Vec<usize> = cluster
                .replicas_of(ev.video)
                .iter()
                .copied()
                .filter(|&ni| ni != from)
                .collect();
            candidates.sort_by_key(|&ni| (cluster.node_offered(ni), ni));
            let outcome = match self.cfg.failover {
                FailoverPolicy::Drop => Outcome::Dropped("policy_drop"),
                _ if candidates.is_empty() => Outcome::Dropped("no_replica"),
                FailoverPolicy::Park => Outcome::Parked,
                FailoverPolicy::Migrate => candidates
                    .iter()
                    .copied()
                    .find(|&ni| cluster.node_would_accept(ni, at))
                    .map_or(Outcome::Parked, Outcome::Migrated),
            };
            self.trace_failover(at, trace, ev.trace, from, outcome);
            match outcome {
                Outcome::Migrated(to) => {
                    self.summary.migrated += 1;
                    self.obs.metrics().counter(CTR_FAILOVERS).add(1);
                    cluster.offer_migrant(to, &arrival, trace);
                }
                Outcome::Parked => {
                    self.summary.parked += 1;
                    cluster.park_migrant(&arrival, candidates, trace);
                }
                Outcome::Dropped(_) => {
                    self.summary.dropped += 1;
                    self.obs.metrics().counter(CTR_STREAMS_DROPPED).add(1);
                }
            }
        }
    }

    /// Emits the failover span: one per interrupted stream, annotated
    /// with where it came from, where it went, and why.
    fn trace_failover(
        &self,
        at: Instant,
        trace: TraceId,
        orig: TraceId,
        from: usize,
        outcome: Outcome,
    ) {
        if !self.obs.tracing() {
            return;
        }
        let sp = SpanId::derive(trace, SEQ_FAILOVER);
        self.obs.span_start(at, trace, sp, None, SpanKind::Failover);
        self.obs
            .span_annotate(at, trace, sp, "from_node", AnnoValue::U64(from as u64));
        self.obs
            .span_annotate(at, trace, sp, "orig_trace", AnnoValue::U64(orig.raw()));
        let status = match outcome {
            Outcome::Migrated(to) => {
                self.obs
                    .span_annotate(at, trace, sp, "to_node", AnnoValue::U64(to as u64));
                self.obs
                    .span_annotate(at, trace, sp, "reason", AnnoValue::Str("migrated"));
                SpanStatus::Ok
            }
            Outcome::Parked => {
                self.obs
                    .span_annotate(at, trace, sp, "reason", AnnoValue::Str("parked"));
                SpanStatus::Parked
            }
            Outcome::Dropped(why) => {
                self.obs
                    .span_annotate(at, trace, sp, "reason", AnnoValue::Str(why));
                SpanStatus::Refused
            }
        };
        self.obs.span_end(at, trace, sp, status);
    }

    fn rejoin(
        &mut self,
        cluster: &mut Cluster,
        at: Instant,
        node: usize,
        mode: Option<RejoinMode>,
    ) {
        let mode = mode.unwrap_or_else(|| self.cfg.recovery.rejoin_mode());
        // The table work is real (timed under `PHASE_TABLE_BUILD`), but
        // the rebuilt table is not swapped into the engine: `SizeTable`
        // is a pure function of the system parameters, so warm and cold
        // rejoins produce bit-identical tables — only the recovery cost
        // differs, which is the paper's argument for precomputing BS_k.
        match mode {
            RejoinMode::Warm => {
                let _ = SizeTable::shared_instrumented(
                    &self.cfg.cluster.engine.params,
                    self.obs.metrics(),
                );
            }
            RejoinMode::Cold => {
                self.summary.cold_rebuilds += 1;
                let _ = SizeTable::build_instrumented(
                    &self.cfg.cluster.engine.params,
                    self.obs.metrics(),
                );
            }
        }
        if let Some(since) = self.down_since[node].take() {
            self.ttr.push((at - since).as_secs_f64());
        }
        self.reseeded[node] = false;
        cluster.rejoin_node(node);
        // Re-admission pass: parked requests whose candidates include
        // this node get their strict-FIFO retry now.
        cluster.retry_parked(at);
        self.summary.recoveries += 1;
        self.obs
            .emit_with(EventKind::NodeRecovered, || Event::NodeRecovered {
                at,
                node,
                warm: mode == RejoinMode::Warm,
            });
        self.obs.metrics().counter(CTR_RECOVERIES).add(1);
    }

    fn dropped_sweep(&mut self, cluster: &mut Cluster) {
        let swept = cluster.drop_unplaceable_parked();
        if swept > 0 {
            self.summary.unplaceable += swept;
            self.obs.metrics().counter(CTR_STREAMS_DROPPED).add(swept);
        }
    }

    fn finish(mut self, cluster: &Cluster) -> ChaosSummary {
        self.summary.rereplicated = cluster.rereplicated_streams();
        let end = self.horizon;
        // Close never-rejoined down-intervals at the horizon.
        let mut downtime: f64 = self.ttr.iter().sum();
        for since in self.down_since.iter().flatten() {
            downtime += (end.max(*since) - *since).as_secs_f64();
        }
        self.summary.downtime_node_s = downtime;
        let span = end.as_secs_f64() * cluster.node_count() as f64;
        self.summary.availability = if span > 0.0 {
            (1.0 - downtime / span).clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.summary.mean_time_to_recover_s = if self.ttr.is_empty() {
            None
        } else {
            Some(self.ttr.iter().sum::<f64>() / self.ttr.len() as f64)
        };
        self.summary
    }
}

/// Where one interrupted stream ended up.
#[derive(Clone, Copy)]
enum Outcome {
    Migrated(usize),
    Parked,
    Dropped(&'static str),
}
