//! Fault schedules: typed faults pinned to (instant, node), built from a
//! seed, a script, or an explicit event list.
//!
//! A schedule is data, not behaviour — the [`crate::runner`] interprets
//! it against a live cluster. Keeping the two apart means a schedule can
//! be printed, diffed, committed next to a bench baseline, and replayed
//! bit-identically on any machine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vod_types::{Instant, Seconds};

/// How a rejoining node rebuilds its buffer-size tables (the paper's
/// precomputed `BS_k` tables, `SizeTable` here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejoinMode {
    /// Reuse the process-wide shared table cache
    /// ([`vod_core::SizeTable::shared`]) — a warm standby that kept its
    /// precomputed state.
    Warm,
    /// Rebuild the tables from scratch ([`vod_core::SizeTable::build`])
    /// — a cold restart that lost them. The rebuilt table is
    /// bit-identical (it is a pure function of the system parameters);
    /// only the cost differs, which is exactly the paper's point about
    /// precomputing `BS_k` offline.
    Cold,
}

/// One typed fault. Slow/pressure factors describe *severity*, and both
/// map onto admission-side throttles — the engine's service loop is
/// untouched, because under the paper's model a slower disk is
/// equivalent to a smaller stream capacity `N` (§3: the admission bound
/// `min(min_i(n_i + k_i), N)` is where disk speed enters), and
/// tightening admission can never cause an underflow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The node halts: every active stream and queued request is evicted
    /// and the node is excluded from routing until it rejoins.
    NodeCrash,
    /// The node's disk slows by `factor` (≥ 1; 2.0 = half speed). Its
    /// effective stream capacity shrinks to `N / factor`.
    NodeSlow {
        /// Slowdown multiple (≥ 1.0).
        factor: f64,
    },
    /// `fraction` of the node's memory budget (in `[0, 1]`) is withheld
    /// from the buffer pool — a co-tenant grabbing RAM.
    MemoryPressure {
        /// Fraction of the budget withheld.
        fraction: f64,
    },
    /// The node returns to service: routing re-includes it, throttles
    /// clear, and parked requests get a re-admission pass.
    NodeRejoin {
        /// `None` defers to the run's [`crate::RecoveryPolicy`].
        mode: Option<RejoinMode>,
    },
}

impl Fault {
    /// Stable label for events, metrics, and scripts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Fault::NodeCrash => "crash",
            Fault::NodeSlow { .. } => "slow",
            Fault::MemoryPressure { .. } => "pressure",
            Fault::NodeRejoin { .. } => "rejoin",
        }
    }
}

/// One scheduled fault: what happens to which node, when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated instant the fault fires (applied before any arrival at
    /// the same instant).
    pub at: Instant,
    /// Target node index.
    pub node: usize,
    /// The fault itself.
    pub fault: Fault,
}

/// A time-sorted fault schedule. The empty schedule is the identity:
/// running it leaves the cluster byte-identical to a plain run.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule (no faults; bit-identical to no chaos at all).
    #[must_use]
    pub fn empty() -> Self {
        Self { events: Vec::new() }
    }

    /// Builds a schedule from explicit events, stable-sorting by
    /// `(at, node)` so same-instant faults on different nodes apply in
    /// node order and same-cell faults keep their authored order.
    #[must_use]
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| {
            a.at.as_secs_f64()
                .total_cmp(&b.at.as_secs_f64())
                .then(a.node.cmp(&b.node))
        });
        Self { events }
    }

    /// Parses a fault script. One fault per line:
    ///
    /// ```text
    /// <t_secs> <node> crash
    /// <t_secs> <node> slow:<factor>
    /// <t_secs> <node> pressure:<fraction>
    /// <t_secs> <node> rejoin[:warm|:cold]
    /// ```
    ///
    /// Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a `line N: reason` message for the first malformed line.
    pub fn from_script(src: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| format!("line {}: {reason}", idx + 1);
            let mut fields = line.split_whitespace();
            let (Some(t), Some(node), Some(kind), None) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                return Err(err("expected `<t_secs> <node> <fault>`"));
            };
            let t: f64 = t.parse().map_err(|_| err("bad time"))?;
            if !t.is_finite() || t < 0.0 {
                return Err(err("time must be finite and non-negative"));
            }
            let node: usize = node.parse().map_err(|_| err("bad node index"))?;
            let fault = match kind.split_once(':') {
                None if kind == "crash" => Fault::NodeCrash,
                None if kind == "rejoin" => Fault::NodeRejoin { mode: None },
                Some(("slow", f)) => {
                    let factor: f64 = f.parse().map_err(|_| err("bad slow factor"))?;
                    if !(factor >= 1.0 && factor.is_finite()) {
                        return Err(err("slow factor must be >= 1"));
                    }
                    Fault::NodeSlow { factor }
                }
                Some(("pressure", f)) => {
                    let fraction: f64 = f.parse().map_err(|_| err("bad pressure fraction"))?;
                    if !(0.0..=1.0).contains(&fraction) {
                        return Err(err("pressure fraction must be in [0, 1]"));
                    }
                    Fault::MemoryPressure { fraction }
                }
                Some(("rejoin", "warm")) => Fault::NodeRejoin {
                    mode: Some(RejoinMode::Warm),
                },
                Some(("rejoin", "cold")) => Fault::NodeRejoin {
                    mode: Some(RejoinMode::Cold),
                },
                _ => return Err(err(
                    "unknown fault (want crash | slow:<f> | pressure:<f> | rejoin[:warm|:cold])",
                )),
            };
            events.push(FaultEvent {
                at: Instant::from_secs(t),
                node,
                fault,
            });
        }
        Ok(Self::from_events(events))
    }

    /// Generates a random-but-reproducible schedule: a pure function of
    /// `(seed, nodes, horizon)`. Each episode strikes one node with one
    /// fault in the first 60% of the horizon and rejoins it later, so
    /// seeded runs always exercise both failover *and* recovery.
    #[must_use]
    pub fn from_seed(seed: u64, nodes: usize, horizon: Seconds) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = horizon.as_secs_f64();
        let episodes = 1 + nodes / 2;
        let mut events = Vec::with_capacity(episodes * 2);
        for _ in 0..episodes {
            let node = rng.gen_range(0..nodes);
            let start = h * rng.gen_range(0.10..0.60);
            let heal = start + h * rng.gen_range(0.10..0.30);
            let fault = match rng.gen_range(0..3u64) {
                0 => Fault::NodeCrash,
                1 => Fault::NodeSlow {
                    factor: rng.gen_range(1.5..6.0),
                },
                _ => Fault::MemoryPressure {
                    fraction: rng.gen_range(0.2..0.8),
                },
            };
            events.push(FaultEvent {
                at: Instant::from_secs(start),
                node,
                fault,
            });
            events.push(FaultEvent {
                at: Instant::from_secs(heal),
                node,
                fault: Fault::NodeRejoin { mode: None },
            });
        }
        Self::from_events(events)
    }

    /// True when the schedule carries no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events, time-sorted.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Largest node index referenced, if any (for validation against a
    /// cluster's node count).
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.events.iter().map(|e| e.node).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_round_trips_every_fault_kind() {
        let s = FaultSchedule::from_script(
            "# chaos script\n\
             10 0 crash\n\
             20 1 slow:4\n\
             30 0 rejoin:cold\n\
             40 1 rejoin:warm\n\
             5 1 pressure:0.5\n\
             \n\
             50 0 rejoin\n",
        )
        .expect("valid script");
        assert_eq!(s.len(), 6);
        // Sorted by time despite authored order.
        assert_eq!(s.events()[0].at, Instant::from_secs(5.0));
        assert_eq!(s.events()[0].fault, Fault::MemoryPressure { fraction: 0.5 });
        assert_eq!(s.events()[1].fault, Fault::NodeCrash);
        assert_eq!(s.events()[5].fault, Fault::NodeRejoin { mode: None },);
        assert_eq!(s.max_node(), Some(1));
    }

    #[test]
    fn script_errors_name_the_line() {
        for (src, needle) in [
            ("10 0", "line 1"),
            ("x 0 crash", "bad time"),
            ("10 0 slow:0.5", "slow factor"),
            ("10 0 pressure:1.5", "pressure fraction"),
            ("10 0 melt", "unknown fault"),
            ("10 0 crash extra", "expected"),
            ("-1 0 crash", "non-negative"),
        ] {
            let err = FaultSchedule::from_script(src).unwrap_err();
            assert!(err.contains(needle), "{src:?} -> {err}");
        }
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_heal() {
        let a = FaultSchedule::from_seed(42, 4, Seconds::from_hours(2.0));
        let b = FaultSchedule::from_seed(42, 4, Seconds::from_hours(2.0));
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());
        // Every episode pairs a strike with a rejoin.
        let rejoins = a
            .events()
            .iter()
            .filter(|e| matches!(e.fault, Fault::NodeRejoin { .. }))
            .count();
        assert_eq!(rejoins * 2, a.len());
        let c = FaultSchedule::from_seed(43, 4, Seconds::from_hours(2.0));
        assert_ne!(a.events(), c.events());
        // Sorted by time.
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_is_empty() {
        assert!(FaultSchedule::empty().is_empty());
        assert_eq!(FaultSchedule::empty().max_node(), None);
        assert_eq!(FaultSchedule::default().len(), 0);
    }
}
