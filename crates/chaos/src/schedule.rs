//! Fault schedules: typed faults pinned to (instant, node), built from a
//! seed, a script, or an explicit event list.
//!
//! A schedule is data, not behaviour — the [`crate::runner`] interprets
//! it against a live cluster. Keeping the two apart means a schedule can
//! be printed, diffed, committed next to a bench baseline, and replayed
//! bit-identically on any machine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vod_types::{Instant, Seconds};

use crate::domain::{DomainEvent, DomainFault, DomainMap};

/// How a rejoining node rebuilds its buffer-size tables (the paper's
/// precomputed `BS_k` tables, `SizeTable` here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejoinMode {
    /// Reuse the process-wide shared table cache
    /// ([`vod_core::SizeTable::shared`]) — a warm standby that kept its
    /// precomputed state.
    Warm,
    /// Rebuild the tables from scratch ([`vod_core::SizeTable::build`])
    /// — a cold restart that lost them. The rebuilt table is
    /// bit-identical (it is a pure function of the system parameters);
    /// only the cost differs, which is exactly the paper's point about
    /// precomputing `BS_k` offline.
    Cold,
}

/// One typed fault. Slow/pressure factors describe *severity*, and both
/// map onto admission-side throttles — the engine's service loop is
/// untouched, because under the paper's model a slower disk is
/// equivalent to a smaller stream capacity `N` (§3: the admission bound
/// `min(min_i(n_i + k_i), N)` is where disk speed enters), and
/// tightening admission can never cause an underflow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The node halts: every active stream and queued request is evicted
    /// and the node is excluded from routing until it rejoins.
    NodeCrash,
    /// The node's disk slows by `factor` (≥ 1; 2.0 = half speed). Its
    /// effective stream capacity shrinks to `N / factor`.
    NodeSlow {
        /// Slowdown multiple (≥ 1.0).
        factor: f64,
    },
    /// `fraction` of the node's memory budget (in `[0, 1]`) is withheld
    /// from the buffer pool — a co-tenant grabbing RAM.
    MemoryPressure {
        /// Fraction of the budget withheld.
        fraction: f64,
    },
    /// The node returns to service: routing re-includes it, throttles
    /// (whole-node *and* per-disk) clear, and parked requests get a
    /// re-admission pass.
    NodeRejoin {
        /// `None` defers to the run's [`crate::RecoveryPolicy`].
        mode: Option<RejoinMode>,
    },
    /// A *partial* fault: one disk of the node degrades by `factor` ≥ 1
    /// while the node stays up. With `d` configured disks each owns an
    /// equal share of the stream bound, so the node keeps
    /// `(d − 1 + 1/factor) / d` of its admission capacity — a fraction
    /// of the node throttles instead of the whole thing.
    DiskDegrade {
        /// Target disk index (validated against the engine's disk
        /// count at run start).
        disk: usize,
        /// Slowdown multiple of that one disk (≥ 1.0).
        factor: f64,
    },
    /// A *partial* fault: the node's disks fail a fraction `rate` of
    /// requests. Deterministic by the paper's equivalence — an error
    /// rate `r` is a `1 − r` multiplier on the admission bound, never a
    /// random per-request coin flip.
    DiskError {
        /// Failing fraction in `[0, 1)`.
        rate: f64,
    },
}

impl Fault {
    /// Stable label for events, metrics, and scripts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Fault::NodeCrash => "crash",
            Fault::NodeSlow { .. } => "slow",
            Fault::MemoryPressure { .. } => "pressure",
            Fault::NodeRejoin { .. } => "rejoin",
            Fault::DiskDegrade { .. } => "degrade",
            Fault::DiskError { .. } => "error",
        }
    }
}

/// One scheduled fault: what happens to which node, when.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated instant the fault fires (applied before any arrival at
    /// the same instant).
    pub at: Instant,
    /// Target node index.
    pub node: usize,
    /// The fault itself.
    pub fault: Fault,
}

/// A time-sorted fault schedule. The empty schedule is the identity:
/// running it leaves the cluster byte-identical to a plain run.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Domain-level events this schedule was expanded from (0 for flat
    /// schedules). Accounting only: by the time the runner executes,
    /// every event is per-node.
    domain_events: u64,
}

impl FaultSchedule {
    /// The empty schedule (no faults; bit-identical to no chaos at all).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a schedule from explicit events, stable-sorting by
    /// `(at, node)` so same-instant faults on different nodes apply in
    /// node order and same-cell faults keep their authored order.
    #[must_use]
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| {
            a.at.as_secs_f64()
                .total_cmp(&b.at.as_secs_f64())
                .then(a.node.cmp(&b.node))
        });
        Self {
            events,
            domain_events: 0,
        }
    }

    /// Builds a schedule from domain-level events layered over `map`,
    /// merged with flat per-node events. Each [`DomainEvent`] expands to
    /// one [`FaultEvent`] per member node *at the same instant*, and the
    /// merged list gets the same `(at, node)` stable sort as
    /// [`Self::from_events`] — so a domain schedule is indistinguishable
    /// from the equivalent hand-written flat schedule, and with an empty
    /// map and no domain events this *is* `from_events(node_events)`,
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first domain event addressing a
    /// domain absent from the map.
    pub fn with_domains(
        map: &DomainMap,
        domain_events: &[DomainEvent],
        node_events: Vec<FaultEvent>,
    ) -> Result<Self, String> {
        let mut events = node_events;
        for de in domain_events {
            let Some(members) = map.nodes_of(&de.domain) else {
                return Err(format!(
                    "domain event at t={} targets unknown domain `{}`",
                    de.at.as_secs_f64(),
                    de.domain
                ));
            };
            let fault = match de.fault {
                DomainFault::Crash => Fault::NodeCrash,
                DomainFault::Slow { factor } => Fault::NodeSlow { factor },
                DomainFault::Rejoin { mode } => Fault::NodeRejoin { mode },
            };
            events.extend(members.iter().map(|&node| FaultEvent {
                at: de.at,
                node,
                fault,
            }));
        }
        let mut schedule = Self::from_events(events);
        schedule.domain_events = domain_events.len() as u64;
        Ok(schedule)
    }

    /// Parses a fault script. One statement per line:
    ///
    /// ```text
    /// domain <name> <node> [<node> ...]        # declare a failure domain
    /// <t_secs> <node> crash
    /// <t_secs> <node> slow:<factor>
    /// <t_secs> <node> pressure:<fraction>
    /// <t_secs> <node> rejoin[:warm|:cold]
    /// <t_secs> <node> degrade:<disk>:<factor>  # partial: one disk slows
    /// <t_secs> <node> error:<rate>             # partial: error-rate throttle
    /// <t_secs> @<name> crash|slow:<f>|rejoin[:...]   # correlated domain fault
    /// ```
    ///
    /// Domain faults expand to one per-node event per member at the same
    /// instant; a domain must be declared before it is used. Blank lines
    /// and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a `line N: reason` message naming the offending token for
    /// the first malformed line, and rejects duplicate `(t, node)`
    /// events with a diagnostic naming both lines.
    pub fn from_script(src: &str) -> Result<Self, String> {
        let mut map = DomainMap::empty();
        let mut domain_count: u64 = 0;
        // (event, 1-based source line) — domain faults carry the domain
        // line, so duplicate diagnostics always point at real script
        // lines.
        let mut events: Vec<(FaultEvent, usize)> = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let err = |reason: String| format!("line {lineno}: {reason}");
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields[0] == "domain" {
                let [_, name, members @ ..] = fields.as_slice() else {
                    unreachable!("fields is non-empty");
                };
                if members.is_empty() {
                    return Err(err(format!(
                        "domain `{name}` needs at least one member node \
                         (want `domain <name> <node> [<node> ...]`)"
                    )));
                }
                let mut nodes = Vec::with_capacity(members.len());
                for m in members {
                    let node: usize = m
                        .parse()
                        .map_err(|_| err(format!("bad node index `{m}`")))?;
                    nodes.push(node);
                }
                let mut pairs: Vec<(String, Vec<usize>)> = map
                    .iter()
                    .map(|(n, ns)| (n.to_string(), ns.to_vec()))
                    .collect();
                pairs.push(((*name).to_string(), nodes));
                map = DomainMap::from_domains(pairs).map_err(err)?;
                continue;
            }
            let [t, target, kind] = fields.as_slice() else {
                return Err(err(format!(
                    "expected `<t_secs> <node|@domain> <fault>`, got {} fields",
                    fields.len()
                )));
            };
            let at: f64 = t.parse().map_err(|_| err(format!("bad time `{t}`")))?;
            if !at.is_finite() || at < 0.0 {
                return Err(err(format!("time `{t}` must be finite and non-negative")));
            }
            let at = Instant::from_secs(at);
            let fault = Self::parse_fault(kind).map_err(err)?;
            if let Some(name) = target.strip_prefix('@') {
                let Some(members) = map.nodes_of(name) else {
                    return Err(err(format!(
                        "unknown domain `{name}` (declare it first with `domain {name} ...`)"
                    )));
                };
                if matches!(fault, Fault::DiskDegrade { .. } | Fault::DiskError { .. }) {
                    return Err(err(format!(
                        "partial fault `{kind}` targets a single node, not domain `@{name}`"
                    )));
                }
                domain_count += 1;
                events.extend(
                    members
                        .iter()
                        .map(|&node| (FaultEvent { at, node, fault }, lineno)),
                );
            } else {
                let node: usize = target
                    .parse()
                    .map_err(|_| err(format!("bad node index `{target}`")))?;
                events.push((FaultEvent { at, node, fault }, lineno));
            }
        }
        // Duplicate (t, node) events are ambiguous (which fault wins?)
        // and almost always a script typo: reject with both lines named.
        let mut keys: Vec<(u64, usize, usize)> = events
            .iter()
            .map(|(e, line)| (e.at.as_secs_f64().to_bits(), e.node, *line))
            .collect();
        keys.sort_unstable();
        for w in keys.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(format!(
                    "line {}: duplicate fault for node {} at t={} (first scheduled at line {})",
                    w[1].2,
                    w[1].1,
                    f64::from_bits(w[1].0),
                    w[0].2,
                ));
            }
        }
        let mut schedule = Self::from_events(events.into_iter().map(|(e, _)| e).collect());
        schedule.domain_events = domain_count;
        Ok(schedule)
    }

    /// Parses one `<fault>` token of the script grammar.
    fn parse_fault(kind: &str) -> Result<Fault, String> {
        Ok(match kind.split_once(':') {
            None if kind == "crash" => Fault::NodeCrash,
            None if kind == "rejoin" => Fault::NodeRejoin { mode: None },
            Some(("slow", f)) => {
                let factor: f64 = f.parse().map_err(|_| format!("bad slow factor `{f}`"))?;
                if !(factor >= 1.0 && factor.is_finite()) {
                    return Err(format!("slow factor `{f}` must be >= 1"));
                }
                Fault::NodeSlow { factor }
            }
            Some(("pressure", f)) => {
                let fraction: f64 = f
                    .parse()
                    .map_err(|_| format!("bad pressure fraction `{f}`"))?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(format!("pressure fraction `{f}` must be in [0, 1]"));
                }
                Fault::MemoryPressure { fraction }
            }
            Some(("rejoin", "warm")) => Fault::NodeRejoin {
                mode: Some(RejoinMode::Warm),
            },
            Some(("rejoin", "cold")) => Fault::NodeRejoin {
                mode: Some(RejoinMode::Cold),
            },
            Some(("degrade", rest)) => {
                let Some((disk, f)) = rest.split_once(':') else {
                    return Err(format!(
                        "degrade wants `degrade:<disk>:<factor>`, got `{kind}`"
                    ));
                };
                let disk: usize = disk
                    .parse()
                    .map_err(|_| format!("bad disk index `{disk}`"))?;
                let factor: f64 = f.parse().map_err(|_| format!("bad degrade factor `{f}`"))?;
                if !(factor >= 1.0 && factor.is_finite()) {
                    return Err(format!("degrade factor `{f}` must be >= 1"));
                }
                Fault::DiskDegrade { disk, factor }
            }
            Some(("error", r)) => {
                let rate: f64 = r.parse().map_err(|_| format!("bad error rate `{r}`"))?;
                if !(0.0..1.0).contains(&rate) {
                    return Err(format!("error rate `{r}` must be in [0, 1)"));
                }
                Fault::DiskError { rate }
            }
            _ => {
                return Err(format!(
                    "unknown fault `{kind}` (want crash | slow:<f> | pressure:<f> | \
                     rejoin[:warm|:cold] | degrade:<disk>:<f> | error:<r>)"
                ))
            }
        })
    }

    /// Generates a random-but-reproducible schedule: a pure function of
    /// `(seed, nodes, horizon)`. Each episode strikes one node with one
    /// fault in the first 60% of the horizon and rejoins it later, so
    /// seeded runs always exercise both failover *and* recovery.
    #[must_use]
    pub fn from_seed(seed: u64, nodes: usize, horizon: Seconds) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = horizon.as_secs_f64();
        let episodes = 1 + nodes / 2;
        let mut events = Vec::with_capacity(episodes * 2);
        for _ in 0..episodes {
            let node = rng.gen_range(0..nodes);
            let start = h * rng.gen_range(0.10..0.60);
            let heal = start + h * rng.gen_range(0.10..0.30);
            let fault = match rng.gen_range(0..3u64) {
                0 => Fault::NodeCrash,
                1 => Fault::NodeSlow {
                    factor: rng.gen_range(1.5..6.0),
                },
                _ => Fault::MemoryPressure {
                    fraction: rng.gen_range(0.2..0.8),
                },
            };
            events.push(FaultEvent {
                at: Instant::from_secs(start),
                node,
                fault,
            });
            events.push(FaultEvent {
                at: Instant::from_secs(heal),
                node,
                fault: Fault::NodeRejoin { mode: None },
            });
        }
        Self::from_events(events)
    }

    /// True when the schedule carries no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events, time-sorted.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Largest node index referenced, if any (for validation against a
    /// cluster's node count).
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.events.iter().map(|e| e.node).max()
    }

    /// Largest disk index referenced by a [`Fault::DiskDegrade`] event,
    /// if any (for validation against the engine's disk count).
    #[must_use]
    pub fn max_disk(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::DiskDegrade { disk, .. } => Some(disk),
                _ => None,
            })
            .max()
    }

    /// Domain-level events this schedule was expanded from (0 for flat
    /// schedules).
    #[must_use]
    pub fn domain_event_count(&self) -> u64 {
        self.domain_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_round_trips_every_fault_kind() {
        let s = FaultSchedule::from_script(
            "# chaos script\n\
             10 0 crash\n\
             20 1 slow:4\n\
             30 0 rejoin:cold\n\
             40 1 rejoin:warm\n\
             5 1 pressure:0.5\n\
             \n\
             50 0 rejoin\n",
        )
        .expect("valid script");
        assert_eq!(s.len(), 6);
        // Sorted by time despite authored order.
        assert_eq!(s.events()[0].at, Instant::from_secs(5.0));
        assert_eq!(s.events()[0].fault, Fault::MemoryPressure { fraction: 0.5 });
        assert_eq!(s.events()[1].fault, Fault::NodeCrash);
        assert_eq!(s.events()[5].fault, Fault::NodeRejoin { mode: None },);
        assert_eq!(s.max_node(), Some(1));
    }

    #[test]
    fn script_errors_name_the_line() {
        for (src, needle) in [
            ("10 0", "line 1"),
            ("x 0 crash", "bad time"),
            ("10 0 slow:0.5", "slow factor"),
            ("10 0 pressure:1.5", "pressure fraction"),
            ("10 0 melt", "unknown fault"),
            ("10 0 crash extra", "expected"),
            ("-1 0 crash", "non-negative"),
        ] {
            let err = FaultSchedule::from_script(src).unwrap_err();
            assert!(err.contains(needle), "{src:?} -> {err}");
        }
    }

    #[test]
    fn script_errors_name_the_offending_token() {
        for (src, needle) in [
            ("abc 0 crash", "`abc`"),
            ("10 zz crash", "`zz`"),
            ("10 0 slow:fast", "`fast`"),
            ("10 0 melt", "`melt`"),
            ("10 0 degrade:1", "degrade:<disk>:<factor>"),
            ("10 0 degrade:x:2", "`x`"),
            ("10 0 degrade:1:0.5", "`0.5`"),
            ("10 0 error:1.5", "`1.5`"),
            ("10 @zone crash", "unknown domain `zone`"),
            ("domain z", "at least one member"),
            ("domain z 0 q", "`q`"),
            ("domain z 0\ndomain z 1", "duplicate domain"),
            ("domain z 0\n10 @z degrade:0:2", "single node"),
        ] {
            let err = FaultSchedule::from_script(src).unwrap_err();
            assert!(err.contains(needle), "{src:?} -> {err}");
        }
    }

    #[test]
    fn script_rejects_duplicate_time_node_events() {
        let err = FaultSchedule::from_script(
            "# two faults on the same node at the same instant\n\
             10 0 crash\n\
             20 1 slow:2\n\
             10 0 pressure:0.5\n",
        )
        .unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("duplicate fault"), "{err}");
        assert!(err.contains("node 0"), "{err}");
        assert!(err.contains("line 2"), "{err}");
        // A domain expansion colliding with an explicit event is caught
        // too — the diagnostic points at the domain-fault line.
        let err = FaultSchedule::from_script(
            "domain z 0 2\n\
             10 @z crash\n\
             10 2 crash\n",
        )
        .unwrap_err();
        assert!(err.contains("duplicate fault"), "{err}");
        assert!(err.contains("node 2"), "{err}");
    }

    #[test]
    fn script_domain_faults_expand_in_node_order() {
        let s = FaultSchedule::from_script(
            "domain rack0 2 0\n\
             domain rack1 1 3\n\
             100 @rack0 crash\n\
             200 @rack0 rejoin:warm\n\
             150 1 slow:2\n",
        )
        .expect("valid script");
        assert_eq!(s.len(), 5);
        assert_eq!(s.domain_event_count(), 2);
        let got: Vec<(f64, usize)> = s
            .events()
            .iter()
            .map(|e| (e.at.as_secs_f64(), e.node))
            .collect();
        assert_eq!(
            got,
            vec![(100.0, 0), (100.0, 2), (150.0, 1), (200.0, 0), (200.0, 2)]
        );
        assert_eq!(s.events()[0].fault, Fault::NodeCrash);
        assert_eq!(
            s.events()[3].fault,
            Fault::NodeRejoin {
                mode: Some(RejoinMode::Warm)
            }
        );
    }

    #[test]
    fn script_partial_faults_round_trip() {
        let s = FaultSchedule::from_script(
            "10 0 degrade:1:4\n\
             20 1 error:0.25\n",
        )
        .expect("valid script");
        assert_eq!(
            s.events()[0].fault,
            Fault::DiskDegrade {
                disk: 1,
                factor: 4.0
            }
        );
        assert_eq!(s.events()[1].fault, Fault::DiskError { rate: 0.25 });
        assert_eq!(s.max_disk(), Some(1));
        assert_eq!(s.domain_event_count(), 0);
    }

    #[test]
    fn with_domains_matches_flat_expansion_and_rejects_unknown() {
        let map = DomainMap::racks(4, 2);
        let de = vec![DomainEvent {
            at: Instant::from_secs(100.0),
            domain: "rack0".to_string(),
            fault: DomainFault::Crash,
        }];
        let s = FaultSchedule::with_domains(&map, &de, Vec::new()).expect("known domain");
        let flat = FaultSchedule::from_events(
            [0usize, 2]
                .iter()
                .map(|&node| FaultEvent {
                    at: Instant::from_secs(100.0),
                    node,
                    fault: Fault::NodeCrash,
                })
                .collect(),
        );
        assert_eq!(s.events(), flat.events());
        assert_eq!(s.domain_event_count(), 1);

        let bad = vec![DomainEvent {
            at: Instant::from_secs(1.0),
            domain: "zone-x".to_string(),
            fault: DomainFault::Crash,
        }];
        assert!(FaultSchedule::with_domains(&map, &bad, Vec::new())
            .unwrap_err()
            .contains("unknown domain"));

        // Empty map + no domain events ≡ from_events, bit for bit.
        let node_events = vec![FaultEvent {
            at: Instant::from_secs(5.0),
            node: 1,
            fault: Fault::NodeSlow { factor: 2.0 },
        }];
        let a = FaultSchedule::with_domains(&DomainMap::empty(), &[], node_events.clone())
            .expect("no domains needed");
        let b = FaultSchedule::from_events(node_events);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.domain_event_count(), 0);
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_heal() {
        let a = FaultSchedule::from_seed(42, 4, Seconds::from_hours(2.0));
        let b = FaultSchedule::from_seed(42, 4, Seconds::from_hours(2.0));
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());
        // Every episode pairs a strike with a rejoin.
        let rejoins = a
            .events()
            .iter()
            .filter(|e| matches!(e.fault, Fault::NodeRejoin { .. }))
            .count();
        assert_eq!(rejoins * 2, a.len());
        let c = FaultSchedule::from_seed(43, 4, Seconds::from_hours(2.0));
        assert_ne!(a.events(), c.events());
        // Sorted by time.
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_is_empty() {
        assert!(FaultSchedule::empty().is_empty());
        assert_eq!(FaultSchedule::empty().max_node(), None);
        assert_eq!(FaultSchedule::default().len(), 0);
    }
}
