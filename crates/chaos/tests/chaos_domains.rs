//! Correlated-failure invariants: domain schedules are bit-identical to
//! their flat expansions, partial disk faults are admission-equivalent
//! to whole-node throttles at one disk, re-replication re-admits parked
//! streams only through admission, and conservation + zero-underflow
//! hold property-tested over domain schedules × placement × failover ×
//! re-replication.

use proptest::prelude::*;
use vod_chaos::{
    run_chaos, ChaosConfig, ChaosSummary, DomainEvent, DomainFault, DomainMap, FailoverPolicy,
    Fault, FaultEvent, FaultSchedule, RecoveryPolicy,
};
use vod_cluster::{ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_core::SchemeKind;
use vod_obs::Obs;
use vod_sched::SchedulingMethod;
use vod_sim::EngineConfig;
use vod_types::{Instant, Seconds};
use vod_workload::{multi_movie, MultiMovieConfig};

fn cluster_cfg(nodes: usize, movies: usize, disks: usize) -> ClusterConfig {
    let mut engine = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);
    engine.disks = disks;
    ClusterConfig {
        nodes,
        engine,
        movies,
        movie_theta: 0.271,
        placement: PlacementPolicy::ReplicatedHot {
            replicas: 2,
            hot_movies: movies / 4,
        },
        dispatch: DispatchPolicy::LeastLoaded,
        seed: 0xd0a1,
    }
}

fn workload(movies: usize, expected: f64, seed: u64) -> vod_workload::Workload {
    let mut cfg = MultiMovieConfig::paper_cluster(movies, 0.271, expected);
    cfg.duration = Seconds::from_hours(2.0);
    cfg.peak = Seconds::from_hours(1.0);
    multi_movie(&cfg, seed).expect("valid multi-movie config")
}

fn chaos_cfg(cluster: ClusterConfig, schedule: FaultSchedule) -> ChaosConfig {
    ChaosConfig {
        cluster,
        schedule,
        failover: FailoverPolicy::Migrate,
        recovery: RecoveryPolicy::Warm,
        reseed_after: None,
    }
}

/// A domain schedule over singleton racks is *the same schedule* as the
/// hand-written flat one: the cluster report matches bit for bit and
/// the summary differs only in the domain-event count.
#[test]
fn singleton_domain_schedule_is_bit_identical_to_flat() {
    let wl = workload(16, 400.0, 9);
    let map = DomainMap::racks(4, 4); // rack_i = {node i}
    let domain_events = vec![
        DomainEvent {
            at: Instant::from_secs(1800.0),
            domain: "rack0".to_string(),
            fault: DomainFault::Crash,
        },
        DomainEvent {
            at: Instant::from_secs(4300.0),
            domain: "rack0".to_string(),
            fault: DomainFault::Rejoin { mode: None },
        },
    ];
    let domain_schedule =
        FaultSchedule::with_domains(&map, &domain_events, Vec::new()).expect("known domain");
    let flat_schedule = FaultSchedule::from_script("1800 0 crash\n4300 0 rejoin\n").expect("valid");

    let a = run_chaos(
        &chaos_cfg(cluster_cfg(4, 16, 1), domain_schedule),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    let b = run_chaos(
        &chaos_cfg(cluster_cfg(4, 16, 1), flat_schedule),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");

    assert_eq!(a.cluster, b.cluster);
    assert_eq!(a.summary.domain_faults, 2);
    assert_eq!(
        a.summary,
        ChaosSummary {
            domain_faults: 2,
            ..b.summary.clone()
        }
    );
}

/// An empty domain map with no domain events *is* `from_events`: the
/// whole run — report and summary — matches the flat run bit for bit.
#[test]
fn empty_domain_map_is_bit_identical_to_flat_schedule() {
    let wl = workload(12, 300.0, 3);
    let events = vec![FaultEvent {
        at: Instant::from_secs(2000.0),
        node: 1,
        fault: Fault::NodeSlow { factor: 3.0 },
    }];
    let with = FaultSchedule::with_domains(&DomainMap::empty(), &[], events.clone())
        .expect("no domains referenced");
    let flat = FaultSchedule::from_events(events);
    let a = run_chaos(
        &chaos_cfg(cluster_cfg(3, 12, 1), with),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    let b = run_chaos(
        &chaos_cfg(cluster_cfg(3, 12, 1), flat),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    assert_eq!(a, b);
}

/// A zone crash interrupts streams on every member node; each lands in
/// exactly one failover bucket and the run stays underflow-free.
#[test]
fn zone_crash_conserves_streams_across_members() {
    let wl = workload(16, 400.0, 11);
    let map = DomainMap::racks(4, 2); // rack0 = {0, 2}, rack1 = {1, 3}
    let domain_events = vec![
        DomainEvent {
            at: Instant::from_secs(1800.0),
            domain: "rack0".to_string(),
            fault: DomainFault::Crash,
        },
        DomainEvent {
            at: Instant::from_secs(4300.0),
            domain: "rack0".to_string(),
            fault: DomainFault::Rejoin { mode: None },
        },
    ];
    let schedule =
        FaultSchedule::with_domains(&map, &domain_events, Vec::new()).expect("known domain");
    let report = run_chaos(
        &chaos_cfg(cluster_cfg(4, 16, 1), schedule),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");

    assert_eq!(report.cluster.underflows(), 0);
    assert_eq!(report.summary.crashes, 2, "both rack members crash");
    assert_eq!(report.summary.recoveries, 2);
    assert_eq!(report.summary.domain_faults, 2);
    assert!(report.summary.interrupted > 0);
    assert_eq!(
        report.summary.interrupted,
        report.summary.migrated + report.summary.parked + report.summary.dropped
    );
}

/// The sub-budget equivalence, pinned: on a single-disk engine,
/// `degrade:0:f` and `slow:f` throttle the same admission bound, so the
/// cluster reports are bit-identical — only the fault taxonomy differs.
#[test]
fn disk_degrade_on_single_disk_equals_node_slow() {
    let wl = workload(16, 400.0, 7);
    let degrade = FaultSchedule::from_script("1800 0 degrade:0:4\n4300 0 rejoin\n").expect("valid");
    let slow = FaultSchedule::from_script("1800 0 slow:4\n4300 0 rejoin\n").expect("valid");
    let a = run_chaos(
        &chaos_cfg(cluster_cfg(4, 16, 1), degrade),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    let b = run_chaos(
        &chaos_cfg(cluster_cfg(4, 16, 1), slow),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    assert_eq!(a.cluster, b.cluster);
    assert_eq!(a.summary.disk_degradations, 1);
    assert_eq!(b.summary.slowdowns, 1);
}

/// Partial faults never down the node: a degraded or error-prone disk
/// shrinks admission capacity, availability stays 1.0, and no stream is
/// interrupted.
#[test]
fn partial_faults_keep_the_node_up() {
    let wl = workload(16, 400.0, 5);
    let schedule =
        FaultSchedule::from_script("1800 0 degrade:1:4\n2000 1 error:0.3\n5000 0 rejoin\n")
            .expect("valid");
    let report = run_chaos(
        &chaos_cfg(cluster_cfg(4, 16, 2), schedule),
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    assert_eq!(report.cluster.underflows(), 0);
    assert_eq!(report.summary.disk_degradations, 1);
    assert_eq!(report.summary.disk_errors, 1);
    assert_eq!(report.summary.interrupted, 0, "no node went down");
    assert!((report.summary.availability - 1.0).abs() < f64::EPSILON);
}

/// A degrade targeting a disk the engine does not have is a config
/// error, not a panic.
#[test]
fn out_of_range_disk_is_rejected() {
    let schedule = FaultSchedule::from_script("10 0 degrade:3:2\n").expect("parses fine");
    let err = run_chaos(
        &chaos_cfg(cluster_cfg(2, 8, 2), schedule),
        &[],
        1,
        Obs::null(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("disk 3"), "{err}");
}

/// Fault-triggered re-replication: a node down past `reseed_after` gets
/// its movies re-placed onto survivors, parked streams re-enter through
/// the new replicas' own admission, and accounting stays conservative
/// (`rereplicated ≤ parked`, still zero underflows).
#[test]
fn rereplication_rebuilds_the_lost_hot_set() {
    let wl = workload(16, 500.0, 9);
    let schedule = FaultSchedule::from_script("1800 0 crash\n").expect("valid");
    let mut cfg = chaos_cfg(cluster_cfg(4, 16, 1), schedule);
    cfg.failover = FailoverPolicy::Park;
    cfg.reseed_after = Some(Seconds::from_secs(600.0));
    let report = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid config");

    assert_eq!(report.cluster.underflows(), 0);
    assert!(
        report.summary.rereplications > 0,
        "node 0's movies must be re-placed: {:?}",
        report.summary
    );
    assert!(report.summary.rereplicated <= report.summary.parked);
    assert_eq!(
        report.summary.interrupted,
        report.summary.migrated + report.summary.parked + report.summary.dropped
    );

    // Without the horizon, nothing is rebuilt — the schedule alone does
    // not trigger re-replication.
    let mut off = run_chaos(
        &ChaosConfig {
            reseed_after: None,
            ..cfg.clone()
        },
        &wl.arrivals,
        1,
        Obs::null(),
    )
    .expect("valid config");
    assert_eq!(off.summary.rereplications, 0);
    assert_eq!(off.summary.rereplicated, 0);
    // And the reseeding run re-admits at least as many interrupted
    // streams as the non-reseeding one drops or leaves unplaceable.
    off.summary.rereplications = report.summary.rereplications;
    off.summary.rereplicated = report.summary.rereplicated;
    assert!(
        report.summary.unplaceable <= off.summary.unplaceable,
        "re-replication must not strand more streams: {} > {}",
        report.summary.unplaceable,
        off.summary.unplaceable
    );
}

fn arb_domain_fault() -> impl Strategy<Value = DomainFault> {
    prop_oneof![
        Just(DomainFault::Crash),
        (1.0f64..6.0).prop_map(|factor| DomainFault::Slow { factor }),
        Just(DomainFault::Rejoin { mode: None }),
    ]
}

fn arb_node_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::NodeCrash),
        (1.0f64..6.0).prop_map(|factor| Fault::NodeSlow { factor }),
        (0usize..2, 1.0f64..6.0).prop_map(|(disk, factor)| Fault::DiskDegrade { disk, factor }),
        (0.0f64..0.9).prop_map(|rate| Fault::DiskError { rate }),
        Just(Fault::NodeRejoin { mode: None }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole safety property under correlation: for arbitrary
    /// rack layouts, domain events, partial faults, failover policies,
    /// and re-replication horizons, no run ever underflows a buffer,
    /// every interrupted stream lands in exactly one bucket,
    /// re-admissions via rebuilt replicas stay within the parked count,
    /// and the run replays bit-identically at any job count.
    #[test]
    fn correlated_chaos_conserves_and_never_underflows(
        racks in 1usize..=3,
        domain_faults in proptest::collection::vec(
            (0.0f64..7200.0, 0usize..3, arb_domain_fault()),
            0..4,
        ),
        node_faults in proptest::collection::vec(
            (0.0f64..7200.0, 0usize..4, arb_node_fault()),
            0..4,
        ),
        failover_idx in 0usize..3,
        reseed in prop_oneof![Just(None), (300.0f64..3600.0).prop_map(Some)],
        seed in 0u64..3,
    ) {
        let map = DomainMap::racks(4, racks);
        let domain_events: Vec<DomainEvent> = domain_faults
            .into_iter()
            .map(|(t, r, fault)| DomainEvent {
                at: Instant::from_secs(t),
                domain: format!("rack{}", r % map.len()),
                fault,
            })
            .collect();
        let node_events: Vec<FaultEvent> = node_faults
            .into_iter()
            .map(|(t, node, fault)| FaultEvent {
                at: Instant::from_secs(t),
                node,
                fault,
            })
            .collect();
        let schedule = FaultSchedule::with_domains(&map, &domain_events, node_events)
            .expect("all domains exist");
        let wl = workload(12, 250.0, seed);
        let cfg = ChaosConfig {
            cluster: cluster_cfg(4, 12, 2),
            schedule,
            failover: FailoverPolicy::ALL[failover_idx],
            recovery: RecoveryPolicy::Warm,
            reseed_after: reseed.map(Seconds::from_secs),
        };
        let a = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid chaos config");
        prop_assert_eq!(a.cluster.underflows(), 0, "buffer underflow under correlated chaos");
        prop_assert_eq!(
            a.summary.interrupted,
            a.summary.migrated + a.summary.parked + a.summary.dropped,
            "every interrupted stream lands in exactly one bucket"
        );
        prop_assert!(a.summary.rereplicated <= a.summary.parked);
        prop_assert!(a.summary.availability >= 0.0 && a.summary.availability <= 1.0);
        let b = run_chaos(&cfg, &wl.arrivals, 2, Obs::null()).expect("valid chaos config");
        prop_assert_eq!(a, b);
    }
}
