//! Chaos invariants: the empty schedule is the identity, failover never
//! breaks the zero-underflow guarantee (property-tested over arbitrary
//! schedules × placement × dispatch), accounting is exact, and runs are
//! byte-identical at any job count.

use proptest::prelude::*;
use vod_chaos::{
    run_chaos, ChaosConfig, FailoverPolicy, Fault, FaultEvent, FaultSchedule, RecoveryPolicy,
};
use vod_cluster::{Cluster, ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_core::SchemeKind;
use vod_obs::Obs;
use vod_sched::SchedulingMethod;
use vod_sim::EngineConfig;
use vod_types::{Instant, Seconds};
use vod_workload::{multi_movie, MultiMovieConfig};

fn cluster_cfg(nodes: usize, movies: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        engine: EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic),
        movies,
        movie_theta: 0.271,
        placement: PlacementPolicy::ReplicatedHot {
            replicas: 2,
            hot_movies: movies / 4,
        },
        dispatch: DispatchPolicy::LeastLoaded,
        seed: 0xc8a05,
    }
}

fn workload(movies: usize, expected: f64, seed: u64) -> vod_workload::Workload {
    let mut cfg = MultiMovieConfig::paper_cluster(movies, 0.271, expected);
    cfg.duration = Seconds::from_hours(2.0);
    cfg.peak = Seconds::from_hours(1.0);
    multi_movie(&cfg, seed).expect("valid multi-movie config")
}

fn chaos_cfg(nodes: usize, movies: usize, schedule: FaultSchedule) -> ChaosConfig {
    ChaosConfig {
        cluster: cluster_cfg(nodes, movies),
        schedule,
        failover: FailoverPolicy::Migrate,
        recovery: RecoveryPolicy::Warm,
        reseed_after: None,
    }
}

/// The tentpole identity: with an empty schedule, the chaos runner *is*
/// `Cluster::run` — the cluster report matches bit for bit (stats,
/// audits, peak memory), and the summary shows an untouched cluster.
#[test]
fn empty_schedule_is_bit_identical_to_plain_run() {
    let wl = workload(16, 300.0, 5);
    let plain = Cluster::new(cluster_cfg(4, 16))
        .expect("valid cluster config")
        .run(&wl.arrivals);

    let cfg = chaos_cfg(4, 16, FaultSchedule::empty());
    let chaos = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid chaos config");

    assert_eq!(chaos.cluster, plain);
    assert_eq!(chaos.summary.faults_injected, 0);
    assert_eq!(chaos.summary.interrupted, 0);
    assert_eq!(chaos.summary.dropped, 0);
    assert_eq!(chaos.summary.unplaceable, 0);
    assert!((chaos.summary.availability - 1.0).abs() < f64::EPSILON);
    assert_eq!(chaos.summary.mean_time_to_recover_s, None);
}

/// A crash + rejoin script: zero underflows survive the failover, every
/// interrupted stream is accounted exactly once, availability dips below
/// one, and the recovery time is measured.
#[test]
fn crash_migrate_rejoin_accounts_and_stays_underflow_free() {
    let wl = workload(16, 400.0, 9);
    let schedule = FaultSchedule::from_script(
        "1800 0 crash\n\
         4300 0 rejoin:cold\n",
    )
    .expect("valid script");
    let cfg = ChaosConfig {
        recovery: RecoveryPolicy::Cold,
        ..chaos_cfg(4, 16, schedule)
    };
    let report = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid chaos config");

    assert_eq!(report.cluster.underflows(), 0, "Assumption 1 must hold");
    assert_eq!(report.summary.crashes, 1);
    assert_eq!(report.summary.recoveries, 1);
    assert_eq!(report.summary.cold_rebuilds, 1);
    assert!(
        report.summary.interrupted > 0,
        "a mid-peak crash must interrupt streams"
    );
    assert_eq!(
        report.summary.interrupted,
        report.summary.migrated + report.summary.parked + report.summary.dropped,
        "every interrupted stream lands in exactly one bucket"
    );
    assert!(report.summary.availability < 1.0);
    let ttr = report
        .summary
        .mean_time_to_recover_s
        .expect("the node rejoined");
    assert!((ttr - 2500.0).abs() < 1e-6);
}

/// The Drop policy is the lower bound: every interrupted stream is
/// dropped, none migrate or park.
#[test]
fn drop_policy_drops_every_interrupted_stream() {
    let wl = workload(16, 400.0, 9);
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        at: Instant::from_secs(1800.0),
        node: 0,
        fault: Fault::NodeCrash,
    }]);
    let cfg = ChaosConfig {
        failover: FailoverPolicy::Drop,
        ..chaos_cfg(4, 16, schedule)
    };
    let report = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid chaos config");
    assert!(report.summary.interrupted > 0);
    assert_eq!(report.summary.dropped, report.summary.interrupted);
    assert_eq!(report.summary.migrated, 0);
    assert_eq!(report.summary.parked, 0);
}

/// Chaos runs are byte-identical at any job count, like plain runs.
#[test]
fn chaos_report_is_job_count_invariant() {
    let wl = workload(16, 350.0, 13);
    let schedule = FaultSchedule::from_seed(21, 4, Seconds::from_hours(2.0));
    let cfg = chaos_cfg(4, 16, schedule);
    let a = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid chaos config");
    let b = run_chaos(&cfg, &wl.arrivals, 2, Obs::null()).expect("valid chaos config");
    assert_eq!(a, b);
}

/// A schedule referencing a node outside the cluster is a config error,
/// not a panic.
#[test]
fn out_of_range_schedule_is_rejected() {
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        at: Instant::from_secs(10.0),
        node: 7,
        fault: Fault::NodeCrash,
    }]);
    let err = run_chaos(&chaos_cfg(2, 8, schedule), &[], 1, Obs::null()).unwrap_err();
    assert!(err.to_string().contains("node 7"));
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::NodeCrash),
        (1.0f64..8.0).prop_map(|factor| Fault::NodeSlow { factor }),
        (0.0f64..=1.0).prop_map(|fraction| Fault::MemoryPressure { fraction }),
        Just(Fault::NodeRejoin { mode: None }),
    ]
}

fn arb_schedule(nodes: usize, horizon_s: f64) -> impl Strategy<Value = FaultSchedule> {
    proptest::collection::vec(
        (0.0..horizon_s, 0..nodes, arb_fault()).prop_map(|(t, node, fault)| FaultEvent {
            at: Instant::from_secs(t),
            node,
            fault,
        }),
        0..8,
    )
    .prop_map(FaultSchedule::from_events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline safety property: across arbitrary fault schedules,
    /// placement, dispatch, and failover policy, no run ever underflows
    /// a buffer — failover goes through admission, and admission
    /// enforces Assumption 1. Accounting stays exact and the run
    /// replays bit-identically.
    #[test]
    fn arbitrary_chaos_never_underflows(
        schedule in arb_schedule(3, 7200.0),
        replicas in 1usize..=3,
        dispatch_least in any::<bool>(),
        failover_idx in 0usize..3,
        seed in 0u64..4,
    ) {
        let wl = workload(12, 250.0, seed);
        let mut cluster = cluster_cfg(3, 12);
        cluster.placement = PlacementPolicy::ReplicatedHot { replicas, hot_movies: 3 };
        cluster.dispatch = if dispatch_least {
            DispatchPolicy::LeastLoaded
        } else {
            DispatchPolicy::MostHeadroom
        };
        let cfg = ChaosConfig {
            cluster,
            schedule,
            failover: FailoverPolicy::ALL[failover_idx],
            recovery: RecoveryPolicy::Warm,
            reseed_after: None,
        };
        let a = run_chaos(&cfg, &wl.arrivals, 1, Obs::null()).expect("valid chaos config");
        prop_assert_eq!(a.cluster.underflows(), 0, "buffer underflow under chaos");
        prop_assert_eq!(
            a.summary.interrupted,
            a.summary.migrated + a.summary.parked + a.summary.dropped
        );
        prop_assert!(a.summary.availability >= 0.0 && a.summary.availability <= 1.0);
        let b = run_chaos(&cfg, &wl.arrivals, 2, Obs::null()).expect("valid chaos config");
        prop_assert_eq!(a, b);
    }
}
