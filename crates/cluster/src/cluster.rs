//! The cluster front end: N independent node engines behind placement,
//! replica selection, and overflow redirection.
//!
//! # Determinism contract
//!
//! A run is a pure function of `(config, trace)`:
//!
//! * nodes are stepped in **fixed index order** before every dispatch,
//!   so inter-node event interleaving is not a source of nondeterminism;
//! * all policy decisions read node state that is itself deterministic,
//!   and `RandomOfK` draws from one seeded RNG in dispatch order;
//! * the parallel drain (`jobs > 1`) claims nodes from an atomic counter
//!   but merges results **by node index**, so any job count produces the
//!   byte-identical report (the PR 3 bench-matrix pattern).
//!
//! With one node and [`PlacementPolicy::PassThrough`], the front end
//! reduces to `advance_to` + `offer` + `finish` on a single engine —
//! bit-identical to [`DiskEngine::run`] (pinned by a test).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vod_obs::metrics::{
    per_node, CTR_AUDIT_VIOLATIONS, CTR_CLUSTER_DISPATCHED, CTR_CLUSTER_QUEUED,
    CTR_CLUSTER_REDIRECTED, GAUGE_CLUSTER_IMBALANCE, GAUGE_CLUSTER_MEM_PEAK, GAUGE_CLUSTER_NODES,
};
use vod_obs::span::{
    mix64, AnnoValue, SpanId, SpanKind, SpanStatus, TraceId, SEQ_DISPATCH, SEQ_HOP_DISPATCH,
    SEQ_HOP_RETRY, SEQ_RETRY,
};
use vod_obs::timeseries::{cluster_series, Series, SeriesRecorder};
use vod_obs::Obs;
use vod_sim::{evaluate_audits, DiskEngine, EngineConfig, EvictedStream};
use vod_types::{ConfigError, Instant};
use vod_workload::{Arrival, Zipf};

use crate::dispatch::DispatchPolicy;
use crate::placement::{Placement, PlacementPolicy};
use crate::report::{ClusterReport, NodeReport};

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes. Each runs an independent [`DiskEngine`] built
    /// from `engine` (own admission controller, estimator, budget).
    pub nodes: usize,
    /// The per-node engine configuration.
    pub engine: EngineConfig,
    /// Catalog size: movies are `VideoId(0..movies)`.
    pub movies: usize,
    /// Zipf skew of catalog popularity (drives placement ranking).
    pub movie_theta: f64,
    /// Movie → replica-set policy.
    pub placement: PlacementPolicy,
    /// Replica-selection policy.
    pub dispatch: DispatchPolicy,
    /// Seed for `RandomOfK` draws (unused by deterministic policies,
    /// but part of the config so every run is seed-addressable).
    pub seed: u64,
}

/// One node: its engine plus front-end accounting.
struct Node {
    engine: DiskEngine,
    dispatched: u64,
    redirected_in: u64,
    redirected_out: u64,
    /// Arrival instants offered to this node (push order; sorted at
    /// finish time — retries land out of order). Fuels per-node audit
    /// scoring: the node's estimator only ever saw these arrivals.
    offered_times: Vec<Instant>,
    /// Front-end series handles (load, redirections), when attached.
    series: Option<NodeFrontSeries>,
    /// Chaos flag: a crashed node is excluded from every routing
    /// decision (dispatch scan, overflow retry, flush) until it
    /// rejoins. Always `false` without an active fault schedule, so the
    /// healthy path takes bit-identical branches.
    down: bool,
}

/// Per-node front-end time-series handles (the node engine's own cycle
/// series attach separately via [`DiskEngine::set_series_recorder`]).
struct NodeFrontSeries {
    load: Arc<Series>,
    redirections: Arc<Series>,
}

/// An arrival that overflowed every replica, parked cluster-wide.
struct Parked {
    arrival: Arrival,
    /// Preference order captured at dispatch time (primary first).
    candidates: Vec<usize>,
    /// The lifecycle trace minted at dispatch (observability only).
    trace: TraceId,
    /// True for failover-parked migrants (streams interrupted by a
    /// crash), false for fresh arrivals that overflowed. Re-replication
    /// accounting only counts migrants re-admitted via a rebuilt
    /// replica.
    migrant: bool,
}

/// Scope salt separating front-end-minted request traces from the
/// per-node engine scopes derived under the same cluster seed.
const CLUSTER_TRACE_SCOPE: u64 = 0x0063_6c75_7374; // "clust"

/// The cluster front end. Build with [`Cluster::new`] /
/// [`Cluster::with_observer`], then consume with [`Cluster::run`].
pub struct Cluster {
    cfg: ClusterConfig,
    placement: Placement,
    nodes: Vec<Node>,
    queue: VecDeque<Parked>,
    rng: SmallRng,
    obs: Obs,
    dispatched: u64,
    redirected: u64,
    overflow_queued: u64,
    /// Cluster-scope imbalance-ratio series, when attached.
    imbalance_series: Option<Arc<Series>>,
    /// `(video, node)` pairs added by fault-triggered re-replication
    /// ([`Self::rereplicate`]). Empty on the healthy path, so the
    /// overflow retry pays one `is_empty` check and nothing else.
    fresh_replicas: Vec<(vod_types::VideoId, usize)>,
    /// Failover-parked migrants re-admitted through a rebuilt replica's
    /// own admission controller.
    rereplicated: u64,
}

impl Cluster {
    /// Builds a cluster with the historical default observer (see
    /// [`DiskEngine::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn new(cfg: ClusterConfig) -> Result<Self, ConfigError> {
        Self::with_observer(cfg, Obs::from_env())
    }

    /// Builds a cluster whose nodes all emit into `obs` (shared event
    /// sink and metrics registry; per-node counters are written under
    /// `vod_cluster_node<i>_*` names at the end of the run).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn with_observer(cfg: ClusterConfig, obs: Obs) -> Result<Self, ConfigError> {
        if cfg.nodes == 0 {
            return Err(ConfigError::new("cluster_nodes", "must be at least 1"));
        }
        let popularity = Zipf::new(cfg.movies, cfg.movie_theta)?;
        let placement = Placement::build(cfg.placement, popularity.probabilities(), cfg.nodes)?;
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let mut engine = DiskEngine::with_observer(cfg.engine.clone(), obs.clone())?;
            // Distinct trace scope per node: engine-scoped spans (cycle
            // spans) from different nodes never collide in the shared
            // sink. Observability only.
            engine.set_trace_scope(cfg.seed ^ mix64(i as u64));
            nodes.push(Node {
                engine,
                dispatched: 0,
                redirected_in: 0,
                redirected_out: 0,
                offered_times: Vec::new(),
                series: None,
                down: false,
            });
        }
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Ok(Cluster {
            cfg,
            placement,
            nodes,
            queue: VecDeque::new(),
            rng,
            obs,
            dispatched: 0,
            redirected: 0,
            overflow_queued: 0,
            imbalance_series: None,
            fresh_replicas: Vec::new(),
            rereplicated: 0,
        })
    }

    /// Forwards [`vod_sim::DiskEngine::set_per_cycle_tracing`] to every
    /// node: with `false`, traced runs keep first-fill service spans but
    /// skip steady-state per-cycle ones (the cluster bench's trace mode —
    /// full per-cycle detail would swamp a bounded recorder on long
    /// horizons). Emission-only; results are identical either way.
    pub fn set_per_cycle_tracing(&mut self, on: bool) {
        for node in &mut self.nodes {
            node.engine.set_per_cycle_tracing(on);
        }
    }

    /// Attaches time-series recorders: `cluster` receives the
    /// cluster-scope imbalance-ratio series (one sample per dispatched
    /// arrival) and `nodes[i]` receives node `i`'s front-end series
    /// (offered load and cumulative redirections, one sample per offer)
    /// *plus* the node engine's five cycle-boundary series
    /// ([`vod_sim::DiskEngine::set_series_recorder`]). Observation-only,
    /// like every other recorder: results are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one recorder per node is supplied.
    pub fn set_series_recorders(
        &mut self,
        cluster: &SeriesRecorder,
        nodes: &[Arc<SeriesRecorder>],
    ) {
        assert_eq!(
            nodes.len(),
            self.nodes.len(),
            "one series recorder per node"
        );
        self.imbalance_series = Some(cluster.series(cluster_series::IMBALANCE_RATIO));
        for (node, rec) in self.nodes.iter_mut().zip(nodes) {
            node.engine.set_series_recorder(rec);
            node.series = Some(NodeFrontSeries {
                load: rec.series(cluster_series::NODE_LOAD),
                redirections: rec.series(cluster_series::NODE_REDIRECTIONS),
            });
        }
    }

    /// Books one offer to node `ni`: front-end accounting, the engine
    /// hand-off, and (when attached) the node's front-end series sample.
    fn offer_to(&mut self, ni: usize, a: &Arrival, trace: TraceId) {
        let node = &mut self.nodes[ni];
        node.dispatched += 1;
        node.offered_times.push(a.at);
        node.engine.offer_traced(a, trace);
        if let Some(s) = &node.series {
            let t = a.at.as_secs_f64();
            s.load.push(t, node.engine.offered() as f64);
            s.redirections
                .push(t, (node.redirected_in + node.redirected_out) as f64);
        }
    }

    /// Samples the cluster-scope imbalance series (busiest node's
    /// dispatched count over the mean), if attached. One sample per
    /// front-end dispatch, indexed by dispatch count.
    fn sample_imbalance(&self, at: Instant) {
        let Some(series) = &self.imbalance_series else {
            return;
        };
        let total: u64 = self.nodes.iter().map(|n| n.dispatched).sum();
        let value = if total == 0 {
            1.0
        } else {
            let max = self.nodes.iter().map(|n| n.dispatched).max().unwrap_or(0);
            max as f64 / (total as f64 / self.nodes.len() as f64)
        };
        series.push(at.as_secs_f64(), value);
    }

    /// Runs the cluster over a time-sorted trace, draining nodes
    /// sequentially. Equivalent to `run_with_jobs(arrivals, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not time-sorted.
    #[must_use]
    pub fn run(self, arrivals: &[Arrival]) -> ClusterReport {
        self.run_with_jobs(arrivals, 1)
    }

    /// Runs the cluster over a time-sorted trace. `jobs > 1` drains the
    /// node engines on a scoped thread pool after the last arrival;
    /// results merge by node index, so the report is byte-identical at
    /// any job count.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not time-sorted.
    #[must_use]
    pub fn run_with_jobs(mut self, arrivals: &[Arrival], jobs: usize) -> ClusterReport {
        assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival trace must be time-sorted"
        );
        for a in arrivals {
            self.advance_nodes_to(a.at);
            self.step_arrival(a);
        }
        self.finish_run(jobs)
    }

    // ---------- steppable front-end API ----------
    //
    // `run_with_jobs` is literally these three calls in a loop, so an
    // external driver (the chaos runner) interleaving fault injections
    // between them reduces *exactly* to the plain run when its schedule
    // is empty — the empty-schedule identity is structural, not tested
    // into existence.

    /// Advances every node engine to `at` in fixed index order, so every
    /// routing decision reads caught-up state. Crashed nodes advance too
    /// (their empty engines just move the clock), keeping the round
    /// order identical with and without faults.
    pub fn advance_nodes_to(&mut self, at: Instant) {
        for node in &mut self.nodes {
            node.engine.advance_to(at);
        }
    }

    /// The per-arrival front-end step: overflow retry (strict FIFO),
    /// dispatch, and the imbalance sample. The caller must have advanced
    /// the nodes to `a.at` first (see [`Self::advance_nodes_to`]).
    pub fn step_arrival(&mut self, a: &Arrival) {
        self.retry_overflow_queue(a.at);
        self.dispatch(a);
        self.sample_imbalance(a.at);
    }

    /// End of trace: park nothing forever — hand stragglers to their
    /// least-loaded candidate and let that node's own admission queue
    /// own the wait — then drain every node and assemble the report.
    #[must_use]
    pub fn finish_run(mut self, jobs: usize) -> ClusterReport {
        self.flush_overflow_queue();
        self.finish(jobs)
    }

    /// Routes one arrival: straight to the owner when it has a single
    /// replica (exactly a single-node `run` would); otherwise pre-flight
    /// the policy's preference order and redirect overflow to siblings,
    /// parking cluster-wide when every replica is saturated.
    fn dispatch(&mut self, a: &Arrival) {
        self.dispatched += 1;
        // The request's cluster-wide trace: purely derived from (seed,
        // dispatch index), so the id sequence never depends on whether a
        // sink is attached. The same trace follows the request through
        // hops, parking, and the node engine's own spans.
        let trace = TraceId::derive(self.cfg.seed ^ CLUSTER_TRACE_SCOPE, self.dispatched - 1);
        let replicas = self.placement.replicas_of(a.video).to_vec();
        assert!(
            !replicas.is_empty(),
            "arrival references video {} outside the placed catalog of {} movies",
            a.video,
            self.placement.movies()
        );
        if replicas.len() == 1 {
            let ni = replicas[0];
            if self.nodes[ni].down {
                // The only replica is crashed: park until it rejoins
                // (or the end-of-trace flush / chaos drop sweep).
                self.park(a, vec![ni], trace, false);
                return;
            }
            self.trace_dispatch(a.at, trace, ni);
            self.offer_to(ni, a, trace);
            return;
        }
        let order = self.preference_order(&replicas, a.at);
        let primary = order[0];
        for (rank, &ni) in order.iter().enumerate() {
            if !self.nodes[ni].down && self.nodes[ni].engine.would_accept(a.at) {
                self.trace_dispatch(a.at, trace, ni);
                if rank > 0 {
                    self.redirected += 1;
                    self.nodes[primary].redirected_out += 1;
                    self.nodes[ni].redirected_in += 1;
                    self.trace_hop(a.at, trace, SEQ_HOP_DISPATCH, SEQ_DISPATCH, primary, ni);
                }
                self.offer_to(ni, a, trace);
                return;
            }
        }
        // Every replica would defer or reject: queue cluster-wide and
        // retry at the next dispatch instant.
        self.park(a, order, trace, false);
    }

    /// Parks one arrival cluster-wide with its candidate preference
    /// order, emitting the `Parked` dispatch span (an anomaly trigger
    /// for the flight recorder).
    fn park(&mut self, a: &Arrival, candidates: Vec<usize>, trace: TraceId, migrant: bool) {
        self.overflow_queued += 1;
        if self.obs.tracing() {
            let sp = SpanId::derive(trace, SEQ_DISPATCH);
            self.obs
                .span_start(a.at, trace, sp, None, SpanKind::Dispatch);
            self.obs.span_annotate(
                a.at,
                trace,
                sp,
                "candidates",
                AnnoValue::U64(candidates.len() as u64),
            );
            self.obs.span_end(a.at, trace, sp, SpanStatus::Parked);
        }
        self.queue.push_back(Parked {
            arrival: *a,
            candidates,
            trace,
            migrant,
        });
    }

    /// Emits the (instantaneous) dispatch span: the routing decision
    /// that sent the arrival to `node`.
    fn trace_dispatch(&self, at: Instant, trace: TraceId, node: usize) {
        if self.obs.tracing() {
            let sp = SpanId::derive(trace, SEQ_DISPATCH);
            self.obs.span_start(at, trace, sp, None, SpanKind::Dispatch);
            self.obs
                .span_annotate(at, trace, sp, "node", AnnoValue::U64(node as u64));
            self.obs.span_end(at, trace, sp, SpanStatus::Ok);
        }
    }

    /// Emits one redirection-hop span (exactly one per counted redirect,
    /// so the analyzer can reconcile hop spans against the
    /// `redirected_in`/`redirected_out` counters).
    fn trace_hop(
        &self,
        at: Instant,
        trace: TraceId,
        seq: u64,
        parent_seq: u64,
        from: usize,
        to: usize,
    ) {
        if self.obs.tracing() {
            let sp = SpanId::derive(trace, seq);
            let parent = SpanId::derive(trace, parent_seq);
            self.obs
                .span_start(at, trace, sp, Some(parent), SpanKind::Hop);
            self.obs
                .span_annotate(at, trace, sp, "from_node", AnnoValue::U64(from as u64));
            self.obs
                .span_annotate(at, trace, sp, "to_node", AnnoValue::U64(to as u64));
            self.obs.span_end(at, trace, sp, SpanStatus::Ok);
        }
    }

    /// The policy's preference order over the replica set (primary
    /// first). Pure given node state + the seeded RNG cursor.
    fn preference_order(&mut self, replicas: &[usize], now: Instant) -> Vec<usize> {
        let mut order = replicas.to_vec();
        match self.cfg.dispatch {
            DispatchPolicy::LeastLoaded => {
                order.sort_by_key(|&ni| (self.nodes[ni].engine.offered(), ni));
            }
            DispatchPolicy::MostHeadroom => {
                let mut keyed: Vec<(f64, usize)> = order
                    .iter()
                    .map(|&ni| (self.nodes[ni].engine.memory_headroom(now), ni))
                    .collect();
                keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                order.clear();
                order.extend(keyed.iter().map(|&(_, ni)| ni));
            }
            DispatchPolicy::RandomOfK { k } => {
                // Partial Fisher–Yates: the first k entries become the
                // sample, ordered least-loaded; the unsampled tail keeps
                // replica order as overflow fallbacks.
                let k = k.clamp(1, order.len());
                for i in 0..k {
                    let j = i + self.rng.gen_range(0..order.len() - i);
                    order.swap(i, j);
                }
                let (sample, _) = order.split_at_mut(k);
                sample.sort_by_key(|&ni| (self.nodes[ni].engine.offered(), ni));
            }
        }
        order
    }

    /// Retries parked arrivals at a dispatch instant, strictly FIFO: the
    /// head unblocks first or nothing does (so redirection interleavings
    /// cannot starve an older request behind a younger one).
    fn retry_overflow_queue(&mut self, now: Instant) {
        while let Some(head) = self.queue.front() {
            let Some(target) = head
                .candidates
                .iter()
                .copied()
                .find(|&ni| !self.nodes[ni].down && self.nodes[ni].engine.would_accept(now))
            else {
                return;
            };
            let head = self.queue.pop_front().expect("front exists");
            if head.migrant
                && !self.fresh_replicas.is_empty()
                && self.fresh_replicas.contains(&(head.arrival.video, target))
            {
                self.rereplicated += 1;
            }
            if self.obs.tracing() {
                let sp = SpanId::derive(head.trace, SEQ_RETRY);
                self.obs
                    .span_start(now, head.trace, sp, None, SpanKind::Dispatch);
                self.obs
                    .span_annotate(now, head.trace, sp, "node", AnnoValue::U64(target as u64));
                self.obs.span_end(now, head.trace, sp, SpanStatus::Ok);
            }
            if target != head.candidates[0] {
                self.redirected += 1;
                self.nodes[head.candidates[0]].redirected_out += 1;
                self.nodes[target].redirected_in += 1;
                self.trace_hop(
                    now,
                    head.trace,
                    SEQ_HOP_RETRY,
                    SEQ_RETRY,
                    head.candidates[0],
                    target,
                );
            }
            self.offer_to(target, &head.arrival, head.trace);
        }
    }

    /// Hands every still-parked arrival to its least-loaded candidate
    /// unconditionally (end of trace: no further retry instants exist).
    fn flush_overflow_queue(&mut self) {
        while let Some(parked) = self.queue.pop_front() {
            // Crashed candidates are skipped; the chaos runner sweeps
            // all-candidates-down entries out before finishing, and with
            // no faults the filter keeps every candidate, so the healthy
            // path is unchanged. The unfiltered fallback only guards an
            // external driver that forgot the sweep.
            let target = parked
                .candidates
                .iter()
                .copied()
                .filter(|&ni| !self.nodes[ni].down)
                .min_by_key(|&ni| (self.nodes[ni].engine.offered(), ni))
                .or_else(|| {
                    parked
                        .candidates
                        .iter()
                        .copied()
                        .min_by_key(|&ni| (self.nodes[ni].engine.offered(), ni))
                })
                .expect("replica candidates are non-empty");
            if self.obs.tracing() {
                // A flush is not a counted redirect (no hop span): the
                // cluster stops routing and hands the wait to the node's
                // own admission queue.
                let at = parked.arrival.at;
                let sp = SpanId::derive(parked.trace, SEQ_RETRY);
                self.obs
                    .span_start(at, parked.trace, sp, None, SpanKind::Dispatch);
                self.obs
                    .span_annotate(at, parked.trace, sp, "node", AnnoValue::U64(target as u64));
                self.obs
                    .span_annotate(at, parked.trace, sp, "flush", AnnoValue::U64(1));
                self.obs.span_end(at, parked.trace, sp, SpanStatus::Ok);
            }
            self.offer_to(target, &parked.arrival, parked.trace);
        }
    }

    // ---------- chaos hooks ----------
    //
    // Everything below is driven by `vod-chaos`; none of it runs (and
    // `down` never flips) without an active fault schedule.

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A handle to the observer every node emits into — the chaos runner
    /// emits its fault/failover events and spans through the same sink.
    #[must_use]
    pub fn observer(&self) -> Obs {
        self.obs.clone()
    }

    /// The configured run seed (trace ids for chaos-minted failover
    /// traces derive from it under their own scope salt).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// True while node `ni` is crashed (excluded from routing).
    #[must_use]
    pub fn is_down(&self, ni: usize) -> bool {
        self.nodes[ni].down
    }

    /// The replica set placement assigned to `video` (primary first).
    #[must_use]
    pub fn replicas_of(&self, video: vod_types::VideoId) -> &[usize] {
        self.placement.replicas_of(video)
    }

    /// Total load (in-service + queued) offered to node `ni` — what a
    /// failover policy ranks siblings by.
    #[must_use]
    pub fn node_offered(&self, ni: usize) -> usize {
        self.nodes[ni].engine.offered()
    }

    /// Pre-flight for failover routing: is `ni` up *and* would it accept
    /// an arrival at `now` under its admission rules (Assumption 1
    /// included)?
    pub fn node_would_accept(&mut self, ni: usize, now: Instant) -> bool {
        !self.nodes[ni].down && self.nodes[ni].engine.would_accept(now)
    }

    /// Crashes node `ni`: evicts every active stream and queued request
    /// from its engine (see [`DiskEngine::evict_all`]) and marks it
    /// down. The caller owns what happens to the evicted streams.
    pub fn crash_node(&mut self, ni: usize) -> Vec<EvictedStream> {
        self.nodes[ni].down = true;
        self.nodes[ni].engine.evict_all()
    }

    /// Throttles node `ni`'s admission capacity and memory budget (both
    /// factors in `[0, 1]`; `1.0` = healthy). See
    /// [`DiskEngine::set_capacity_factor`] / [`DiskEngine::set_memory_factor`].
    pub fn throttle_node(&mut self, ni: usize, capacity: f64, memory: f64) {
        self.nodes[ni].engine.set_capacity_factor(capacity);
        self.nodes[ni].engine.set_memory_factor(memory);
    }

    /// Degrades one disk of node `ni` to `fraction` of its capacity
    /// share (see [`DiskEngine::set_disk_factor`]) — a partial fault:
    /// the node stays up and routable, only its admission bound shrinks
    /// by the degraded share.
    pub fn degrade_disk(&mut self, ni: usize, disk: usize, fraction: f64) {
        self.nodes[ni].engine.set_disk_factor(disk, fraction);
    }

    /// Sets node `ni`'s deterministic disk error rate (see
    /// [`DiskEngine::set_error_rate`]): a rate `r` multiplies the
    /// admission bound by `1 − r`.
    pub fn set_disk_error(&mut self, ni: usize, rate: f64) {
        self.nodes[ni].engine.set_error_rate(rate);
    }

    /// Number of disks each node's engine is configured with (partial
    /// disk faults must target an existing disk).
    #[must_use]
    pub fn disks_per_node(&self) -> usize {
        self.cfg.engine.disks
    }

    /// Rejoins node `ni`: marks it up and clears every throttle —
    /// whole-node and per-disk. The caller re-admits parked streams via
    /// [`Self::retry_parked`].
    pub fn rejoin_node(&mut self, ni: usize) {
        self.nodes[ni].down = false;
        self.nodes[ni].engine.clear_throttles();
    }

    /// Retries the overflow queue at `now` outside an arrival step — the
    /// re-admission pass a rejoin triggers. Strict FIFO, like every
    /// retry.
    pub fn retry_parked(&mut self, now: Instant) {
        self.retry_overflow_queue(now);
    }

    /// Offers one migrated stream to node `ni`, with the same per-node
    /// accounting as a dispatched arrival (node dispatch count, offered
    /// times, series). Does *not* advance the cluster-wide `dispatched`
    /// counter — migrants are re-placements, not new front-end arrivals.
    pub fn offer_migrant(&mut self, ni: usize, a: &Arrival, trace: TraceId) {
        self.offer_to(ni, a, trace);
    }

    /// Parks one migrated stream cluster-wide with an explicit candidate
    /// order (sibling replicas of the crashed node). It re-enters
    /// service through the normal overflow retry path.
    pub fn park_migrant(&mut self, a: &Arrival, candidates: Vec<usize>, trace: TraceId) {
        self.park(a, candidates, trace, true);
    }

    /// Re-replication hook: adds `ni` to `video`'s replica set and
    /// extends matching parked entries' candidate lists, so the rebuilt
    /// replica is reachable by the normal strict-FIFO retry — parked
    /// streams re-enter through the new replica's *own* admission
    /// controller, never around it. Returns `false` when `ni` already
    /// holds a replica (nothing to rebuild).
    pub fn rereplicate(&mut self, video: vod_types::VideoId, ni: usize) -> bool {
        if !self.placement.add_replica(video, ni) {
            return false;
        }
        self.fresh_replicas.push((video, ni));
        for p in &mut self.queue {
            if p.arrival.video == video && !p.candidates.contains(&ni) {
                p.candidates.push(ni);
            }
        }
        true
    }

    /// Failover-parked migrants re-admitted through a rebuilt replica
    /// (see [`Self::rereplicate`]); zero without re-replication.
    #[must_use]
    pub fn rereplicated_streams(&self) -> u64 {
        self.rereplicated
    }

    /// Sweeps parked entries whose every candidate is down (they cannot
    /// be flushed anywhere at end of run) and returns how many were
    /// dropped. The chaos runner calls this before [`Self::finish_run`]
    /// and accounts the drops; with no faults it is a no-op.
    pub fn drop_unplaceable_parked(&mut self) -> u64 {
        let before = self.queue.len();
        let nodes = &self.nodes;
        self.queue
            .retain(|p| p.candidates.iter().any(|&ni| !nodes[ni].down));
        (before - self.queue.len()) as u64
    }

    /// Drains every node engine and assembles the report, then writes
    /// the cluster-wide and per-node metrics into the shared registry.
    fn finish(self, jobs: usize) -> ClusterReport {
        let Cluster {
            cfg,
            nodes,
            obs,
            dispatched,
            redirected,
            overflow_queued,
            ..
        } = self;

        let mut accounted = Vec::with_capacity(nodes.len());
        let mut engines = Vec::with_capacity(nodes.len());
        for n in nodes {
            let mut times = n.offered_times;
            // Overflow retries offer old arrivals at later instants, so
            // push order is not time order; audit scoring needs sorted.
            times.sort_unstable();
            accounted.push((n.dispatched, n.redirected_in, n.redirected_out, times));
            engines.push(n.engine);
        }
        let stats = drain_engines(engines, jobs);

        let node_reports: Vec<NodeReport> = stats
            .into_iter()
            .zip(&accounted)
            .enumerate()
            .map(|(i, (stats, (dispatched, rin, rout, times)))| {
                // Score each node's estimator against the arrivals *it*
                // saw — redirection means the cluster trace is not any
                // single node's arrival stream.
                let audit = evaluate_audits(&stats.audits, times);
                NodeReport {
                    node: i,
                    dispatched: *dispatched,
                    redirected_in: *rin,
                    redirected_out: *rout,
                    audit,
                    stats,
                }
            })
            .collect();
        let report = ClusterReport {
            nodes: node_reports,
            dispatched,
            redirected,
            overflow_queued,
        };

        let m = obs.metrics();
        m.counter(CTR_CLUSTER_DISPATCHED).add(report.dispatched);
        m.counter(CTR_CLUSTER_REDIRECTED).add(report.redirected);
        m.counter(CTR_CLUSTER_QUEUED).add(report.overflow_queued);
        m.gauge(GAUGE_CLUSTER_NODES).set(cfg.nodes as f64);
        m.gauge(GAUGE_CLUSTER_IMBALANCE)
            .set(report.imbalance_ratio());
        m.gauge(GAUGE_CLUSTER_MEM_PEAK)
            .set(report.peak_memory_bits());
        for n in &report.nodes {
            m.counter(&per_node(n.node, "dispatched_total"))
                .add(n.dispatched);
            m.counter(&per_node(n.node, "admitted_total"))
                .add(n.stats.admitted);
            m.counter(&per_node(n.node, "deferred_total"))
                .add(n.stats.deferrals);
            m.counter(&per_node(n.node, "rejected_total"))
                .add(n.stats.rejected);
            m.counter(&per_node(n.node, "redirected_in_total"))
                .add(n.redirected_in);
            m.counter(&per_node(n.node, "redirected_out_total"))
                .add(n.redirected_out);
            m.gauge(&per_node(n.node, "mem_peak_bits"))
                .set(n.stats.peak_memory.as_f64());
        }
        m.counter(CTR_AUDIT_VIOLATIONS)
            .add(report.audit_violations());
        report
    }
}

/// Drains engines to completion. `jobs <= 1` runs in index order on the
/// calling thread; otherwise a scoped pool claims node indices from an
/// atomic counter and writes each result into its own slot — collection
/// is by index, so the output is identical at any job count.
fn drain_engines(engines: Vec<DiskEngine>, jobs: usize) -> Vec<vod_sim::DiskRunStats> {
    if jobs <= 1 || engines.len() <= 1 {
        return engines.into_iter().map(DiskEngine::finish).collect();
    }
    let n = engines.len();
    let slots: Vec<Mutex<Option<vod_sim::DiskRunStats>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<DiskEngine>>> =
        engines.into_iter().map(|e| Mutex::new(Some(e))).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let engine = work[i]
                    .lock()
                    .expect("engine slot mutex poisoned: a drain worker panicked")
                    .take()
                    .expect("each node index is claimed exactly once");
                let stats = engine.finish();
                *slots[i]
                    .lock()
                    .expect("result slot mutex poisoned: a drain worker panicked") = Some(stats);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot mutex poisoned: a drain worker panicked")
                .unwrap_or_else(|| panic!("node {i} produced no drain result"))
        })
        .collect()
}
