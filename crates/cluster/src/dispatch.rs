//! Replica selection: which holding node an arrival is routed to.
//!
//! A policy produces a deterministic *preference order* over the
//! replica set; the dispatcher offers the arrival to the first node
//! whose pre-flight check passes and treats the rest as overflow
//! fallbacks (see `cluster.rs`). `RandomOfK` consumes the cluster's
//! seeded RNG once per multi-replica dispatch, so its draw sequence —
//! and therefore the whole run — is a function of the seed alone.

/// How a replica-holding node is chosen for each arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// The node with the fewest offered streams (in service + queued);
    /// ties break toward the lower node index.
    LeastLoaded,
    /// The node with the most memory headroom under its budget, using
    /// the node's own `BS_k(n)` table to price the marginal stream
    /// (unbounded nodes rank by cheapest marginal reservation).
    MostHeadroom,
    /// Classic power-of-d-choices: sample `k` distinct replicas with the
    /// cluster RNG, then take the least-loaded of the sample. Unsampled
    /// replicas remain as overflow fallbacks after the sample.
    RandomOfK {
        /// Sample size (clamped to the replica-set size).
        k: usize,
    },
}

impl DispatchPolicy {
    /// Stable label used in bench cells and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DispatchPolicy::LeastLoaded => "least_loaded",
            DispatchPolicy::MostHeadroom => "most_headroom",
            DispatchPolicy::RandomOfK { .. } => "random_of_k",
        }
    }
}
