//! A sharded multi-node VOD cluster over per-node dynamic buffer
//! allocation.
//!
//! The paper sizes buffers and admits streams for a *single* server;
//! this crate composes N of those servers — each a full
//! [`vod_sim::DiskEngine`] with its own admission controller, `k_log`
//! estimator, and memory budget — behind a front end that owns three
//! concerns the paper leaves to "the system":
//!
//! 1. **Catalog placement** ([`placement`]): which nodes hold each
//!    movie — round-robin, Zipf-aware serpentine striping, or a
//!    replicated hot set with a configurable replication factor.
//! 2. **Replica selection** ([`dispatch`]): which holding node an
//!    arrival is routed to — least-loaded, most-memory-headroom (priced
//!    by the node's own `BS_k(n)` table), or random-of-k.
//! 3. **Overflow redirection** ([`cluster`]): when the chosen node's
//!    admission controller would defer (Assumption-1 enforcement), the
//!    dispatcher retries sibling replicas before parking the request in
//!    a cluster-wide FIFO, and accounts redirections per node.
//!
//! Runs are deterministic: nodes step in fixed index order, policy
//! randomness comes from one seeded RNG, and the parallel drain merges
//! by node index — byte-identical at any job count. A 1-node
//! pass-through cluster is bit-identical to a bare engine `run`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dispatch;
pub mod placement;
pub mod report;

pub use cluster::{Cluster, ClusterConfig};
pub use dispatch::DispatchPolicy;
pub use placement::{Placement, PlacementPolicy};
pub use report::{ClusterReport, NodeReport};
