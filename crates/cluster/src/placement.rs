//! Catalog placement: which nodes hold a replica of each movie.
//!
//! Placement is computed once, up front, from the catalog's popularity
//! distribution — the cluster analogue of laying videos out on disks
//! before opening the doors. Every policy is a pure function of
//! `(policy, popularity, nodes)`, so placement never perturbs run
//! determinism.

use vod_types::{ConfigError, VideoId};

/// How movies are assigned to nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Every movie on node 0 only. With one node this makes the cluster
    /// a transparent wrapper around a single [`vod_sim::DiskEngine`]
    /// (the bit-identity baseline); with more it deliberately degrades.
    PassThrough,
    /// Movie rank `r` on node `r mod N`: popularity-oblivious striping.
    RoundRobin,
    /// Zipf-aware popularity striping: ranks are dealt in serpentine
    /// (boustrophedon) order — `0,1,…,N−1, N−1,…,1,0, …` — so every node
    /// receives one movie from each popularity band and expected load
    /// balances even under a skewed catalog.
    ZipfStripe,
    /// The `hot_movies` most popular ranks get `replicas` copies on
    /// consecutive nodes (rotating start), enabling overflow
    /// redirection for exactly the titles that saturate a node; the
    /// cold tail falls back to serpentine striping.
    ReplicatedHot {
        /// Copies of each hot movie (≥ 2 to enable redirection).
        replicas: usize,
        /// How many top ranks count as hot.
        hot_movies: usize,
    },
}

impl PlacementPolicy {
    /// Stable label used in bench cells and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::PassThrough => "pass_through",
            PlacementPolicy::RoundRobin => "round_robin",
            PlacementPolicy::ZipfStripe => "zipf_stripe",
            PlacementPolicy::ReplicatedHot { .. } => "replicated_hot",
        }
    }
}

/// The materialized movie → replica-set map.
#[derive(Clone, Debug)]
pub struct Placement {
    /// `replicas[movie]` lists the holding nodes, preference order first.
    replicas: Vec<Vec<usize>>,
}

/// The node holding serpentine-striped rank `rank` among `nodes`.
fn serpentine(rank: usize, nodes: usize) -> usize {
    let pass = rank / nodes;
    let off = rank % nodes;
    if pass.is_multiple_of(2) {
        off
    } else {
        nodes - 1 - off
    }
}

impl Placement {
    /// Builds the placement for `movies` ranks over `nodes` nodes.
    /// `popularity[i]` is the arrival probability of `VideoId(i)`; ranks
    /// are popularity order (descending, index-stable on ties), so the
    /// map is independent of the caller's catalog ordering.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `nodes` or `movies` is zero, or a
    /// replication factor exceeds the node count.
    pub fn build(
        policy: PlacementPolicy,
        popularity: &[f64],
        nodes: usize,
    ) -> Result<Self, ConfigError> {
        if nodes == 0 {
            return Err(ConfigError::new("cluster_nodes", "must be at least 1"));
        }
        if popularity.is_empty() {
            return Err(ConfigError::new(
                "cluster_movies",
                "catalog must be non-empty",
            ));
        }
        if let PlacementPolicy::ReplicatedHot { replicas, .. } = policy {
            if replicas == 0 {
                return Err(ConfigError::new("replication_factor", "must be at least 1"));
            }
            if replicas > nodes {
                return Err(ConfigError::new(
                    "replication_factor",
                    format!("{replicas} replicas exceed {nodes} nodes"),
                ));
            }
        }
        // Popularity rank of each movie: 0 = most popular.
        let mut by_pop: Vec<usize> = (0..popularity.len()).collect();
        by_pop.sort_by(|&a, &b| popularity[b].total_cmp(&popularity[a]).then(a.cmp(&b)));

        let mut replicas = vec![Vec::new(); popularity.len()];
        for (rank, &movie) in by_pop.iter().enumerate() {
            replicas[movie] = match policy {
                PlacementPolicy::PassThrough => vec![0],
                PlacementPolicy::RoundRobin => vec![rank % nodes],
                PlacementPolicy::ZipfStripe => vec![serpentine(rank, nodes)],
                PlacementPolicy::ReplicatedHot {
                    replicas: factor,
                    hot_movies,
                } => {
                    if rank < hot_movies {
                        // Consecutive nodes from a rotating start, so hot
                        // replica sets overlap instead of piling up.
                        (0..factor).map(|j| (rank + j) % nodes).collect()
                    } else {
                        vec![serpentine(rank, nodes)]
                    }
                }
            };
        }
        Ok(Placement { replicas })
    }

    /// The nodes holding `video`, primary first. Unknown videos map to
    /// the empty slice (the dispatcher rejects them).
    #[must_use]
    pub fn replicas_of(&self, video: VideoId) -> &[usize] {
        self.replicas
            .get(video.raw() as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Number of movies placed.
    #[must_use]
    pub fn movies(&self) -> usize {
        self.replicas.len()
    }

    /// Grows `video`'s replica set by `node` (appended last, so existing
    /// preference order is undisturbed). Returns `false` — and leaves the
    /// map untouched — when the video is unknown or the node already
    /// holds a replica. This is the re-replication hook: fault recovery
    /// re-places a downed node's movies onto survivors.
    pub fn add_replica(&mut self, video: VideoId, node: usize) -> bool {
        let Some(set) = self.replicas.get_mut(video.raw() as usize) else {
            return false;
        };
        if set.contains(&node) {
            return false;
        }
        set.push(node);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(m: usize) -> Vec<f64> {
        vec![1.0 / m as f64; m]
    }

    fn zipfish(m: usize) -> Vec<f64> {
        (1..=m).map(|r| 1.0 / r as f64).collect()
    }

    #[test]
    fn pass_through_pins_everything_to_node_zero() {
        let p = Placement::build(PlacementPolicy::PassThrough, &uniform(7), 4).expect("valid");
        for m in 0..7 {
            assert_eq!(p.replicas_of(VideoId::new(m)), &[0]);
        }
    }

    #[test]
    fn round_robin_covers_all_nodes() {
        let p = Placement::build(PlacementPolicy::RoundRobin, &zipfish(8), 4).expect("valid");
        let mut seen = [false; 4];
        for m in 0..8 {
            let r = p.replicas_of(VideoId::new(m));
            assert_eq!(r.len(), 1);
            seen[r[0]] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_stripe_serpentine_balances_adjacent_ranks() {
        // Ranks 0..4 forward, 4..8 backward over 4 nodes: node 3 gets
        // ranks 3 and 4, not 3 and 7.
        let p = Placement::build(PlacementPolicy::ZipfStripe, &zipfish(8), 4).expect("valid");
        assert_eq!(p.replicas_of(VideoId::new(3)), &[3]);
        assert_eq!(p.replicas_of(VideoId::new(4)), &[3]);
        assert_eq!(p.replicas_of(VideoId::new(7)), &[0]);
    }

    #[test]
    fn replicated_hot_gives_head_multiple_distinct_replicas() {
        let policy = PlacementPolicy::ReplicatedHot {
            replicas: 3,
            hot_movies: 2,
        };
        let p = Placement::build(policy, &zipfish(10), 4).expect("valid");
        for m in 0..2 {
            let r = p.replicas_of(VideoId::new(m));
            assert_eq!(r.len(), 3, "hot movie {m}");
            let mut uniq = r.to_vec();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct nodes");
        }
        assert_eq!(p.replicas_of(VideoId::new(9)).len(), 1, "cold tail");
    }

    #[test]
    fn add_replica_appends_without_disturbing_preference_order() {
        let policy = PlacementPolicy::ReplicatedHot {
            replicas: 2,
            hot_movies: 2,
        };
        let mut p = Placement::build(policy, &zipfish(6), 4).expect("valid");
        let before = p.replicas_of(VideoId::new(0)).to_vec();
        assert!(p.add_replica(VideoId::new(0), 3));
        let after = p.replicas_of(VideoId::new(0));
        assert_eq!(&after[..before.len()], &before[..]);
        assert_eq!(*after.last().expect("non-empty"), 3);
        // Idempotent: a node already holding a replica is refused.
        assert!(!p.add_replica(VideoId::new(0), 3));
        // Unknown videos are refused, not panicked on.
        assert!(!p.add_replica(VideoId::new(99), 1));
    }

    #[test]
    fn replication_factor_cannot_exceed_nodes() {
        let policy = PlacementPolicy::ReplicatedHot {
            replicas: 5,
            hot_movies: 1,
        };
        assert!(Placement::build(policy, &uniform(3), 4).is_err());
    }
}
