//! Cluster run measurements: per-node stats plus front-end accounting.

use vod_core::{memory, SystemParams};
use vod_sim::{AuditOutcome, DiskRunStats};
use vod_types::Seconds;

/// One node's share of a cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Node index (fixed round order).
    pub node: usize,
    /// Arrivals the front end offered to this node.
    pub dispatched: u64,
    /// Arrivals accepted here after their primary replica refused.
    pub redirected_in: u64,
    /// Arrivals this node was primary for but had to hand off.
    pub redirected_out: u64,
    /// The node estimator's audit, scored against the arrivals this
    /// node actually saw (post-redirection).
    pub audit: AuditOutcome,
    /// The node engine's full run measurements.
    pub stats: DiskRunStats,
}

impl NodeReport {
    /// Fraction of the static worst-case reservation this node's peak
    /// buffer memory avoided: `1 − peak / min_memory_static(N_cap)`,
    /// where `N_cap` is the node's admission cap
    /// ([`SystemParams::max_requests`]). The static scheme must reserve
    /// for its cap up front; a dynamically sized node only ever holds
    /// `BS_k(n)` buffers for the streams actually present, so the
    /// saving approaches 1 on idle nodes and 0 as the node saturates.
    /// Zero when the node never served anyone.
    #[must_use]
    pub fn memory_saving_vs_static(&self, params: &SystemParams) -> f64 {
        if self.stats.max_concurrent() == 0 {
            return 0.0;
        }
        let static_need = memory::min_memory_static(params, params.max_requests()).as_f64();
        if static_need <= 0.0 {
            return 0.0;
        }
        1.0 - self.stats.peak_memory.as_f64() / static_need
    }
}

/// The cluster front end's view of a whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Per-node results, indexed by node (fixed round order).
    pub nodes: Vec<NodeReport>,
    /// Arrivals dispatched (every trace entry lands exactly once).
    pub dispatched: u64,
    /// Arrivals accepted by a non-primary replica.
    pub redirected: u64,
    /// Arrivals that overflowed every replica and were parked in the
    /// cluster-wide queue before eventually landing on a node.
    pub overflow_queued: u64,
}

impl ClusterReport {
    fn sum(&self, f: impl Fn(&DiskRunStats) -> u64) -> u64 {
        self.nodes.iter().map(|n| f(&n.stats)).sum()
    }

    /// Streams admitted across the cluster.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.sum(|s| s.admitted)
    }

    /// Requests deferred by per-node Assumption-1 enforcement.
    #[must_use]
    pub fn deferrals(&self) -> u64 {
        self.sum(|s| s.deferrals)
    }

    /// Requests rejected across the cluster.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.sum(|s| s.rejected)
    }

    /// Buffer underflow events across the cluster (must stay 0 for the
    /// enforcing scheme — Assumption 1 is per node, and redirection
    /// never bypasses a node's own controller).
    #[must_use]
    pub fn underflows(&self) -> u64 {
        self.sum(|s| s.underflows)
    }

    /// Stream services across the cluster.
    #[must_use]
    pub fn services(&self) -> u64 {
        self.sum(|s| s.services)
    }

    /// Estimator audit violations across the cluster (allocation windows
    /// whose `k` estimate fell short of the actual arrivals).
    #[must_use]
    pub fn audit_violations(&self) -> u64 {
        self.nodes.iter().map(|n| n.audit.violations as u64).sum()
    }

    /// Service cycles across the cluster.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.sum(|s| s.cycles)
    }

    /// Deferral rate: deferrals per dispatched arrival.
    #[must_use]
    pub fn deferral_rate(&self) -> f64 {
        if self.dispatched == 0 {
            return 0.0;
        }
        self.deferrals() as f64 / self.dispatched as f64
    }

    /// Load imbalance: the busiest node's admissions over the mean.
    /// 1.0 is perfectly balanced; ≥ N means one node took everything.
    #[must_use]
    pub fn imbalance_ratio(&self) -> f64 {
        let total = self.admitted();
        if total == 0 || self.nodes.is_empty() {
            return 1.0;
        }
        let max = self
            .nodes
            .iter()
            .map(|n| n.stats.admitted)
            .max()
            .unwrap_or(0);
        let mean = total as f64 / self.nodes.len() as f64;
        max as f64 / mean
    }

    /// Initial-latency percentile (`p ∈ 0.0..=1.0`) over all nodes'
    /// merged samples — nearest-rank, the same convention as
    /// [`DiskRunStats::latency_percentile`].
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<Seconds> {
        if !(0.0..=1.0).contains(&p) {
            return None;
        }
        let mut lat: Vec<f64> = self
            .nodes
            .iter()
            .flat_map(|n| n.stats.il_samples.iter().map(|s| s.latency.as_secs_f64()))
            .collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_by(f64::total_cmp);
        let rank = ((p * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        Some(Seconds::from_secs(lat[rank - 1]))
    }

    /// Aggregate peak buffer memory across nodes, in bits.
    #[must_use]
    pub fn peak_memory_bits(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.stats.peak_memory.as_f64())
            .sum()
    }
}
