//! Cluster invariants: pass-through transparency, Assumption-1 safety
//! under arbitrary redirection interleavings, and job-count determinism.

use proptest::prelude::*;
use std::sync::Arc;
use vod_cluster::{Cluster, ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_core::SchemeKind;

use vod_obs::metrics::{Metrics, MetricsRegistry};
use vod_obs::{prom, Obs};
use vod_sched::SchedulingMethod;
use vod_sim::{DiskEngine, EngineConfig};
use vod_workload::{multi_movie, MultiMovieConfig};

fn cluster_cfg(
    nodes: usize,
    movies: usize,
    placement: PlacementPolicy,
    dispatch: DispatchPolicy,
) -> ClusterConfig {
    ClusterConfig {
        nodes,
        engine: EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic),
        movies,
        movie_theta: 0.271,
        placement,
        dispatch,
        seed: 0xc1u64,
    }
}

fn workload(movies: usize, expected: f64, seed: u64) -> vod_workload::Workload {
    let mut cfg = MultiMovieConfig::paper_cluster(movies, 0.271, expected);
    // Compress the day so cluster tests stay fast: 2 h horizon.
    cfg.duration = vod_types::Seconds::from_hours(2.0);
    cfg.peak = vod_types::Seconds::from_hours(1.0);
    multi_movie(&cfg, seed).expect("valid multi-movie config")
}

/// (a) An N=1 pass-through cluster is a transparent wrapper: its single
/// node's `DiskRunStats` equal a bare `DiskEngine::run` over the same
/// trace, bit for bit.
#[test]
fn n1_pass_through_is_bit_identical_to_bare_engine() {
    let wl = workload(12, 150.0, 7);
    let engine_cfg = EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic);

    let bare = DiskEngine::new(engine_cfg.clone())
        .expect("paper config is valid")
        .run(&wl.arrivals);

    let cfg = cluster_cfg(
        1,
        12,
        PlacementPolicy::PassThrough,
        DispatchPolicy::LeastLoaded,
    );
    let report = Cluster::new(cfg)
        .expect("valid cluster config")
        .run(&wl.arrivals);

    assert_eq!(report.nodes.len(), 1);
    assert_eq!(report.nodes[0].stats, bare);
    assert_eq!(report.redirected, 0);
    assert_eq!(report.overflow_queued, 0);
}

/// (c) The parallel drain merges by node index: jobs = 1 and jobs = 2
/// produce byte-identical reports.
#[test]
fn job_count_does_not_change_the_report() {
    let wl = workload(24, 400.0, 11);
    let placement = PlacementPolicy::ReplicatedHot {
        replicas: 2,
        hot_movies: 6,
    };
    let mk = || {
        Cluster::new(cluster_cfg(4, 24, placement, DispatchPolicy::LeastLoaded))
            .expect("valid cluster config")
    };
    let sequential = mk().run_with_jobs(&wl.arrivals, 1);
    let parallel = mk().run_with_jobs(&wl.arrivals, 2);
    assert_eq!(sequential, parallel);
}

/// A 16-node scaling smoke: completes, replays deterministically, and
/// renders per-node deferral/redirection counters into Prometheus text.
#[test]
fn sixteen_node_smoke_is_deterministic_with_per_node_metrics() {
    let wl = workload(64, 600.0, 3);
    let placement = PlacementPolicy::ReplicatedHot {
        replicas: 3,
        hot_movies: 16,
    };
    let mk = |obs: Obs| {
        Cluster::with_observer(
            cluster_cfg(16, 64, placement, DispatchPolicy::MostHeadroom),
            obs,
        )
        .expect("valid cluster config")
    };
    let registry = Arc::new(MetricsRegistry::new());
    let a = mk(Obs::null().with_metrics(Metrics::new(Arc::clone(&registry)))).run(&wl.arrivals);
    let b = mk(Obs::null()).run(&wl.arrivals);
    assert_eq!(a, b, "16-node run must replay bit-identically");
    assert_eq!(a.nodes.len(), 16);
    assert_eq!(
        a.dispatched,
        wl.arrivals.len() as u64,
        "every arrival lands exactly once"
    );

    let text = prom::render(&registry.snapshot());
    for node in [0usize, 15] {
        for suffix in [
            "deferred_total",
            "redirected_in_total",
            "redirected_out_total",
        ] {
            let name = format!("vod_cluster_node{node}_{suffix}");
            assert!(
                text.contains(&name),
                "Prometheus rendering missing {name}:\n{text}"
            );
        }
    }
    assert!(text.contains("vod_cluster_imbalance_ratio"));
}

/// Every placement × dispatch pair conserves arrivals: dispatched =
/// trace length, and per-node admissions + rejections + still-queued
/// account for everything offered.
#[test]
fn all_policy_pairs_conserve_arrivals() {
    let wl = workload(16, 250.0, 5);
    let placements = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::ZipfStripe,
        PlacementPolicy::ReplicatedHot {
            replicas: 2,
            hot_movies: 4,
        },
    ];
    let dispatches = [
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::MostHeadroom,
        DispatchPolicy::RandomOfK { k: 2 },
    ];
    for placement in placements {
        for dispatch in dispatches {
            let report = Cluster::new(cluster_cfg(4, 16, placement, dispatch))
                .expect("valid cluster config")
                .run(&wl.arrivals);
            assert_eq!(
                report.dispatched,
                wl.arrivals.len() as u64,
                "{placement:?}/{dispatch:?}"
            );
            let per_node: u64 = report.nodes.iter().map(|n| n.dispatched).sum();
            assert_eq!(per_node, report.dispatched, "{placement:?}/{dispatch:?}");
            assert_eq!(
                report.admitted() + report.rejected(),
                report.dispatched,
                "{placement:?}/{dispatch:?}: a drained cluster leaves nothing in limbo"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (b) Assumption 1 is enforced *per node* no matter how redirection
    /// interleaves arrivals across replicas: under the dynamic scheme no
    /// node ever underflows, for arbitrary seeds, node counts,
    /// replication factors, and dispatch policies. (Debug builds also
    /// cross-check the admission controller's min-aggregates on every
    /// query inside the run.)
    #[test]
    fn no_node_violates_assumption_1_under_redirection(
        seed in 0u64..1_000,
        nodes in 2usize..5,
        replicas in 2usize..3,
        hot in 1usize..8,
        dispatch_idx in 0usize..3,
    ) {
        let dispatch = match dispatch_idx {
            0 => DispatchPolicy::LeastLoaded,
            1 => DispatchPolicy::MostHeadroom,
            _ => DispatchPolicy::RandomOfK { k: 2 },
        };
        let movies = 12usize;
        let wl = workload(movies, 140.0, seed);
        let placement = PlacementPolicy::ReplicatedHot {
            replicas: replicas.min(nodes),
            hot_movies: hot,
        };
        let mut cfg = cluster_cfg(nodes, movies, placement, dispatch);
        cfg.seed = seed;
        let report = Cluster::new(cfg)
            .expect("valid cluster config")
            .run(&wl.arrivals);
        for node in &report.nodes {
            prop_assert_eq!(
                node.stats.underflows,
                0,
                "node {} underflowed: redirection must never bypass its controller",
                node.node
            );
        }
    }
}
