//! Overflow-FIFO drain determinism under mid-run capacity changes.
//!
//! The chaos subsystem throttles node capacity while a run is in
//! flight (`NodeSlow` / `MemoryPressure` map to admission throttles).
//! These properties pin down the cluster-side contract that makes
//! that safe: the overflow FIFO drains deterministically — same
//! schedule, same report, bit for bit, at any job count — arrivals
//! are conserved through the queue, and a *tightened* admission bound
//! can never cause a buffer underflow (Assumption 1 is enforced at
//! the moment of admission, so shrinking future capacity only defers
//! or rejects; it never invalidates streams already admitted).

use proptest::prelude::*;
use vod_cluster::{Cluster, ClusterConfig, ClusterReport, DispatchPolicy, PlacementPolicy};
use vod_core::SchemeKind;
use vod_sched::SchedulingMethod;
use vod_sim::EngineConfig;
use vod_types::{Instant, Seconds};
use vod_workload::{multi_movie, Arrival, MultiMovieConfig};

fn cluster_cfg(nodes: usize, movies: usize, dispatch: DispatchPolicy) -> ClusterConfig {
    ClusterConfig {
        nodes,
        engine: EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic),
        movies,
        movie_theta: 0.271,
        placement: PlacementPolicy::ReplicatedHot {
            replicas: 2.min(nodes),
            hot_movies: movies / 4,
        },
        dispatch,
        seed: 0xf1f0,
    }
}

fn workload(movies: usize, expected: f64, seed: u64) -> vod_workload::Workload {
    let mut cfg = MultiMovieConfig::paper_cluster(movies, 0.271, expected);
    cfg.duration = Seconds::from_hours(2.0);
    cfg.peak = Seconds::from_hours(1.0);
    multi_movie(&cfg, seed).expect("valid multi-movie config")
}

/// One capacity change applied while the trace is in flight: at `at`,
/// `node`'s admission capacity is scaled by `capacity` and its memory
/// budget by `memory` (1.0 restores the node to full strength).
#[derive(Clone, Copy, Debug)]
struct Throttle {
    at: Instant,
    node: usize,
    capacity: f64,
    memory: f64,
}

/// Drives the public steppable API exactly as the chaos runner does:
/// advance–throttle–advance–dispatch, with the overflow FIFO retried
/// on every arrival and flushed at end of trace.
fn run_with_throttles(
    cfg: &ClusterConfig,
    arrivals: &[Arrival],
    throttles: &[Throttle],
    jobs: usize,
) -> ClusterReport {
    let mut cluster = Cluster::new(cfg.clone()).expect("valid cluster config");
    let mut pending = throttles.iter().peekable();
    for a in arrivals {
        while let Some(&&t) = pending.peek() {
            if t.at > a.at {
                break;
            }
            cluster.advance_nodes_to(t.at);
            cluster.throttle_node(t.node, t.capacity, t.memory);
            pending.next();
        }
        cluster.advance_nodes_to(a.at);
        cluster.step_arrival(a);
    }
    for &t in pending {
        cluster.advance_nodes_to(t.at);
        cluster.throttle_node(t.node, t.capacity, t.memory);
    }
    cluster.finish_run(jobs)
}

fn arb_throttle(nodes: usize, horizon_s: f64) -> impl Strategy<Value = Throttle> {
    (
        0.0..horizon_s,
        0..nodes,
        prop_oneof![0.0f64..=1.0, Just(1.0)],
        prop_oneof![0.0f64..=1.0, Just(1.0)],
    )
        .prop_map(|(t, node, capacity, memory)| Throttle {
            at: Instant::from_secs(t),
            node,
            capacity,
            memory,
        })
}

fn arb_schedule(nodes: usize, horizon_s: f64) -> impl Strategy<Value = Vec<Throttle>> {
    proptest::collection::vec(arb_throttle(nodes, horizon_s), 0..6).prop_map(|mut ts| {
        // The driver applies throttles in trace order; sort with the
        // node index as tiebreak so equal timestamps stay canonical.
        ts.sort_by(|a, b| {
            a.at.as_secs_f64()
                .total_cmp(&b.at.as_secs_f64())
                .then(a.node.cmp(&b.node))
        });
        ts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary capacity/memory throttle schedules, dispatch policies,
    /// and workload seeds: the run replays bit-identically (including
    /// at different job counts), conserves every arrival through the
    /// overflow FIFO, and never underflows a buffer.
    #[test]
    fn overflow_fifo_drains_deterministically_under_capacity_changes(
        throttles in arb_schedule(3, 7200.0),
        dispatch_least in any::<bool>(),
        seed in 0u64..5,
    ) {
        let dispatch = if dispatch_least {
            DispatchPolicy::LeastLoaded
        } else {
            DispatchPolicy::MostHeadroom
        };
        let cfg = cluster_cfg(3, 12, dispatch);
        let wl = workload(12, 250.0, seed);

        let a = run_with_throttles(&cfg, &wl.arrivals, &throttles, 1);
        let b = run_with_throttles(&cfg, &wl.arrivals, &throttles, 1);
        prop_assert_eq!(&a, &b, "same schedule must replay bit-identically");

        let c = run_with_throttles(&cfg, &wl.arrivals, &throttles, 2);
        prop_assert_eq!(&a, &c, "job count must not change the report");

        prop_assert_eq!(a.dispatched, wl.arrivals.len() as u64);
        prop_assert_eq!(
            a.admitted() + a.rejected(),
            a.dispatched,
            "the end-of-trace flush must leave nothing parked in limbo"
        );
        for node in &a.nodes {
            prop_assert_eq!(
                node.stats.underflows,
                0,
                "tightening admission capacity mid-run must never underflow node {}",
                node.node
            );
        }
    }
}

/// A hand-built worst case: the hot node is squeezed to zero capacity
/// mid-peak and restored later. Everything parked while it was
/// squeezed must drain back out — deterministically — once capacity
/// returns, and the squeeze must strictly defer (never underflow).
#[test]
fn full_squeeze_and_restore_drains_the_fifo() {
    let cfg = cluster_cfg(2, 12, DispatchPolicy::LeastLoaded);
    let wl = workload(12, 300.0, 11);
    let throttles = [
        Throttle {
            at: Instant::from_secs(1800.0),
            node: 0,
            capacity: 0.0,
            memory: 1.0,
        },
        Throttle {
            at: Instant::from_secs(4500.0),
            node: 0,
            capacity: 1.0,
            memory: 1.0,
        },
    ];
    let squeezed = run_with_throttles(&cfg, &wl.arrivals, &throttles, 1);
    let again = run_with_throttles(&cfg, &wl.arrivals, &throttles, 1);
    assert_eq!(squeezed, again);
    assert_eq!(
        squeezed.admitted() + squeezed.rejected(),
        squeezed.dispatched
    );
    assert_eq!(squeezed.underflows(), 0);

    // The squeeze must actually bite relative to the unthrottled run.
    let plain = run_with_throttles(&cfg, &wl.arrivals, &[], 1);
    assert!(
        squeezed.deferrals() >= plain.deferrals(),
        "a zero-capacity window can only add deferrals ({} < {})",
        squeezed.deferrals(),
        plain.deferrals()
    );
}
