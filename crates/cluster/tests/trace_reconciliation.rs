//! Property test: redirection-hop spans reconcile with the per-node
//! redirection counters.
//!
//! The front end emits exactly one `Hop` span per counted redirect,
//! annotated `from_node`/`to_node`. Under arbitrary cluster shapes and
//! workloads, the hop spans recovered from a recorder must therefore
//! sum to `ClusterReport::redirected`, and the per-node `from_node` /
//! `to_node` tallies must equal each node's `redirected_out` /
//! `redirected_in`. This is the on-line twin of the audit
//! `repro trace-analyze` runs against a written trace file.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use vod_cluster::{Cluster, ClusterConfig, DispatchPolicy, PlacementPolicy};
use vod_core::SchemeKind;
use vod_obs::{AnnoValue, Event, Obs, RecorderSink, SpanKind};
use vod_sched::SchedulingMethod;
use vod_sim::EngineConfig;
use vod_workload::{multi_movie, MultiMovieConfig};

fn dispatch_strategy() -> impl Strategy<Value = DispatchPolicy> {
    prop_oneof![
        Just(DispatchPolicy::LeastLoaded),
        Just(DispatchPolicy::MostHeadroom),
    ]
}

proptest! {
    // Each case runs a full multi-hour cluster simulation; keep the
    // case count small so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn hop_spans_reconcile_with_redirection_counters(
        nodes in 2usize..5,
        seed in 0u64..64,
        expected in 120f64..400f64,
        dispatch in dispatch_strategy(),
    ) {
        let movies = nodes * 6;
        // Replicated-hot placement with few replicas is the pressure
        // case: primaries saturate and hand arrivals off, so redirects
        // actually occur for most sampled shapes.
        let cfg = ClusterConfig {
            nodes,
            engine: EngineConfig::paper(SchedulingMethod::RoundRobin, SchemeKind::Dynamic),
            movies,
            movie_theta: 0.271,
            placement: PlacementPolicy::ReplicatedHot { replicas: 2, hot_movies: movies / 2 },
            dispatch,
            seed,
        };
        let mut wl_cfg = MultiMovieConfig::paper_cluster(movies, 0.271, expected);
        wl_cfg.duration = vod_types::Seconds::from_hours(2.0);
        wl_cfg.peak = vod_types::Seconds::from_hours(1.0);
        let wl = multi_movie(&wl_cfg, seed).expect("valid multi-movie config");

        // Lifecycle spans only, with per-cycle detail gated off — the
        // same volume policy as `repro cluster --trace` — so a 2 h run
        // fits the ring with nothing dropped.
        let recorder = Arc::new(RecorderSink::new().with_kinds(&[
            vod_obs::EventKind::SpanStart,
            vod_obs::EventKind::SpanAnnotate,
            vod_obs::EventKind::SpanEnd,
        ]));
        let mut cluster = Cluster::with_observer(
            cfg,
            Obs::new(Arc::clone(&recorder) as Arc<dyn vod_obs::Sink>),
        )
        .expect("valid cluster config");
        cluster.set_per_cycle_tracing(false);
        let report = cluster.run(&wl.arrivals);

        let snap = recorder.snapshot();
        prop_assert_eq!(snap.spans_dropped(), 0, "ring must hold the whole run");

        // Recover each hop span's endpoints from its annotations.
        let mut hop_spans: HashMap<(u64, u64), (Option<u64>, Option<u64>)> = HashMap::new();
        for e in snap.events() {
            match *e {
                Event::SpanStart { trace, span, span_kind: SpanKind::Hop, .. } => {
                    hop_spans.insert((trace.raw(), span.raw()), (None, None));
                }
                Event::SpanAnnotate { trace, span, key, value, .. } => {
                    if let Some(slot) = hop_spans.get_mut(&(trace.raw(), span.raw())) {
                        let AnnoValue::U64(v) = value else {
                            prop_assert!(false, "hop annotations are node indexes");
                            unreachable!()
                        };
                        match key {
                            "from_node" => slot.0 = Some(v),
                            "to_node" => slot.1 = Some(v),
                            other => prop_assert!(false, "unexpected hop annotation `{}`", other),
                        }
                    }
                }
                _ => {}
            }
        }

        prop_assert_eq!(
            hop_spans.len() as u64, report.redirected,
            "one hop span per counted redirect"
        );
        let mut out_by_node: HashMap<u64, u64> = HashMap::new();
        let mut in_by_node: HashMap<u64, u64> = HashMap::new();
        for (&id, &(from, to)) in &hop_spans {
            let (Some(from), Some(to)) = (from, to) else {
                prop_assert!(false, "hop span {:?} missing endpoint annotations", id);
                unreachable!()
            };
            prop_assert_ne!(from, to, "a hop must change nodes");
            *out_by_node.entry(from).or_insert(0) += 1;
            *in_by_node.entry(to).or_insert(0) += 1;
        }
        for n in &report.nodes {
            let node = n.node as u64;
            prop_assert_eq!(
                out_by_node.get(&node).copied().unwrap_or(0),
                n.redirected_out,
                "node {} redirected_out", node
            );
            prop_assert_eq!(
                in_by_node.get(&node).copied().unwrap_or(0),
                n.redirected_in,
                "node {} redirected_in", node
            );
        }
    }
}
