//! The predict-and-enforce admission controller and buffer allocator
//! (the algorithm of Fig. 5).
//!
//! The dynamic scheme sizes a buffer for the *predicted* worst case; the
//! prediction only stays safe if reality is held to it. Enforcement is
//! runtime admission control:
//!
//! * **Assumption 1** — when a buffer was allocated at load `(n_i, k_i)`,
//!   at most `n_i + k_i` streams may be serviced while it lives. So a new
//!   request is admitted only if `(n + 1) ≤ min_i (n_i + k_i)` over every
//!   in-service stream `i`; otherwise it waits in the queue (*deferred
//!   service*).
//! * **Assumption 2** — the estimate may grow by at most `α` per usage
//!   period: `k_c = min( k_log + α, min_i (k_i + α) )`.
//!
//! [`AdmissionController`] owns the per-stream allocation records
//! `(n_i, k_i)`, the [`ArrivalLog`] behind `k_log`, and the precomputed
//! [`SizeTable`]; the server (or simulator) calls it at every arrival,
//! allocation, and departure.

use std::collections::HashMap;
use std::sync::Arc;

use vod_obs::{Event, EventKind, Obs};
use vod_types::{Bits, ConfigError, Instant, RequestId, Seconds, VodError};

use crate::aggregate::MinMultiset;
use crate::estimator::ArrivalLog;
use crate::params::SystemParams;
use crate::table::SizeTable;

/// The outcome of one buffer allocation (Step 4–5 of Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// `n_c`: streams in service at allocation time (including this one).
    pub n: usize,
    /// `k_c`: estimated additional requests, after Assumption-2 clamping.
    pub k: usize,
    /// `k_log` before clamping — kept for the estimation audit (Fig. 7/8).
    pub k_log: usize,
}

/// The limit that currently binds admission (see
/// [`AdmissionController::binding_constraint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionConstraint {
    /// Assumption 1 binds: some in-service buffer was sized for at most
    /// `bound = min_i(n_i + k_i)` concurrent streams.
    Assumption1 {
        /// The binding `min_i(n_i + k_i)`.
        bound: usize,
    },
    /// The disk service bound `N` binds (Assumption 1 is slack or no
    /// allocation constrains yet).
    DiskBound {
        /// `N`, the disk's stream capacity.
        bound: usize,
    },
}

impl AdmissionConstraint {
    /// The binding stream-count limit.
    #[must_use]
    pub fn bound(self) -> usize {
        match self {
            AdmissionConstraint::Assumption1 { bound }
            | AdmissionConstraint::DiskBound { bound } => bound,
        }
    }

    /// Stable snake_case label (used in span annotations).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdmissionConstraint::Assumption1 { .. } => "assumption1",
            AdmissionConstraint::DiskBound { .. } => "disk_bound",
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Record {
    /// `(n_i, k_i)` from the stream's most recent buffer allocation;
    /// `None` between admission and first allocation.
    last_allocation: Option<(usize, usize)>,
}

/// Runtime state of the dynamic buffer allocation scheme for one disk.
///
/// The two admission-time minima — Assumption 1's `min_i(n_i + k_i)` and
/// Assumption 2's `min_i(k_i)` — are maintained incrementally in
/// [`MinMultiset`]s updated on every allocation and departure, so both
/// queries are O(1) instead of a scan over the record table (the paper's
/// Fig. 5 runs `Admission_Control` on *every* arrival).
#[derive(Clone, Debug)]
pub struct AdmissionController {
    params: SystemParams,
    table: Arc<SizeTable>,
    log: ArrivalLog,
    records: HashMap<RequestId, Record>,
    /// Multiset of `n_i + k_i` over records with an allocation.
    bound_agg: MinMultiset,
    /// Multiset of `k_i` over records with an allocation.
    k_agg: MinMultiset,
    deferrals: u64,
    obs: Obs,
}

impl AdmissionController {
    /// Creates a controller; precomputes the size table (§3.3).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters or a
    /// non-positive `t_log`.
    pub fn new(params: SystemParams, t_log: Seconds) -> Result<Self, ConfigError> {
        Self::new_instrumented(params, t_log, &vod_obs::Metrics::null())
    }

    /// Like [`AdmissionController::new`], but the size-table
    /// precompute is timed into the metrics phase histogram
    /// ([`vod_obs::metrics::PHASE_TABLE_BUILD`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters or a
    /// non-positive `t_log`.
    pub fn new_instrumented(
        params: SystemParams,
        t_log: Seconds,
        metrics: &vod_obs::Metrics,
    ) -> Result<Self, ConfigError> {
        params.validate()?;
        if !t_log.is_valid_duration() || t_log <= Seconds::ZERO {
            return Err(ConfigError::new("t_log", "must be positive"));
        }
        let table = SizeTable::shared_instrumented(&params, metrics);
        Ok(AdmissionController {
            params,
            table,
            log: ArrivalLog::new(t_log),
            records: HashMap::new(),
            bound_agg: MinMultiset::new(),
            k_agg: MinMultiset::new(),
            deferrals: 0,
            obs: Obs::null(),
        })
    }

    /// Attaches an observability handle; [`Event::EstimatorClamped`] is
    /// emitted whenever Assumption 2 (or the disk bound) caps the `k`
    /// estimate below `k_log + α`. Emission never alters the estimate.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The precomputed size table.
    #[must_use]
    pub fn table(&self) -> &SizeTable {
        &self.table
    }

    /// Records a request arrival (admitted or not) for the `k_log`
    /// estimator. Call exactly once per arriving request.
    pub fn note_arrival(&mut self, at: Instant) {
        self.log.record(at);
    }

    /// Number of streams currently in service.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.records.len()
    }

    /// Procedure `Admission_Control` of Fig. 5: may one more stream be
    /// admitted *now* without violating Assumption 1 for any in-service
    /// buffer (and without exceeding the disk bound `N`)? (`&mut` only to
    /// advance the min-aggregate cursor; the decision reads no clock.)
    #[must_use]
    pub fn can_admit(&mut self) -> bool {
        let n = self.records.len();
        if n >= self.params.max_requests() {
            return false;
        }
        let bound = self.assumption1_bound();
        n < bound
    }

    /// Admits a stream. Call only after [`Self::can_admit`]; admitting
    /// past the bound is reported as deferral.
    ///
    /// # Errors
    ///
    /// * [`VodError::AdmissionDeferred`] — Assumption 1 (or the `N` bound)
    ///   would be violated; the stream stays queued and the deferral is
    ///   counted.
    /// * [`VodError::Config`] — the stream is already admitted.
    pub fn admit(&mut self, id: RequestId) -> Result<(), VodError> {
        if self.records.contains_key(&id) {
            return Err(ConfigError::new("request", format!("{id} already admitted")).into());
        }
        if !self.can_admit() {
            self.deferrals += 1;
            return Err(VodError::AdmissionDeferred { request: id });
        }
        self.records.insert(
            id,
            Record {
                last_allocation: None,
            },
        );
        Ok(())
    }

    /// Steps 4–5 of Fig. 5: computes `(n_c, k_c)` for the stream about to
    /// be serviced and records them as its new `(n_i, k_i)`.
    ///
    /// `now` is the current time and `period` the current service-period
    /// length, both needed by the `k_log` estimator. The buffer size is
    /// `self.table().size(alloc.n, alloc.k)`.
    ///
    /// # Errors
    ///
    /// Returns [`VodError::UnknownRequest`] when the stream was never
    /// admitted (or already departed).
    pub fn allocate(
        &mut self,
        id: RequestId,
        now: Instant,
        period: Seconds,
    ) -> Result<Allocation, VodError> {
        if !self.records.contains_key(&id) {
            return Err(VodError::UnknownRequest(id));
        }
        let (k_c, k_log) = self.estimate_k(now, period);
        let n_c = self.records.len();
        let record = self
            .records
            .get_mut(&id)
            .expect("checked contains_key above");
        if let Some((n_old, k_old)) = record.last_allocation.replace((n_c, k_c)) {
            self.bound_agg.remove(n_old + k_old);
            self.k_agg.remove(k_old);
        }
        self.bound_agg.insert(n_c + k_c);
        self.k_agg.insert(k_c);
        Ok(Allocation {
            n: n_c,
            k: k_c,
            k_log,
        })
    }

    /// The `(k_c, k_log)` the controller *would* use for an allocation at
    /// `now` — Steps 4 of Fig. 5 without recording anything. Used by
    /// memory-reservation admission checks. (Prunes the arrival log,
    /// hence `&mut`.)
    pub fn estimate_k(&mut self, now: Instant, period: Seconds) -> (usize, usize) {
        let k_log = self.log.k_log(now, period);
        let alpha = self.params.alpha as usize;
        // Assumption 2: k_c ≤ k_i + α for every in-service stream. The
        // minimum over k_i is maintained incrementally (O(1) here).
        let k_cap = self.k_agg.min().map_or(usize::MAX, |k| k + alpha);
        debug_assert_eq!(
            k_cap,
            self.records
                .values()
                .filter_map(|r| r.last_allocation)
                .map(|(_, k_i)| k_i + alpha)
                .min()
                .unwrap_or(usize::MAX),
            "incremental Assumption-2 clamp diverged from the record scan"
        );
        let k_c = (k_log + alpha).min(k_cap).min(self.params.max_requests());
        if k_c < k_log + alpha {
            self.obs
                .emit_with(EventKind::EstimatorClamped, || Event::EstimatorClamped {
                    at: now,
                    k_log,
                    k_clamped: k_c,
                    cap: k_cap.min(self.params.max_requests()),
                });
        }
        (k_c, k_log)
    }

    /// The buffer size for an allocation, from the precomputed table.
    #[must_use]
    pub fn size_of(&self, alloc: Allocation) -> Bits {
        self.table.size(alloc.n, alloc.k)
    }

    /// Step 1 of Fig. 5: removes a completed stream.
    ///
    /// # Errors
    ///
    /// Returns [`VodError::UnknownRequest`] when the stream is not in
    /// service.
    pub fn depart(&mut self, id: RequestId) -> Result<(), VodError> {
        let record = self
            .records
            .remove(&id)
            .ok_or(VodError::UnknownRequest(id))?;
        if let Some((n_i, k_i)) = record.last_allocation {
            self.bound_agg.remove(n_i + k_i);
            self.k_agg.remove(k_i);
        }
        Ok(())
    }

    /// Number of admission attempts deferred so far.
    #[must_use]
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }

    /// The largest stream count Assumption 1 currently allows:
    /// `min(min_i(n_i + k_i), N)`. The server may admit up to
    /// `admission_bound() − active_count()` more streams before any
    /// in-service buffer's sizing assumptions could be violated. (`&mut`
    /// only to advance the min-aggregate cursor.)
    #[must_use]
    pub fn admission_bound(&mut self) -> usize {
        let n = self.params.max_requests();
        self.assumption1_bound().min(n)
    }

    /// Which limit currently binds admission, with its value — the
    /// payload span annotations attach to admit/defer decisions so a
    /// trace answers "*which* bound decided this?". (`&mut` only to
    /// advance the min-aggregate cursor.)
    #[must_use]
    pub fn binding_constraint(&mut self) -> AdmissionConstraint {
        let a1 = self.assumption1_bound();
        let n = self.params.max_requests();
        if a1 < n {
            AdmissionConstraint::Assumption1 { bound: a1 }
        } else {
            AdmissionConstraint::DiskBound { bound: n }
        }
    }

    /// `min_i (n_i + k_i)` over in-service streams with an allocation;
    /// `usize::MAX` when none constrain (Assumption 1 then only leaves the
    /// disk bound `N`). O(1): the minimum is maintained incrementally on
    /// allocate/depart instead of scanning the record table per arrival.
    fn assumption1_bound(&mut self) -> usize {
        let bound = self.bound_agg.min().unwrap_or(usize::MAX);
        debug_assert_eq!(
            bound,
            self.records
                .values()
                .filter_map(|r| r.last_allocation)
                .map(|(n_i, k_i)| n_i + k_i)
                .min()
                .unwrap_or(usize::MAX),
            "incremental Assumption-1 bound diverged from the record scan"
        );
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sched::SchedulingMethod;

    fn controller() -> AdmissionController {
        AdmissionController::new(
            SystemParams::paper_defaults(SchedulingMethod::RoundRobin),
            Seconds::from_minutes(40.0),
        )
        .expect("valid config")
    }

    fn r(i: u64) -> RequestId {
        RequestId::new(i)
    }

    const PERIOD: Seconds = Seconds::from_secs(2.0);

    #[test]
    fn first_request_into_idle_system() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        c.note_arrival(t0);
        assert!(c.can_admit());
        c.admit(r(0)).expect("idle system admits");
        let alloc = c.allocate(r(0), t0, PERIOD).expect("admitted");
        // n_c = 1; k_log counts the request itself (it arrived within the
        // window), so k_c = k_log + α = 2.
        assert_eq!(alloc.n, 1);
        assert_eq!(alloc.k_log, 1);
        assert_eq!(alloc.k, 2);
        assert!(c.size_of(alloc).as_f64() > 0.0);
    }

    #[test]
    fn binding_constraint_names_the_deciding_bound() {
        let mut c = controller();
        let n = c.params().max_requests();
        // No allocation constrains yet: only the disk bound applies.
        assert_eq!(
            c.binding_constraint(),
            AdmissionConstraint::DiskBound { bound: n }
        );
        assert_eq!(c.binding_constraint().label(), "disk_bound");

        // One stream allocated at (n=1, k=2): Assumption 1 binds at 3.
        let t0 = Instant::ZERO;
        c.note_arrival(t0);
        c.admit(r(0)).expect("idle");
        c.allocate(r(0), t0, PERIOD).expect("admitted");
        let bc = c.binding_constraint();
        assert_eq!(bc, AdmissionConstraint::Assumption1 { bound: 3 });
        assert_eq!(bc.bound(), 3);
        assert_eq!(bc.label(), "assumption1");
        // The constraint agrees with the admission bound.
        assert_eq!(bc.bound(), c.admission_bound());
    }

    #[test]
    fn admission_respects_assumption_one() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        // One stream allocated at (n=1, k=2): bound is n_1 + k_1 = 3.
        c.note_arrival(t0);
        c.admit(r(0)).expect("idle");
        c.allocate(r(0), t0, PERIOD).expect("admitted");

        // Admit two more (2nd and 3rd): 2 ≤ 3 and 3 ≤ 3 pass.
        c.note_arrival(t0);
        c.admit(r(1)).expect("within bound");
        c.note_arrival(t0);
        c.admit(r(2)).expect("at bound");

        // A 4th would make n+1 = 4 > 3: deferred.
        c.note_arrival(t0);
        assert!(!c.can_admit());
        let err = c.admit(r(3)).expect_err("assumption 1 violated");
        assert_eq!(err, VodError::AdmissionDeferred { request: r(3) });
        assert_eq!(c.deferrals(), 1);
        assert_eq!(c.active_count(), 3);
    }

    #[test]
    fn deferral_clears_after_reallocation() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        c.note_arrival(t0);
        c.admit(r(0)).expect("idle");
        c.allocate(r(0), t0, PERIOD).expect("admitted");
        c.note_arrival(t0);
        c.admit(r(1)).expect("bound 3");
        c.note_arrival(t0);
        c.admit(r(2)).expect("bound 3");
        c.note_arrival(t0);
        assert!(c.admit(r(3)).is_err());

        // Next service period: R0 reallocated at n=3 with a fresh k.
        let t1 = t0 + PERIOD;
        let alloc = c.allocate(r(0), t1, PERIOD).expect("in service");
        assert_eq!(alloc.n, 3);
        assert!(
            alloc.n + alloc.k >= 4,
            "bound rises with the new allocation"
        );
        // R1, R2 still hold (1+2)=3-bounds... wait: R1/R2 have no
        // allocation yet, so only R0's new record binds.
        assert!(c.can_admit());
        c.admit(r(3)).expect("bound has risen");
    }

    #[test]
    fn assumption_two_clamps_k() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        // R0 allocated with k_c = 2 (k_log = 1 + α).
        c.note_arrival(t0);
        c.admit(r(0)).expect("idle");
        c.allocate(r(0), t0, PERIOD).expect("admitted");

        // A burst of 10 arrivals pushes k_log up, but Assumption 2 caps
        // k_c at k_0 + α = 3.
        for i in 1..=10 {
            c.note_arrival(t0 + Seconds::from_millis(f64::from(i)));
        }
        c.admit(r(1)).expect("bound 3 admits n=2");
        let alloc = c
            .allocate(r(1), t0 + Seconds::from_secs(1.0), PERIOD)
            .expect("admitted");
        assert!(alloc.k_log >= 10, "burst visible to the estimator");
        assert_eq!(alloc.k, 3, "clamped to k_0 + α");
    }

    #[test]
    fn clamping_emits_estimator_event() {
        let rec = std::sync::Arc::new(vod_obs::RecorderSink::new());
        let mut c = controller();
        c.set_observer(Obs::new(rec.clone()));
        let t0 = Instant::ZERO;
        // R0 allocated with k_c = 2; a burst then pushes k_log above the
        // Assumption-2 cap k_0 + α = 3, forcing a clamp.
        c.note_arrival(t0);
        c.admit(r(0)).expect("idle");
        c.allocate(r(0), t0, PERIOD).expect("admitted");
        assert_eq!(
            rec.snapshot().counter(EventKind::EstimatorClamped),
            0,
            "unclamped estimate must not emit"
        );
        for i in 1..=10 {
            c.note_arrival(t0 + Seconds::from_millis(f64::from(i)));
        }
        c.admit(r(1)).expect("bound 3 admits n=2");
        let alloc = c
            .allocate(r(1), t0 + Seconds::from_secs(1.0), PERIOD)
            .expect("admitted");
        assert_eq!(alloc.k, 3);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(EventKind::EstimatorClamped), 1);
        assert!(matches!(
            snap.events()[0],
            Event::EstimatorClamped { k_clamped: 3, cap: 3, k_log, .. } if k_log >= 10
        ));
    }

    #[test]
    fn k_is_capped_at_big_n() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        for i in 0..100 {
            c.note_arrival(t0 + Seconds::from_millis(f64::from(i)));
        }
        c.admit(r(0)).expect("idle");
        let alloc = c
            .allocate(r(0), t0 + Seconds::from_secs(1.0), PERIOD)
            .expect("admitted");
        assert!(alloc.k <= 79);
    }

    #[test]
    fn never_admits_past_disk_bound() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        let mut admitted = 0usize;
        for i in 0..200u64 {
            c.note_arrival(t0);
            if c.admit(r(i)).is_ok() {
                admitted += 1;
                // Immediately allocate so the Assumption-1 bound keeps
                // pace (records with big k admit freely up to N).
                c.allocate(r(i), t0, PERIOD).expect("admitted");
            }
        }
        assert!(admitted <= 79);
        assert_eq!(c.active_count(), admitted);
        assert!(!c.can_admit() || c.active_count() < 79);
    }

    #[test]
    fn departures_free_capacity() {
        let mut c = controller();
        let t0 = Instant::ZERO;
        c.note_arrival(t0);
        c.admit(r(0)).expect("idle");
        c.allocate(r(0), t0, PERIOD).expect("admitted");
        assert_eq!(c.active_count(), 1);
        c.depart(r(0)).expect("in service");
        assert_eq!(c.active_count(), 0);
        assert!(c.depart(r(0)).is_err(), "double departure rejected");
        assert!(c.can_admit());
    }

    #[test]
    fn duplicate_admission_is_an_error() {
        let mut c = controller();
        c.note_arrival(Instant::ZERO);
        c.admit(r(0)).expect("idle");
        assert!(matches!(c.admit(r(0)), Err(VodError::Config(_))));
    }

    #[test]
    fn allocate_unknown_stream_fails() {
        let mut c = controller();
        assert_eq!(
            c.allocate(r(9), Instant::ZERO, PERIOD),
            Err(VodError::UnknownRequest(r(9)))
        );
    }

    #[test]
    fn rejects_bad_t_log() {
        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        assert!(AdmissionController::new(p, Seconds::ZERO).is_err());
    }
}
