//! Incrementally maintained min-aggregates for the admission hot path.
//!
//! Procedure `Admission_Control` (Fig. 5) needs `min_i(n_i + k_i)` over
//! every in-service allocation record at **every arrival**, and Step 4
//! needs `min_i(k_i)` (the Assumption-2 clamp) at **every allocation**.
//! Scanning the record table makes both O(n) per event — the dominant
//! per-event cost at high load. Both aggregates range over a tiny value
//! domain (`n_i, k_i ≤ N`, so `n_i + k_i ≤ 2N ≈ 160` for the paper's
//! disk), which makes a counting multiset the natural structure:
//!
//! * `insert` / `remove` — O(1),
//! * `min` — O(1) amortized: a cursor remembers the last minimum and only
//!   walks forward past emptied buckets; every bucket position the cursor
//!   skips was paid for by the removal that emptied it.
//!
//! [`MinMultiset`] grows its bucket table on demand, so callers never
//! need to know the domain bound up front.

/// A counting multiset over small `usize` keys with O(1) amortized `min`.
#[derive(Clone, Debug, Default)]
pub struct MinMultiset {
    /// `counts[v]` = multiplicity of value `v`.
    counts: Vec<u32>,
    /// Total elements across all buckets.
    len: usize,
    /// Lower bound on the minimum occupied bucket: no bucket below
    /// `cursor` is occupied. Advanced lazily by [`MinMultiset::min`].
    cursor: usize,
}

impl MinMultiset {
    /// An empty multiset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements (counting multiplicity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds one occurrence of `value`.
    pub fn insert(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.len += 1;
        if value < self.cursor {
            self.cursor = value;
        }
    }

    /// Removes one occurrence of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not present — the caller (the admission
    /// controller) inserts and removes symmetrically, so an absent value
    /// is a bookkeeping bug worth failing loudly on.
    pub fn remove(&mut self, value: usize) {
        assert!(
            value < self.counts.len() && self.counts[value] > 0,
            "MinMultiset::remove({value}): value not present"
        );
        self.counts[value] -= 1;
        self.len -= 1;
    }

    /// The smallest value present, or `None` when empty. Amortized O(1):
    /// the cursor only ever moves forward (insertions below it move it
    /// back, but each such move was paid for by that insertion).
    pub fn min(&mut self) -> Option<usize> {
        if self.len == 0 {
            // Nothing left: park the cursor at the origin so the next
            // insertion starts fresh.
            self.cursor = 0;
            return None;
        }
        while self.counts[self.cursor] == 0 {
            self.cursor += 1;
        }
        Some(self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_min() {
        let mut m = MinMultiset::new();
        assert!(m.is_empty());
        assert_eq!(m.min(), None);
    }

    #[test]
    fn tracks_min_through_inserts_and_removes() {
        let mut m = MinMultiset::new();
        m.insert(5);
        m.insert(3);
        m.insert(7);
        assert_eq!(m.min(), Some(3));
        m.remove(3);
        assert_eq!(m.min(), Some(5));
        m.insert(1);
        assert_eq!(m.min(), Some(1));
        m.remove(1);
        m.remove(5);
        assert_eq!(m.min(), Some(7));
        m.remove(7);
        assert_eq!(m.min(), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn duplicates_count_multiplicity() {
        let mut m = MinMultiset::new();
        m.insert(4);
        m.insert(4);
        m.remove(4);
        assert_eq!(m.min(), Some(4));
        m.remove(4);
        assert_eq!(m.min(), None);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn removing_absent_value_panics() {
        let mut m = MinMultiset::new();
        m.insert(2);
        m.remove(3);
    }

    #[test]
    fn matches_naive_min_over_random_ops() {
        // Deterministic mixed workload compared against a shadow Vec.
        let mut m = MinMultiset::new();
        let mut shadow: Vec<usize> = Vec::new();
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..10_000 {
            if shadow.is_empty() || next() % 3 != 0 {
                let v = next() % 160;
                m.insert(v);
                shadow.push(v);
            } else {
                let idx = next() % shadow.len();
                let v = shadow.swap_remove(idx);
                m.remove(v);
            }
            assert_eq!(m.min(), shadow.iter().min().copied());
            assert_eq!(m.len(), shadow.len());
        }
    }
}
