//! Theorem 1: the closed-form solution of the buffer-size recurrence.
//!
//! For `n < N` the paper solves the recurrence of [`crate::recurrence`] as
//!
//! ```text
//! BS_k(n) = DL·CR·[ (CR/TR)^e · Π_{i=1}^{e−1} n_i · N²·TR/(TR − N·CR)
//!                 + Σ_{i=0}^{e−2} (CR/TR)^i · Π_{j=1}^{i+1} n_j
//!                 + (CR/TR)^{e−1} · N · Π_{j=1}^{e−1} n_j ]
//! ```
//!
//! where `n_j = n + j·k + (j−1)·j·α/2` is the predicted load after `j`
//! usage periods and
//!
//! ```text
//! e = ⌈ ( α/2 − k + √(k² + α·(2·(N−n) − k) + α²/4) ) / α ⌉
//! ```
//!
//! is the number of periods until the predicted load reaches `N` — the
//! smallest integer with `n_e ≥ N` (the discriminant rewrites to
//! `(k − α/2)² + 2α(N−n) ≥ 0`, so `e` is always defined).
//!
//! For `n = N` the size is the static full-load size (Eq. 11). The
//! property tests at the bottom verify the closed form against the
//! recurrence across the entire parameter range.

use vod_types::{Bits, Seconds};

use crate::params::SystemParams;

/// The horizon `e` of Theorem 1: the number of usage periods until the
/// predicted load `n_j = n + j·k + (j−1)·j·α/2` reaches `N`.
///
/// Returns 0 when `n ≥ N` (the recurrence never unrolls).
#[must_use]
pub fn horizon(n: usize, k: usize, alpha: u32, big_n: usize) -> usize {
    if n >= big_n {
        return 0;
    }
    let a = f64::from(alpha.max(1));
    let kf = k as f64;
    let gap = (big_n - n) as f64;
    let disc = kf * kf + a * (2.0 * gap - kf) + a * a / 4.0;
    // disc = (k − α/2)² + 2α(N − n) ≥ 2α > 0 for n < N.
    let e = ((a / 2.0 - kf + disc.sqrt()) / a).ceil();
    // Guard against float error pushing an exact integer over the edge.
    let mut e = e.max(1.0) as usize;
    let n_at = |j: usize| n + j * k + (j.saturating_sub(1)) * j * (alpha as usize) / 2;
    while n_at(e) < big_n {
        e += 1;
    }
    while e > 1 && n_at(e - 1) >= big_n {
        e -= 1;
    }
    e
}

/// `BS_k(n)` by Theorem 1's closed form, using the configured method's
/// worst-case `DL` at the current load `n`.
#[must_use]
pub fn buffer_size_closed_form(params: &SystemParams, n: usize, k: usize) -> Bits {
    buffer_size_closed_form_with_dl(params, n, k, params.disk_latency(n))
}

/// As [`buffer_size_closed_form`] but with an explicit `DL` (Table 2
/// substitutes a different `DL` per scheduling method).
#[must_use]
pub fn buffer_size_closed_form_with_dl(
    params: &SystemParams,
    n: usize,
    k: usize,
    dl: Seconds,
) -> Bits {
    let big_n = params.max_requests();
    let tr = params.tr().as_f64();
    let cr = params.cr().as_f64();
    let dl = dl.as_secs_f64();
    let nf = big_n as f64;

    if n >= big_n {
        // Eq. 11: the fully loaded boundary.
        return Bits::new(dl * nf * cr * tr / (tr - nf * cr));
    }
    if n + k == 0 {
        // Idle system with no predicted arrivals: nothing to buffer.
        return Bits::ZERO;
    }

    let alpha = params.alpha as usize;
    let e = horizon(n, k, params.alpha, big_n);
    let ratio = cr / tr;
    // Predicted load after j periods.
    let n_at = |j: usize| (n + j * k + j.saturating_sub(1) * j * alpha / 2) as f64;

    // Running prefix products Π_{j=1}^{m} n_j, accumulated incrementally.
    // Middle term: Σ_{i=0}^{e−2} ratio^i · Π_{j=1}^{i+1} n_j.
    let mut sum = 0.0;
    let mut prefix = 1.0; // Π_{j=1}^{m} n_j, built up as m grows.
    let mut ratio_pow = 1.0; // ratio^i
    for i in 0..e.saturating_sub(1) {
        prefix *= n_at(i + 1);
        sum += ratio_pow * prefix;
        ratio_pow *= ratio;
    }
    // After the loop: prefix = Π_{j=1}^{e−1} n_j  (or 1 when e = 1),
    // ratio_pow = ratio^{e−1}.
    let prod_e_minus_1 = if e >= 2 { prefix } else { 1.0 };
    let ratio_e_minus_1 = if e >= 2 { ratio_pow } else { 1.0 };

    let head = ratio_e_minus_1 * ratio * prod_e_minus_1 * nf * nf * tr / (tr - nf * cr);
    let tail = ratio_e_minus_1 * nf * prod_e_minus_1;

    Bits::new(dl * cr * (head + sum + tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recurrence::buffer_size_recursive_with_dl;
    use crate::static_scheme::static_buffer_size;
    use proptest::prelude::*;
    use vod_sched::SchedulingMethod;

    fn params() -> SystemParams {
        SystemParams::paper_defaults(SchedulingMethod::RoundRobin)
    }

    fn relative_error(a: f64, b: f64) -> f64 {
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            (a - b).abs() / a.abs().max(b.abs())
        }
    }

    #[test]
    fn horizon_is_minimal_with_n_e_at_least_big_n() {
        for alpha in 1..=4u32 {
            for n in 0..79usize {
                for k in [0usize, 1, 2, 5, 10, 40, 79] {
                    let e = horizon(n, k, alpha, 79);
                    let n_at =
                        |j: usize| n + j * k + j.saturating_sub(1) * j * (alpha as usize) / 2;
                    assert!(e >= 1);
                    assert!(
                        n_at(e) >= 79,
                        "e={e} too small at (n={n}, k={k}, α={alpha})"
                    );
                    if e > 1 {
                        assert!(
                            n_at(e - 1) < 79,
                            "e={e} not minimal at (n={n}, k={k}, α={alpha})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn horizon_zero_at_full_load() {
        assert_eq!(horizon(79, 0, 1, 79), 0);
        assert_eq!(horizon(100, 3, 1, 79), 0);
    }

    #[test]
    fn closed_form_matches_recurrence_exhaustively() {
        // The heart of the Theorem-1 transcription check: every (n, k)
        // cell of the precomputation table, α = 1 (the paper's value).
        let p = params();
        let dl = p.disk_latency(40);
        for n in 0..=79usize {
            for k in 0..=79usize {
                let cf = buffer_size_closed_form_with_dl(&p, n, k, dl).as_f64();
                let rec = buffer_size_recursive_with_dl(&p, n, k, dl).as_f64();
                assert!(
                    relative_error(cf, rec) < 1e-9,
                    "mismatch at (n={n}, k={k}): closed {cf}, recurrence {rec}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn closed_form_matches_recurrence_over_alpha(
            n in 0usize..79,
            k in 0usize..100,
            alpha in 1u32..6,
        ) {
            let mut p = params();
            p.alpha = alpha;
            let dl = p.disk_latency(n.max(1));
            let cf = buffer_size_closed_form_with_dl(&p, n, k, dl).as_f64();
            let rec = buffer_size_recursive_with_dl(&p, n, k, dl).as_f64();
            prop_assert!(
                relative_error(cf, rec) < 1e-9,
                "mismatch at (n={}, k={}, α={}): closed {}, recurrence {}",
                n, k, alpha, cf, rec
            );
        }

        #[test]
        fn closed_form_bounded_by_static_full_size(
            n in 0usize..=79,
            k in 0usize..=79,
        ) {
            let p = params();
            let bs = buffer_size_closed_form(&p, n, k).as_f64();
            let full = static_buffer_size(&p, 79).as_f64();
            prop_assert!(bs <= full * (1.0 + 1e-12));
            prop_assert!(bs >= 0.0);
        }
    }

    #[test]
    fn matches_recurrence_for_other_methods() {
        for m in [SchedulingMethod::Sweep, SchedulingMethod::GSS_PAPER] {
            let p = SystemParams::paper_defaults(m);
            for n in [1usize, 7, 33, 60, 78] {
                for k in [0usize, 1, 4, 12] {
                    let dl = p.disk_latency(n);
                    let cf = buffer_size_closed_form_with_dl(&p, n, k, dl).as_f64();
                    let rec = buffer_size_recursive_with_dl(&p, n, k, dl).as_f64();
                    assert!(
                        relative_error(cf, rec) < 1e-9,
                        "{m}: mismatch at (n={n}, k={k})"
                    );
                }
            }
        }
    }

    #[test]
    fn full_load_is_static_size() {
        let p = params();
        let cf = buffer_size_closed_form(&p, 79, 0);
        let st = static_buffer_size(&p, 79);
        assert!(relative_error(cf.as_f64(), st.as_f64()) < 1e-12);
    }

    #[test]
    fn fig9_shape_dynamic_well_below_static_at_light_load() {
        // Fig. 9: with k = 4 (Round-Robin's measured estimate), the dynamic
        // size at n = 10 is a small fraction of the static 28 MB.
        let p = params();
        let dynamic = buffer_size_closed_form(&p, 10, 4);
        let static_ = static_buffer_size(&p, 79);
        assert!(dynamic.as_f64() < 0.05 * static_.as_f64());
    }
}
