//! Estimating the number of additional requests (`k_log`, Fig. 5 / Table 1).
//!
//! *Additional requests* at a buffer-allocation time are the user requests
//! that arrive within one service period from that time (Fig. 2). The
//! dynamic scheme estimates how many to expect from recent history:
//! `k_log` is the **maximum** number of arrivals observed in any
//! service-period-long window during the last `T_log` (Table 1), and the
//! estimate used for sizing is `k_log + α` (clamped by Assumption 2 at the
//! admission controller).
//!
//! §5.1 studies the choice of `T_log` (Fig. 7): the paper settles on
//! 40 minutes for Round-Robin and 20 minutes for Sweep\*/GSS\*.

use std::collections::VecDeque;

use vod_types::{Instant, Seconds};

/// A sliding log of request arrival times, answering "what is the largest
/// number of arrivals in any window of length `period` within the last
/// `T_log`?".
#[derive(Clone, Debug)]
pub struct ArrivalLog {
    t_log: Seconds,
    arrivals: VecDeque<Instant>,
    /// Bumped whenever the retained set changes (a record or a prune
    /// pop). The sweep in [`ArrivalLog::k_log`] depends only on the
    /// retained arrivals and `period` — `now` enters only through
    /// pruning — so `(generation, period)` fully keys its result.
    generation: u64,
    /// `(generation, period, k)` of the last sweep, reused verbatim
    /// while the retained set and period are unchanged. In steady state
    /// many services run between arrivals, so this turns the O(len)
    /// sweep into an O(1) lookup without changing a single bit.
    memo: Option<(u64, Seconds, usize)>,
}

impl ArrivalLog {
    /// Creates a log with retention horizon `t_log`.
    #[must_use]
    pub fn new(t_log: Seconds) -> Self {
        ArrivalLog {
            t_log,
            arrivals: VecDeque::new(),
            generation: 0,
            memo: None,
        }
    }

    /// The retention horizon `T_log`.
    #[must_use]
    pub fn t_log(&self) -> Seconds {
        self.t_log
    }

    /// Records an arrival. Arrivals must be recorded in nondecreasing
    /// time order (they come from a single clock); out-of-order records
    /// are clamped up to maintain the invariant.
    pub fn record(&mut self, at: Instant) {
        let at = match self.arrivals.back() {
            Some(&last) if at < last => last,
            _ => at,
        };
        self.arrivals.push_back(at);
        self.generation += 1;
    }

    /// `k_log`: the maximum number of arrivals in any window of length
    /// `period` that starts within the retained horizon `[now − T_log,
    /// now]`. Also prunes entries older than the horizon.
    ///
    /// Windows are anchored at arrivals and half-open `[aᵢ, aᵢ + T)`, so
    /// the anchoring arrival counts itself: the estimate is one higher
    /// than a strict reading of the paper's `(t, t + T]` definition of
    /// additional requests. This is deliberate — it errs conservative
    /// (slightly larger buffers, never smaller), and the workload
    /// calibration in EXPERIMENTS.md is done with this convention.
    ///
    /// Returns 0 when no arrivals are retained or `period` is
    /// non-positive.
    pub fn k_log(&mut self, now: Instant, period: Seconds) -> usize {
        self.prune(now);
        if self.arrivals.is_empty() || period <= Seconds::ZERO {
            return 0;
        }
        if let Some((gen, p, k)) = self.memo {
            if gen == self.generation && p == period {
                return k;
            }
        }
        // Max over windows anchored at each retained arrival: the densest
        // window starts at an arrival. Two-pointer sweep, O(len).
        let times = self.arrivals.make_contiguous();
        let mut best = 0usize;
        let mut j = 0usize;
        for i in 0..times.len() {
            if j < i {
                j = i;
            }
            while j < times.len() && times[j] - times[i] < period {
                j += 1;
            }
            best = best.max(j - i);
        }
        self.memo = Some((self.generation, period, best));
        best
    }

    /// Number of retained arrivals (after the last prune).
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no arrivals are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    fn prune(&mut self, now: Instant) {
        let horizon = now - self.t_log;
        while let Some(&front) = self.arrivals.front() {
            if front < horizon {
                self.arrivals.pop_front();
                self.generation += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> Instant {
        Instant::from_secs(secs)
    }

    fn log_with(arrivals: &[f64], t_log_min: f64) -> ArrivalLog {
        let mut log = ArrivalLog::new(Seconds::from_minutes(t_log_min));
        for &a in arrivals {
            log.record(t(a));
        }
        log
    }

    #[test]
    fn empty_log_estimates_zero() {
        let mut log = ArrivalLog::new(Seconds::from_minutes(40.0));
        assert_eq!(log.k_log(t(100.0), Seconds::from_secs(10.0)), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn counts_burst_within_one_period() {
        // 3 arrivals within 5 s, then a lone one much later.
        let mut log = log_with(&[10.0, 12.0, 14.0, 200.0], 40.0);
        assert_eq!(log.k_log(t(210.0), Seconds::from_secs(10.0)), 3);
    }

    #[test]
    fn window_is_half_open() {
        // Arrivals exactly `period` apart are in different windows.
        let mut log = log_with(&[0.0, 10.0, 20.0], 40.0);
        assert_eq!(log.k_log(t(25.0), Seconds::from_secs(10.0)), 1);
        assert_eq!(log.k_log(t(25.0), Seconds::from_secs(10.1)), 2);
    }

    #[test]
    fn prunes_beyond_t_log() {
        let mut log = log_with(&[0.0, 1.0, 2.0], 1.0); // T_log = 1 min
                                                       // At t = 100 s, everything is older than 60 s and pruned.
        assert_eq!(log.k_log(t(100.0), Seconds::from_secs(10.0)), 0);
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn longer_t_log_retains_bigger_bursts() {
        // A big burst 30 min ago: visible with T_log = 40 min, invisible
        // with T_log = 10 min. This is the Fig. 7 trade-off.
        let burst = [0.0, 1.0, 2.0, 3.0, 4.0];
        let now = t(30.0 * 60.0);
        let period = Seconds::from_secs(30.0);

        let mut long = log_with(&burst, 40.0);
        long.record(now - Seconds::from_secs(1.0));
        assert_eq!(long.k_log(now, period), 5);

        let mut short = log_with(&burst, 10.0);
        short.record(now - Seconds::from_secs(1.0));
        assert_eq!(short.k_log(now, period), 1);
    }

    #[test]
    fn longer_period_never_decreases_k_log() {
        let mut log = log_with(&[3.0, 9.0, 14.0, 15.0, 33.0, 50.0], 40.0);
        let now = t(60.0);
        let mut prev = 0;
        for p in 1..=60 {
            let k = log.k_log(now, Seconds::from_secs(f64::from(p)));
            assert!(k >= prev, "k_log not monotone in period at {p}s");
            prev = k;
        }
        assert_eq!(prev, 6);
    }

    #[test]
    fn memoized_k_log_matches_fresh_sweep() {
        // Interleave records, repeated queries (memo hits), and queries
        // that force pruning; every answer must match a fresh log's.
        let arrivals = [3.0, 9.0, 14.0, 15.0, 33.0, 50.0, 70.0, 70.0, 90.0];
        let mut live = ArrivalLog::new(Seconds::from_secs(45.0));
        // Queries use a monotone clock so the fresh log's single prune
        // reaches the same horizon as the live log's prune history.
        let mut clock = 0.0f64;
        for (i, &a) in arrivals.iter().enumerate() {
            live.record(t(a));
            for q in 0..4 {
                clock = clock.max(a + f64::from(q) * 7.0);
                let now = t(clock);
                let period = Seconds::from_secs(if q % 2 == 0 { 10.0 } else { 25.0 });
                let mut fresh = ArrivalLog::new(Seconds::from_secs(45.0));
                for &b in &arrivals[..=i] {
                    fresh.record(t(b));
                }
                // A fresh log has no memo; compare against its sweep.
                let want = fresh.k_log(now, period);
                assert_eq!(live.k_log(now, period), want, "at={a} q={q}");
            }
        }
    }

    #[test]
    fn out_of_order_records_are_clamped() {
        let mut log = ArrivalLog::new(Seconds::from_minutes(40.0));
        log.record(t(10.0));
        log.record(t(5.0)); // clamped to 10.0
        assert_eq!(log.k_log(t(11.0), Seconds::from_secs(1.0)), 2);
    }
}
