//! # Dynamic buffer allocation for video-on-demand systems
//!
//! This crate implements the primary contribution of *Lee, Whang, Moon,
//! Han, Song — "Dynamic Buffer Allocation in Video-on-Demand Systems"*
//! (SIGMOD 2001; extended in IEEE TKDE 15(6), 2003), together with the
//! static baseline it is compared against.
//!
//! ## The problem
//!
//! A VOD server refills one buffer per active stream, round after round.
//! A buffer must hold exactly the data its stream consumes until the
//! server gets back to it — the *usage period*. The classic **static**
//! scheme sizes every buffer for the fully loaded server
//! ([`static_scheme::static_buffer_size`], Eq. 5), wasting memory and
//! inflating initial latency whenever the server is not full.
//!
//! Sizing buffers for the *current* load is circular: the usage period of
//! the buffer being allocated depends on how many buffers — **of what
//! sizes** — will be serviced before the server returns, and those future
//! sizes depend on future loads.
//!
//! ## The paper's solution
//!
//! 1. **Predict** the future load with two *inertia assumptions*
//!    (§3.1): while this buffer lives, (1) the number of streams serviced
//!    never exceeds `n_c + k_c`, and (2) the estimate `k` grows by at most
//!    `α` per usage period.
//! 2. **Enforce** the assumptions at runtime by deferring any new request
//!    that would violate them ([`admission::AdmissionController`],
//!    the algorithm of Fig. 5).
//! 3. Under the assumptions, the minimum safe size `BS_k(n)` satisfies a
//!    recurrence ([`recurrence::buffer_size_recursive`]); Theorem 1 solves
//!    it in closed form ([`closed_form::buffer_size_closed_form`]), which
//!    [`table::SizeTable`] precomputes in `O(N²)` at startup, as §3.3
//!    prescribes.
//!
//! The minimum memory the server then needs, per scheduling method, is
//! given by Theorems 2–4 ([`memory`]).
//!
//! ## Quick start
//!
//! ```
//! use vod_core::{SystemParams, table::SizeTable};
//! use vod_sched::SchedulingMethod;
//!
//! let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
//! assert_eq!(params.max_requests(), 79); // Table 3's N
//!
//! let table = SizeTable::build(&params);
//! // A lightly loaded server allocates a fraction of the static size:
//! let light = table.size(5, 1);
//! let full = table.size(79, 0);
//! assert!(light.as_f64() < 0.1 * full.as_f64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod aggregate;
pub mod closed_form;
pub mod estimator;
pub mod memory;
pub mod multirate;
pub mod params;
pub mod recurrence;
pub mod scheme;
pub mod static_scheme;
pub mod table;

pub use admission::{AdmissionConstraint, AdmissionController, Allocation};
pub use aggregate::MinMultiset;
pub use estimator::ArrivalLog;
pub use multirate::{MultiRateSystem, RateAdaptation};
pub use params::SystemParams;
pub use scheme::SchemeKind;
pub use table::SizeTable;
