//! Minimum memory requirements — Theorems 2, 3, and 4 of the paper.
//!
//! The minimum memory to support `n` streams (with `k` estimated
//! additional requests) is the peak of the total buffer occupancy over a
//! steady-state service period, under use-it-and-toss-it release. The
//! paper derives it per scheduling method:
//!
//! * **Theorem 2 (Round-Robin / BubbleUp)** — buffers are refilled at
//!   equal spacings `T/(k+n)`, so their sawtooth occupancies stagger:
//!   `n·BS − BS·n(n−1)/(2(k+n)) + n·CR·DL`.
//! * **Theorem 3 (Sweep\*)** — peak when the `(n−1)`-th of `n` buffers is
//!   allocated.
//! * **Theorem 4 (GSS\*)** — groups of `g` refill together; the peak
//!   combines the group sawtooth with the within-group Sweep\* peak. The
//!   `g ≥ n` case degenerates to Theorem 3 and `g = 1` to Theorem 2.
//!
//! Throughout, `T` is the usage period `(k+n)·(BS/TR + DL)`, so
//! `T/(k+n) = BS/TR + DL` — the service slot of one buffer.
//!
//! **Static-scheme memory.** For the baseline we evaluate the same
//! theorems with `BS := BS(N)` and `k := N − n`: the static scheme's
//! buffers last the *full-load* period `N·(BS(N)/TR + DL)`, of which the
//! `n` resident streams occupy `n` service slots — exactly the geometry
//! the theorems describe at `(n, k) = (n, N − n)`. At `n = N` both schemes
//! coincide, as the paper requires.

use vod_types::Bits;

use crate::params::SystemParams;
use crate::static_scheme::static_buffer_size;
use crate::table::SizeTable;

/// Minimum memory for the **dynamic** scheme at load `(n, k)`, using the
/// configured scheduling method and `BS = BS_k(n)` from `table`.
#[must_use]
pub fn min_memory_dynamic(params: &SystemParams, table: &SizeTable, n: usize, k: usize) -> Bits {
    let bs = table.size(n, k);
    min_memory_with(params, bs, n, k)
}

/// Minimum memory for the **static** scheme at load `n` (see the module
/// docs for the `k := N − n` substitution).
#[must_use]
pub fn min_memory_static(params: &SystemParams, n: usize) -> Bits {
    let big_n = params.max_requests();
    let n = n.min(big_n);
    let bs = static_buffer_size(params, big_n);
    min_memory_with(params, bs, n, big_n - n)
}

/// Minimum memory at load `(n, k)` for an arbitrary buffer size `bs`,
/// dispatching on the configured scheduling method.
#[must_use]
pub fn min_memory_with(params: &SystemParams, bs: Bits, n: usize, k: usize) -> Bits {
    if n == 0 {
        return Bits::ZERO;
    }
    use vod_sched::SchedulingMethod;
    let cr = params.cr().as_f64();
    let tr = params.tr().as_f64();
    let dl = params.disk_latency(n).as_secs_f64();
    let mem = match params.method {
        SchedulingMethod::RoundRobin => mem_round_robin(bs.as_f64(), n, k, cr, dl),
        SchedulingMethod::Sweep => mem_sweep(bs.as_f64(), n, k, cr, tr, dl),
        SchedulingMethod::Gss { .. } => {
            let g = params.method.effective_group_size(n);
            if g >= n {
                // GSS* with one group services exactly like Sweep*.
                mem_sweep(bs.as_f64(), n, k, cr, tr, dl)
            } else if g <= 1 {
                // ... and with singleton groups, like Round-Robin.
                mem_round_robin(bs.as_f64(), n, k, cr, dl)
            } else {
                mem_gss(bs.as_f64(), n, k, g, cr, tr, dl)
            }
        }
    };
    Bits::new(mem.max(0.0))
}

/// Theorem 2: Round-Robin (BubbleUp).
fn mem_round_robin(bs: f64, n: usize, k: usize, cr: f64, dl: f64) -> f64 {
    let nf = n as f64;
    let kn = (k + n) as f64;
    nf * bs - bs * nf * (nf - 1.0) / (2.0 * kn) + nf * cr * dl
}

/// Theorem 3: Sweep\*.
fn mem_sweep(bs: f64, n: usize, k: usize, cr: f64, tr: f64, dl: f64) -> f64 {
    let _ = k; // The slot length T/(k+n) = BS/TR + DL is k-free.
    let slot = bs / tr + dl;
    if n > 1 {
        let nf = n as f64;
        (nf - 1.0) * bs + (nf * slot - (nf - 2.0) * bs / tr) * cr * nf
    } else {
        bs + slot * cr
    }
}

/// Theorem 4: GSS\* with `1 < g < n`.
fn mem_gss(bs: f64, n: usize, k: usize, g: usize, cr: f64, tr: f64, dl: f64) -> f64 {
    let _ = k; // As in Theorem 3: every T appears divided by (k+n).
    let slot = bs / tr + dl; // T/(k+n)
    let gf = g as f64;
    let nf = n as f64;
    let full_groups = n / g;
    let g_prime = n - full_groups * g;
    let big_g = n.div_ceil(g);
    let big_gf = big_g as f64;

    if g_prime == 0 {
        // G = n/g exactly.
        let per_group = gf * bs
            - (nf * slot + (gf - 2.0) * bs / tr - gf * slot * (big_gf + 2.0) / 2.0) * cr * gf;
        (big_gf - 1.0) * per_group + (gf - 1.0) * bs + (gf * slot - (gf - 2.0) * bs / tr) * cr * gf
    } else {
        // G = ⌈n/g⌉ with a short last group of g' buffers.
        let gpf = g_prime as f64;
        let per_group = gf * bs
            - (nf * slot + (gf - 2.0) * bs / tr - gf * slot * (big_gf + 1.0) / 2.0) * cr * gf;
        (big_gf - 2.0) * per_group
            + bs * (gf + gpf - 1.0)
            + cr * ((gf * slot - (gf - 2.0) * bs / tr) * gf - (gf - 2.0) * gpf * bs / tr)
    }
}

/// The GSS group size `g` minimizing full-load memory for `params`' disk
/// and consumption rate — how the paper (after Yu et al. and Chang &
/// Garcia-Molina) picks `g = 8` for the Barracuda 9LP (§5.1).
///
/// Scans `g ∈ [1, N]`, evaluating the static full-load buffer size under
/// `DL = γ(Cyln/g) + θ` and the matching memory theorem.
#[must_use]
pub fn optimal_gss_group_size(params: &SystemParams) -> usize {
    use vod_sched::SchedulingMethod;
    let big_n = params.max_requests();
    let mut best = (1usize, f64::INFINITY);
    for g in 1..=big_n.max(1) {
        let mut p = params.clone();
        p.method = SchedulingMethod::Gss { group_size: g };
        let bs = static_buffer_size(&p, big_n);
        let mem = min_memory_with(&p, bs, big_n, 0).as_f64();
        if mem < best.1 {
            best = (g, mem);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sched::SchedulingMethod;

    fn params(m: SchedulingMethod) -> SystemParams {
        SystemParams::paper_defaults(m)
    }

    fn table(m: SchedulingMethod) -> (SystemParams, SizeTable) {
        let p = params(m);
        let t = SizeTable::build(&p);
        (p, t)
    }

    #[test]
    fn zero_streams_need_no_memory() {
        for m in SchedulingMethod::paper_methods() {
            let (p, t) = table(m);
            assert_eq!(min_memory_dynamic(&p, &t, 0, 3), Bits::ZERO);
            assert_eq!(min_memory_static(&p, 0), Bits::ZERO);
        }
    }

    #[test]
    fn theorem2_matches_hand_computation() {
        let (p, t) = table(SchedulingMethod::RoundRobin);
        let n = 10;
        let k = 4;
        let bs = t.size(n, k).as_f64();
        let dl = p.disk_latency(n).as_secs_f64();
        let expected = 10.0 * bs - bs * 10.0 * 9.0 / (2.0 * 14.0) + 10.0 * 1.5e6 * dl;
        let got = min_memory_dynamic(&p, &t, n, k).as_f64();
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn theorem3_matches_hand_computation() {
        let (p, t) = table(SchedulingMethod::Sweep);
        let n = 10;
        let k = 3;
        let bs = t.size(n, k).as_f64();
        let dl = p.disk_latency(n).as_secs_f64();
        let slot = bs / 120.0e6 + dl;
        let expected = 9.0 * bs + (10.0 * slot - 8.0 * bs / 120.0e6) * 1.5e6 * 10.0;
        let got = min_memory_dynamic(&p, &t, n, k).as_f64();
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn theorem3_single_stream_case() {
        let (p, t) = table(SchedulingMethod::Sweep);
        let bs = t.size(1, 3).as_f64();
        let dl = p.disk_latency(1).as_secs_f64();
        let expected = bs + (bs / 120.0e6 + dl) * 1.5e6;
        let got = min_memory_dynamic(&p, &t, 1, 3).as_f64();
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn theorem4_divisible_and_ragged_cases_are_continuous() {
        // Memory as a function of n should not jump wildly when n crosses
        // a group boundary (16 -> 17 with g = 8).
        let (p, t) = table(SchedulingMethod::GSS_PAPER);
        let m16 = min_memory_dynamic(&p, &t, 16, 3).as_f64();
        let m17 = min_memory_dynamic(&p, &t, 17, 3).as_f64();
        let m24 = min_memory_dynamic(&p, &t, 24, 3).as_f64();
        assert!(m16 > 0.0 && m17 > 0.0 && m24 > 0.0);
        assert!(
            m17 > m16 * 0.8 && m17 < m24 * 1.2,
            "m16={m16} m17={m17} m24={m24}"
        );
    }

    #[test]
    fn dynamic_memory_is_below_static_memory_at_partial_load() {
        // The headline of Fig. 12.
        for m in SchedulingMethod::paper_methods() {
            let (p, t) = table(m);
            let k = 4;
            for n in [1usize, 10, 30, 50, 70] {
                let dynamic = min_memory_dynamic(&p, &t, n, k).as_f64();
                let static_ = min_memory_static(&p, n).as_f64();
                assert!(
                    dynamic < static_,
                    "{m} at n={n}: dynamic {dynamic} >= static {static_}"
                );
            }
        }
    }

    #[test]
    fn schemes_coincide_at_full_load() {
        for m in SchedulingMethod::paper_methods() {
            let (p, t) = table(m);
            let dynamic = min_memory_dynamic(&p, &t, 79, 0).as_f64();
            let static_ = min_memory_static(&p, 79).as_f64();
            assert!(
                (dynamic - static_).abs() / static_ < 1e-9,
                "{m}: dynamic {dynamic} vs static {static_}"
            );
        }
    }

    #[test]
    fn memory_grows_with_n() {
        for m in SchedulingMethod::paper_methods() {
            let (p, t) = table(m);
            let mut prev = 0.0;
            for n in 1..=79 {
                let mem = min_memory_dynamic(&p, &t, n, 2).as_f64();
                assert!(mem > prev * 0.95, "{m}: dip at n={n}");
                prev = mem;
            }
        }
    }

    #[test]
    fn memory_is_bounded_by_full_buffers_plus_latency_slack() {
        // No scheme can *need* more than n full buffers plus n·CR·DL.
        for m in SchedulingMethod::paper_methods() {
            let (p, t) = table(m);
            for n in [1usize, 8, 16, 33, 79] {
                for k in [0usize, 3, 10] {
                    let bs = t.size(n, k).as_f64();
                    let dl = p.disk_latency(n).as_secs_f64();
                    let slot = bs / 120.0e6 + dl;
                    // n full buffers, plus consumption over up to n service
                    // slots for each of the n streams, plus latency slack.
                    let bound = (n as f64) * bs
                        + (n as f64) * (n as f64) * slot * 1.5e6
                        + (n as f64) * 1.5e6 * dl * 2.0;
                    let mem = min_memory_dynamic(&p, &t, n, k).as_f64();
                    assert!(mem <= bound * 1.01, "{m} (n={n},k={k}): {mem} > {bound}");
                    assert!(mem > 0.0);
                }
            }
        }
    }

    #[test]
    fn sweep_needs_less_memory_than_round_robin_at_full_load() {
        // Smaller DL -> smaller buffers -> less memory (Fig. 12a vs 12b).
        let (pr, tr_) = table(SchedulingMethod::RoundRobin);
        let (ps, ts) = table(SchedulingMethod::Sweep);
        let rr = min_memory_dynamic(&pr, &tr_, 79, 0).as_f64();
        let sw = min_memory_dynamic(&ps, &ts, 79, 0).as_f64();
        assert!(sw < rr);
    }

    #[test]
    fn optimal_group_size_is_moderate() {
        // §5.1: memory is minimized around g = 8 for the Barracuda 9LP.
        // Our substituted cylinder count shifts the optimum slightly at
        // most; accept a small band around the paper's value.
        let p = params(SchedulingMethod::GSS_PAPER);
        let g = optimal_gss_group_size(&p);
        assert!((4..=14).contains(&g), "optimal g = {g}");
    }
}
