//! Heterogeneous display rates — the adaptation of footnote 2.
//!
//! The paper's analysis assumes every stream consumes at the same `CR`,
//! and (after Chang & Garcia-Molina) offers two adaptations for mixed
//! rates:
//!
//! 1. **Maximal rate**: run the whole system at `CR = max_i(CR_i)`. Every
//!    stream occupies one slot sized for the fastest rate — simple, but
//!    slow streams waste buffer and disk bandwidth.
//! 2. **Unit rate**: let the unit rate `u = gcd_i(CR_i)` and treat a
//!    stream of rate `m·u` as `m` *virtual unit-rate streams*: it counts
//!    `m` toward the admission bound and receives an `m×`-sized buffer.
//!
//! [`MultiRateSystem`] implements both behind one interface; its
//! accounting composes with the ordinary [`SizeTable`] and
//! [`AdmissionController`](crate::AdmissionController) (admit a rate-`m`
//! stream by admitting `m` virtual streams).

use vod_disk::DiskProfile;
use vod_sched::SchedulingMethod;
use vod_types::{BitRate, Bits, ConfigError};

use crate::params::SystemParams;
use crate::table::SizeTable;

/// Which footnote-2 adaptation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateAdaptation {
    /// Size everything for the maximum rate; every stream is one slot.
    MaximalRate,
    /// Size for the GCD unit rate; a stream of rate `m·u` is `m` slots.
    UnitRate,
}

/// A VOD system serving a fixed palette of display rates.
#[derive(Clone, Debug)]
pub struct MultiRateSystem {
    params: SystemParams,
    strategy: RateAdaptation,
    unit: BitRate,
}

/// Greatest common divisor of the rates, at 1 bit/s resolution.
///
/// Returns `None` for an empty palette or non-positive rates.
#[must_use]
pub fn gcd_rate(rates: &[BitRate]) -> Option<BitRate> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut acc: u64 = 0;
    for r in rates {
        if !r.is_valid_rate() {
            return None;
        }
        let bits = r.as_f64().round() as u64;
        if bits == 0 {
            return None;
        }
        acc = gcd(acc, bits);
    }
    if acc == 0 {
        None
    } else {
        Some(BitRate::new(acc as f64))
    }
}

impl MultiRateSystem {
    /// Builds a system for the given rate palette.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the palette is empty, a rate is
    /// non-positive, or the derived base system is infeasible (e.g. the
    /// maximal rate exceeds what the disk sustains).
    pub fn new(
        disk: DiskProfile,
        method: SchedulingMethod,
        alpha: u32,
        rates: &[BitRate],
        strategy: RateAdaptation,
    ) -> Result<Self, ConfigError> {
        if rates.is_empty() {
            return Err(ConfigError::new("rates", "palette must not be empty"));
        }
        let unit = match strategy {
            RateAdaptation::MaximalRate => rates.iter().copied().max().expect("non-empty palette"),
            RateAdaptation::UnitRate => gcd_rate(rates)
                .ok_or_else(|| ConfigError::new("rates", "rates must be positive"))?,
        };
        let params = SystemParams {
            disk,
            consumption_rate: unit,
            method,
            alpha,
        };
        params.validate()?;
        Ok(MultiRateSystem {
            params,
            strategy,
            unit,
        })
    }

    /// The underlying single-rate system every formula runs on.
    #[must_use]
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The adaptation in use.
    #[must_use]
    pub fn strategy(&self) -> RateAdaptation {
        self.strategy
    }

    /// The base rate (maximal rate or the GCD unit).
    #[must_use]
    pub fn base_rate(&self) -> BitRate {
        self.unit
    }

    /// How many virtual unit-rate streams a request at `rate` occupies.
    ///
    /// # Errors
    ///
    /// Under [`RateAdaptation::UnitRate`], the rate must be a (near-)
    /// integer multiple of the unit; under [`RateAdaptation::MaximalRate`]
    /// it must not exceed the maximal rate.
    pub fn virtual_streams(&self, rate: BitRate) -> Result<usize, ConfigError> {
        if !rate.is_valid_rate() {
            return Err(ConfigError::new("rate", "must be positive"));
        }
        match self.strategy {
            RateAdaptation::MaximalRate => {
                if rate > self.unit {
                    return Err(ConfigError::new(
                        "rate",
                        format!("{rate} exceeds the maximal palette rate {}", self.unit),
                    ));
                }
                Ok(1)
            }
            RateAdaptation::UnitRate => {
                let m = rate / self.unit;
                let rounded = m.round();
                if (m - rounded).abs() > 1e-6 || rounded < 1.0 {
                    return Err(ConfigError::new(
                        "rate",
                        format!("{rate} is not a multiple of the unit rate {}", self.unit),
                    ));
                }
                Ok(rounded as usize)
            }
        }
    }

    /// Maximum *physical* streams of `rate` the disk can carry alone:
    /// `⌊N_virtual / m⌋`.
    pub fn max_requests_at(&self, rate: BitRate) -> Result<usize, ConfigError> {
        let m = self.virtual_streams(rate)?;
        Ok(self.params.max_requests() / m)
    }

    /// The buffer for a rate-`rate` stream when `n_virtual` unit streams
    /// are in service with `k_virtual` estimated additional: `m` unit
    /// buffers (unit-rate strategy) or one max-rate buffer.
    ///
    /// # Errors
    ///
    /// As [`MultiRateSystem::virtual_streams`].
    pub fn buffer_size(
        &self,
        table: &SizeTable,
        n_virtual: usize,
        k_virtual: usize,
        rate: BitRate,
    ) -> Result<Bits, ConfigError> {
        let m = self.virtual_streams(rate)?;
        Ok(table.size(n_virtual, k_virtual) * m as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> Vec<BitRate> {
        vec![
            BitRate::from_mbps(1.5),
            BitRate::from_mbps(3.0),
            BitRate::from_mbps(6.0),
        ]
    }

    fn unit_system() -> MultiRateSystem {
        MultiRateSystem::new(
            DiskProfile::barracuda_9lp(),
            SchedulingMethod::RoundRobin,
            1,
            &rates(),
            RateAdaptation::UnitRate,
        )
        .expect("feasible palette")
    }

    #[test]
    fn gcd_of_mpeg_palette_is_the_base_rate() {
        let g = gcd_rate(&rates()).expect("positive rates");
        assert!((g.as_mbps() - 1.5).abs() < 1e-9);
        // Relatively prime palette degenerates to small units but works.
        let g2 = gcd_rate(&[BitRate::new(4.0), BitRate::new(6.0)]).expect("positive");
        assert_eq!(g2.as_f64(), 2.0);
        assert!(gcd_rate(&[]).is_none());
        assert!(gcd_rate(&[BitRate::ZERO]).is_none());
    }

    #[test]
    fn unit_rate_multiplicities() {
        let sys = unit_system();
        assert!((sys.base_rate().as_mbps() - 1.5).abs() < 1e-9);
        assert_eq!(sys.virtual_streams(BitRate::from_mbps(1.5)).expect("ok"), 1);
        assert_eq!(sys.virtual_streams(BitRate::from_mbps(3.0)).expect("ok"), 2);
        assert_eq!(sys.virtual_streams(BitRate::from_mbps(6.0)).expect("ok"), 4);
        assert!(sys.virtual_streams(BitRate::from_mbps(2.0)).is_err());
        // Unit system keeps the full N = 79 virtual slots.
        assert_eq!(sys.params().max_requests(), 79);
        assert_eq!(
            sys.max_requests_at(BitRate::from_mbps(6.0)).expect("ok"),
            19
        );
    }

    #[test]
    fn maximal_rate_strategy() {
        let sys = MultiRateSystem::new(
            DiskProfile::barracuda_9lp(),
            SchedulingMethod::RoundRobin,
            1,
            &rates(),
            RateAdaptation::MaximalRate,
        )
        .expect("feasible");
        assert!((sys.base_rate().as_mbps() - 6.0).abs() < 1e-9);
        // Everyone is one slot; the disk fits fewer, fatter streams.
        assert_eq!(sys.virtual_streams(BitRate::from_mbps(1.5)).expect("ok"), 1);
        assert_eq!(sys.params().max_requests(), 19); // 120/6 = 20, strict
        assert!(sys.virtual_streams(BitRate::from_mbps(8.0)).is_err());
    }

    #[test]
    fn unit_rate_buffers_scale_with_multiplicity() {
        let sys = unit_system();
        let table = SizeTable::build(sys.params());
        let one = sys
            .buffer_size(&table, 10, 2, BitRate::from_mbps(1.5))
            .expect("ok");
        let four = sys
            .buffer_size(&table, 10, 2, BitRate::from_mbps(6.0))
            .expect("ok");
        assert!((four.as_f64() - 4.0 * one.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn infeasible_palettes_are_rejected() {
        // A maximal rate beyond the disk's transfer rate cannot stream.
        let res = MultiRateSystem::new(
            DiskProfile::barracuda_9lp(),
            SchedulingMethod::RoundRobin,
            1,
            &[BitRate::from_mbps(150.0)],
            RateAdaptation::MaximalRate,
        );
        assert!(res.is_err());
        let res = MultiRateSystem::new(
            DiskProfile::barracuda_9lp(),
            SchedulingMethod::RoundRobin,
            1,
            &[],
            RateAdaptation::UnitRate,
        );
        assert!(res.is_err());
    }

    #[test]
    fn unit_strategy_outperforms_maximal_for_mixed_populations() {
        // A mostly-slow population: unit-rate admits far more physical
        // streams than sizing everyone for 6 Mbps.
        let unit = unit_system();
        let maximal = MultiRateSystem::new(
            DiskProfile::barracuda_9lp(),
            SchedulingMethod::RoundRobin,
            1,
            &rates(),
            RateAdaptation::MaximalRate,
        )
        .expect("feasible");
        let slow = BitRate::from_mbps(1.5);
        assert!(
            unit.max_requests_at(slow).expect("ok")
                > 3 * maximal.max_requests_at(slow).expect("ok"),
            "unit {} vs maximal {}",
            unit.max_requests_at(slow).expect("ok"),
            maximal.max_requests_at(slow).expect("ok")
        );
    }
}
