//! System-wide parameters shared by every formula in the paper.

use vod_disk::DiskProfile;
use vod_sched::SchedulingMethod;
use vod_types::{BitRate, ConfigError, Seconds};

/// The constants of Table 1 bound to concrete values: the disk, the stream
/// consumption rate `CR`, the scheduling method (which fixes `DL`), and
/// the inertia slack `α`.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemParams {
    /// The disk servicing the streams.
    pub disk: DiskProfile,
    /// Per-stream consumption rate `CR`.
    pub consumption_rate: BitRate,
    /// The buffer scheduling method in use.
    pub method: SchedulingMethod,
    /// Assumption 2's slack `α ≥ 1`: how much the estimate of additional
    /// requests may grow per usage period. The paper uses 1 (§3.1): VOD
    /// service periods are short, so arrival rates rarely jump within one.
    pub alpha: u32,
}

impl SystemParams {
    /// The paper's evaluation environment (§5.1): a Seagate Barracuda 9LP
    /// serving 1.5 Mbps MPEG-1 streams, `α = 1`.
    #[must_use]
    pub fn paper_defaults(method: SchedulingMethod) -> Self {
        SystemParams {
            disk: DiskProfile::barracuda_9lp(),
            consumption_rate: BitRate::from_mbps(1.5),
            method,
            alpha: 1,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the disk or method is invalid,
    /// `CR` is non-positive, `TR ≤ CR` (the disk cannot sustain even one
    /// stream), or `α = 0` (footnote 5 of the paper: with `α = 0` and
    /// `k_c = 0` the system could never admit anything).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.disk.validate()?;
        self.method.validate()?;
        if !self.consumption_rate.is_valid_rate() {
            return Err(ConfigError::new("consumption_rate", "must be positive"));
        }
        if self.max_requests() == 0 {
            return Err(ConfigError::new(
                "consumption_rate",
                format!(
                    "TR = {} cannot sustain a single stream at CR = {}",
                    self.disk.transfer_rate, self.consumption_rate
                ),
            ));
        }
        if self.alpha == 0 {
            return Err(ConfigError::new(
                "alpha",
                "must be at least 1 (with α = 0 an idle system can never admit a request)",
            ));
        }
        Ok(())
    }

    /// The maximum number `N` of concurrent streams (Eq. 1).
    #[must_use]
    pub fn max_requests(&self) -> usize {
        self.disk.max_concurrent_requests(self.consumption_rate)
    }

    /// Worst-case per-buffer disk latency `DL` of the configured method at
    /// load `n` (§2.2).
    #[must_use]
    pub fn disk_latency(&self, n: usize) -> Seconds {
        self.method.worst_disk_latency(&self.disk, n)
    }

    /// Shorthand for the disk transfer rate `TR`.
    #[must_use]
    pub fn tr(&self) -> BitRate {
        self.disk.transfer_rate
    }

    /// Shorthand for the consumption rate `CR`.
    #[must_use]
    pub fn cr(&self) -> BitRate {
        self.consumption_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid_for_all_methods() {
        for m in SchedulingMethod::paper_methods() {
            let p = SystemParams::paper_defaults(m);
            p.validate().expect("paper environment is feasible");
            assert_eq!(p.max_requests(), 79);
        }
    }

    #[test]
    fn rejects_alpha_zero() {
        let mut p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        p.alpha = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_unsustainable_consumption_rate() {
        let mut p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        p.consumption_rate = BitRate::from_mbps(120.0);
        assert!(p.validate().is_err());
        p.consumption_rate = BitRate::ZERO;
        assert!(p.validate().is_err());
    }

    #[test]
    fn disk_latency_delegates_to_method() {
        let p = SystemParams::paper_defaults(SchedulingMethod::Sweep);
        assert_eq!(
            p.disk_latency(10),
            SchedulingMethod::Sweep.worst_disk_latency(&p.disk, 10)
        );
    }
}
