//! The buffer-size recurrence (Eqs. 8–10) — the reference implementation.
//!
//! The dynamic scheme sizes the buffer allocated at load `(n, k)` so that
//! it outlives the servicing of the `n + k` buffers of the *next*
//! generation, whose sizes are in turn `BS_{k+α}(n+k)`:
//!
//! ```text
//! BS_k(n) = (n + k) · CR · ( BS_{k+α}(n + k) / TR + DL )
//! ```
//!
//! with two boundary rules derived from the paper's proof of Theorem 1:
//!
//! * the number of buffers serviced within a usage period never exceeds
//!   `N`, so the argument `n + k` is capped at `N` (the step from Eq. 12
//!   to Eq. 13), and
//! * at `n = N` the system is fully loaded and no new requests can be
//!   admitted, so the size is the static full-load size (Eq. 11):
//!   `BS(N) = DL·N·CR·TR / (TR − N·CR)`.
//!
//! This direct recursion is kept as an *executable specification*: the
//! closed form of Theorem 1 ([`crate::closed_form`]) is property-tested
//! against it over the whole `(n, k, α)` range, which validates our
//! transcription of the paper's most intricate equation.

use vod_types::{Bits, Seconds};

use crate::params::SystemParams;

/// Evaluates `BS_k(n)` by unrolling the recurrence.
///
/// `DL` is held constant across the recursion at the *current* load's
/// value, exactly as Theorem 1's derivation treats it (the paper then
/// substitutes each scheduling method's `DL` into the solved form,
/// Table 2).
///
/// Termination: each step increases the argument sequence
/// `n_{j+1} = n_j + k_j`, `k_{j+1} = k_j + α`, and `α ≥ 1` forces
/// `n_j ≥ j(j−1)/2`, so the cap `N` is reached after at most
/// `O(√N)` steps — the same `e` that Theorem 1 computes.
#[must_use]
pub fn buffer_size_recursive(params: &SystemParams, n: usize, k: usize) -> Bits {
    let dl = params.disk_latency(n);
    buffer_size_recursive_with_dl(params, n, k, dl)
}

/// As [`buffer_size_recursive`] but with an explicit `DL`, so callers
/// (and the closed form's property tests) can pin the latency constant.
#[must_use]
pub fn buffer_size_recursive_with_dl(
    params: &SystemParams,
    n: usize,
    k: usize,
    dl: Seconds,
) -> Bits {
    let big_n = params.max_requests();
    let tr = params.tr().as_f64();
    let cr = params.cr().as_f64();
    let dl = dl.as_secs_f64();
    let alpha = params.alpha as usize;

    // Full-load boundary (Eq. 11).
    let nf = big_n as f64;
    let bs_full = dl * nf * cr * tr / (tr - nf * cr);

    #[allow(clippy::too_many_arguments)] // explicit recursion state
    fn go(
        n: usize,
        k: usize,
        big_n: usize,
        alpha: usize,
        tr: f64,
        cr: f64,
        dl: f64,
        bs_full: f64,
    ) -> f64 {
        if n >= big_n {
            return bs_full;
        }
        let m = (n + k).min(big_n);
        if m == 0 {
            // No streams in service and none predicted: nothing to buffer.
            return 0.0;
        }
        let next = go(m, k + alpha, big_n, alpha, tr, cr, dl, bs_full);
        (m as f64) * cr * (next / tr + dl)
    }

    Bits::new(go(n, k, big_n, alpha, tr, cr, dl, bs_full))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_scheme::static_buffer_size;
    use vod_sched::SchedulingMethod;

    fn params() -> SystemParams {
        SystemParams::paper_defaults(SchedulingMethod::RoundRobin)
    }

    #[test]
    fn full_load_equals_static_size() {
        let p = params();
        let dynamic = buffer_size_recursive(&p, 79, 0);
        let static_ = static_buffer_size(&p, 79);
        assert!((dynamic.as_f64() - static_.as_f64()).abs() / static_.as_f64() < 1e-12);
    }

    #[test]
    fn n_plus_k_at_capacity_equals_static_size() {
        // If n + k already reaches N, the very first step hits the
        // boundary: the allocated size is the full-load size.
        let p = params();
        let bs = buffer_size_recursive(&p, 40, 39);
        let static_ = static_buffer_size(&p, 79);
        assert!((bs.as_f64() - static_.as_f64()).abs() / static_.as_f64() < 1e-12);
    }

    #[test]
    fn empty_idle_system_needs_no_buffer() {
        let p = params();
        assert_eq!(buffer_size_recursive(&p, 0, 0), Bits::ZERO);
    }

    #[test]
    fn partially_loaded_buffers_are_much_smaller() {
        let p = params();
        let light = buffer_size_recursive(&p, 5, 1);
        let full = buffer_size_recursive(&p, 79, 0);
        assert!(light.as_f64() > 0.0);
        assert!(
            light.as_f64() < 0.05 * full.as_f64(),
            "light {light}, full {full}"
        );
    }

    #[test]
    fn monotone_in_n_and_k() {
        let p = params();
        for k in [0usize, 1, 3, 7] {
            let mut prev = Bits::ZERO;
            for n in 0..=79 {
                let bs = buffer_size_recursive(&p, n, k);
                assert!(bs >= prev, "not monotone in n at (n={n}, k={k})");
                prev = bs;
            }
        }
        for n in [1usize, 10, 40, 78] {
            let mut prev = Bits::ZERO;
            for k in 0..=20 {
                let bs = buffer_size_recursive(&p, n, k);
                assert!(bs >= prev, "not monotone in k at (n={n}, k={k})");
                prev = bs;
            }
        }
    }

    #[test]
    fn never_exceeds_full_load_size() {
        let p = params();
        let full = buffer_size_recursive(&p, 79, 0);
        for n in 0..=79 {
            for k in 0..=79 {
                let bs = buffer_size_recursive(&p, n, k);
                assert!(
                    bs.as_f64() <= full.as_f64() * (1.0 + 1e-12),
                    "BS_{k}({n}) = {bs} exceeds BS(N) = {full}"
                );
            }
        }
    }

    #[test]
    fn larger_alpha_gives_larger_buffers() {
        // §3.1: larger α adapts faster but allocates more memory.
        let mut p1 = params();
        p1.alpha = 1;
        let mut p3 = params();
        p3.alpha = 3;
        let b1 = buffer_size_recursive(&p1, 20, 2);
        let b3 = buffer_size_recursive(&p3, 20, 2);
        assert!(b3 > b1, "alpha=1: {b1}, alpha=3: {b3}");
    }

    #[test]
    fn one_step_expansion_matches_by_hand() {
        // BS_k(n) = (n+k)·CR·(BS_{k+1}(n+k)/TR + DL), checked manually for
        // one interior point.
        let p = params();
        let n = 30;
        let k = 4;
        let dl = p.disk_latency(n).as_secs_f64();
        let inner = buffer_size_recursive_with_dl(&p, 34, 5, p.disk_latency(n)).as_f64();
        let expected = 34.0 * 1.5e6 * (inner / 120.0e6 + dl);
        let got = buffer_size_recursive(&p, n, k).as_f64();
        assert!((got - expected).abs() / expected < 1e-12);
    }
}
