//! Buffer allocation schemes: the paper's dynamic scheme and its
//! baselines, behind one sizing interface.

use core::fmt;
use std::sync::Arc;

use vod_types::{Bits, ConfigError};

use crate::params::SystemParams;
use crate::static_scheme::{static_allocated_size, static_buffer_size};
use crate::table::SizeTable;

/// Which buffer allocation scheme a server runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The static scheme (§2.3): every buffer is `BS(N)`.
    Static,
    /// A To & Hamidzadeh-style variant of the static scheme: buffers
    /// start at `BS(N)` and the server *additionally* hands unused pool
    /// memory to in-service streams, extending their refill deadlines.
    /// Sizing is identical to [`SchemeKind::Static`]; the top-up happens
    /// in the server/simulator, which knows the pool. Kept as the
    /// related-work baseline the paper discusses in §1.
    StaticMaxUse,
    /// The *naive* dynamic scheme of Fig. 3: apply the current estimate to
    /// the static formula, `BS(n + k)` by Eq. 5. Demonstrably unsafe —
    /// buffers underflow when future buffers grow — and kept precisely to
    /// demonstrate that (see the simulator's ablation).
    NaiveDynamic,
    /// The paper's dynamic scheme: `BS_k(n)` by Theorem 1, enforced by
    /// predict-and-enforce admission control.
    Dynamic,
}

impl SchemeKind {
    /// All schemes, baselines first.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Static,
        SchemeKind::StaticMaxUse,
        SchemeKind::NaiveDynamic,
        SchemeKind::Dynamic,
    ];

    /// Short label for tables and CSV headers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Static => "static",
            SchemeKind::StaticMaxUse => "static-maxuse",
            SchemeKind::NaiveDynamic => "naive-dynamic",
            SchemeKind::Dynamic => "dynamic",
        }
    }

    /// True for the schemes that size buffers from the current load.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        matches!(self, SchemeKind::NaiveDynamic | SchemeKind::Dynamic)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A scheme bound to concrete parameters: answers "what size buffer do I
/// allocate at load `(n, k)`?" in O(1).
#[derive(Clone, Debug)]
pub struct Sizer {
    kind: SchemeKind,
    static_size: Bits,
    /// Eq. 5 evaluated at every `n` (for the naive scheme).
    naive_sizes: Vec<Bits>,
    /// Theorem 1's table (for the dynamic scheme), shared process-wide
    /// via the [`SizeTable::shared_instrumented`] memo.
    table: Option<Arc<SizeTable>>,
    big_n: usize,
}

impl Sizer {
    /// Builds the sizer, precomputing whatever the scheme needs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn new(kind: SchemeKind, params: &SystemParams) -> Result<Self, ConfigError> {
        Self::new_instrumented(kind, params, &vod_obs::Metrics::null())
    }

    /// Like [`Sizer::new`], but any `BS_k(n)` table precompute is
    /// timed into the metrics phase histogram
    /// ([`vod_obs::metrics::PHASE_TABLE_BUILD`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn new_instrumented(
        kind: SchemeKind,
        params: &SystemParams,
        metrics: &vod_obs::Metrics,
    ) -> Result<Self, ConfigError> {
        params.validate()?;
        let big_n = params.max_requests();
        let table = match kind {
            SchemeKind::Dynamic => Some(SizeTable::shared_instrumented(params, metrics)),
            _ => None,
        };
        let naive_sizes = match kind {
            SchemeKind::NaiveDynamic => {
                (0..=big_n).map(|n| static_buffer_size(params, n)).collect()
            }
            _ => Vec::new(),
        };
        Ok(Sizer {
            kind,
            static_size: static_allocated_size(params),
            naive_sizes,
            table,
            big_n,
        })
    }

    /// The scheme this sizer implements.
    #[must_use]
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Buffer size at load `(n, k)`.
    #[must_use]
    pub fn size(&self, n: usize, k: usize) -> Bits {
        match self.kind {
            SchemeKind::Static | SchemeKind::StaticMaxUse => self.static_size,
            SchemeKind::NaiveDynamic => {
                let idx = (n + k).min(self.big_n);
                self.naive_sizes[idx]
            }
            SchemeKind::Dynamic => self
                .table
                .as_ref()
                .expect("dynamic sizer always builds a table")
                .size(n, k),
        }
    }

    /// The largest size this sizer can return (`BS(N)` for every scheme).
    #[must_use]
    pub fn max_size(&self) -> Bits {
        self.static_size
    }

    /// The precomputed Theorem-1 table, when the scheme has one.
    #[must_use]
    pub fn table(&self) -> Option<&SizeTable> {
        self.table.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sched::SchedulingMethod;

    fn params() -> SystemParams {
        SystemParams::paper_defaults(SchedulingMethod::RoundRobin)
    }

    #[test]
    fn static_sizer_ignores_load() {
        let s = Sizer::new(SchemeKind::Static, &params()).expect("valid");
        assert_eq!(s.size(1, 0), s.size(79, 10));
        assert_eq!(s.size(1, 0), s.max_size());
    }

    #[test]
    fn maxuse_sizes_like_static() {
        let s = Sizer::new(SchemeKind::StaticMaxUse, &params()).expect("valid");
        let st = Sizer::new(SchemeKind::Static, &params()).expect("valid");
        assert_eq!(s.size(7, 2), st.size(7, 2));
    }

    #[test]
    fn naive_sizer_applies_estimate_to_eq5() {
        let p = params();
        let s = Sizer::new(SchemeKind::NaiveDynamic, &p).expect("valid");
        assert_eq!(
            s.size(10, 4),
            crate::static_scheme::static_buffer_size(&p, 14)
        );
        // Saturates at N.
        assert_eq!(s.size(70, 30), s.size(79, 0));
    }

    #[test]
    fn dynamic_sizer_uses_theorem1_table() {
        let p = params();
        let s = Sizer::new(SchemeKind::Dynamic, &p).expect("valid");
        let t = SizeTable::build(&p);
        assert_eq!(s.size(10, 4), t.size(10, 4));
        assert!(s.table().is_some());
    }

    #[test]
    fn dynamic_allocates_more_than_naive_below_capacity() {
        // The naive scheme under-sizes: BS(n+k) by Eq. 5 ignores that
        // future buffers are bigger. Theorem 1's size is strictly larger
        // at partial load (that gap is exactly what underflows).
        let p = params();
        let naive = Sizer::new(SchemeKind::NaiveDynamic, &p).expect("valid");
        let dynamic = Sizer::new(SchemeKind::Dynamic, &p).expect("valid");
        for n in [5usize, 20, 40, 60] {
            let k = 2;
            assert!(
                dynamic.size(n, k) > naive.size(n, k),
                "n={n}: dynamic {} <= naive {}",
                dynamic.size(n, k),
                naive.size(n, k)
            );
        }
    }

    #[test]
    fn every_scheme_tops_out_at_static_size() {
        for kind in SchemeKind::ALL {
            let s = Sizer::new(kind, &params()).expect("valid");
            assert_eq!(s.size(79, 0), s.max_size(), "{kind}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SchemeKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), SchemeKind::ALL.len());
        assert!(SchemeKind::Dynamic.is_dynamic());
        assert!(SchemeKind::NaiveDynamic.is_dynamic());
        assert!(!SchemeKind::Static.is_dynamic());
    }
}
