//! The static buffer allocation scheme (§2.3, Eq. 5) — the baseline.

use vod_types::Bits;

use crate::params::SystemParams;

/// Minimum buffer size to support `n` concurrent streams under the two
/// feasibility conditions of §2.3 (Eq. 5, proven in Chang &
/// Garcia-Molina):
///
/// ```text
/// BS(n) = n·CR·DL·TR / (TR − n·CR)
/// ```
///
/// The *static scheme* evaluates this once at `n = N` and allocates
/// `BS(N)` to every stream forever. Note how the denominator collapses as
/// `n → TR/CR`: near full load the buffer size blows up, which is why
/// allocating the full-load size to a lightly loaded server is so costly.
///
/// `DL` is the configured method's worst-case per-buffer latency **at load
/// `n`** (it depends on `n` for Sweep\*).
///
/// Returns [`Bits::ZERO`] for `n = 0` and saturates at `BS(N)` for
/// `n > N` (a load the disk cannot carry; callers validate earlier).
#[must_use]
pub fn static_buffer_size(params: &SystemParams, n: usize) -> Bits {
    let big_n = params.max_requests();
    let n = n.min(big_n);
    if n == 0 {
        return Bits::ZERO;
    }
    let tr = params.tr().as_f64();
    let cr = params.cr().as_f64();
    let dl = params.disk_latency(n).as_secs_f64();
    let nf = n as f64;
    Bits::new(nf * cr * dl * tr / (tr - nf * cr))
}

/// The size the static scheme actually allocates: `BS(N)`, independent of
/// the current load.
#[must_use]
pub fn static_allocated_size(params: &SystemParams) -> Bits {
    static_buffer_size(params, params.max_requests())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sched::SchedulingMethod;

    fn params() -> SystemParams {
        SystemParams::paper_defaults(SchedulingMethod::RoundRobin)
    }

    #[test]
    fn matches_hand_computed_full_load_value() {
        // BS(79) = 79 · 1.5e6 · DL · 120e6 / (120e6 − 79·1.5e6)
        // DL^RR = γ(7501) + θ = (5 + 0.0014·7501 + 8.33) ms = 23.8314 ms.
        let p = params();
        let dl = 0.023_831_4;
        let expected = 79.0 * 1.5e6 * dl * 120.0e6 / (120.0e6 - 79.0 * 1.5e6);
        let got = static_buffer_size(&p, 79).as_f64();
        assert!(
            (got - expected).abs() / expected < 1e-6,
            "got {got}, expected {expected}"
        );
        // ≈ 28 MB: the number the paper's Fig. 9a plateau shows.
        assert!((Bits::new(got).as_mebibytes() - 26.9).abs() < 1.0);
    }

    #[test]
    fn grows_rapidly_near_full_load() {
        let p = params();
        let bs70 = static_buffer_size(&p, 70).as_f64();
        let bs79 = static_buffer_size(&p, 79).as_f64();
        // §2.3: BS(n) increases very rapidly as n approaches TR/CR.
        assert!(bs79 > 5.0 * bs70, "bs70={bs70}, bs79={bs79}");
    }

    #[test]
    fn is_monotone_in_n() {
        let p = params();
        let mut prev = Bits::ZERO;
        for n in 0..=79 {
            let bs = static_buffer_size(&p, n);
            assert!(bs >= prev, "BS not monotone at n={n}");
            prev = bs;
        }
    }

    #[test]
    fn zero_and_overflow_loads() {
        let p = params();
        assert_eq!(static_buffer_size(&p, 0), Bits::ZERO);
        assert_eq!(static_buffer_size(&p, 200), static_buffer_size(&p, 79));
    }

    #[test]
    fn allocated_size_is_full_load_size() {
        let p = params();
        assert_eq!(static_allocated_size(&p), static_buffer_size(&p, 79));
    }

    #[test]
    fn sweep_buffers_are_smaller_than_round_robin() {
        // Sweep's DL per buffer is smaller, so its buffers are smaller.
        let rr = static_allocated_size(&params());
        let sw = static_allocated_size(&SystemParams::paper_defaults(SchedulingMethod::Sweep));
        assert!(sw < rr);
    }
}
