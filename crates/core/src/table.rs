//! The `O(N²)` precomputed buffer-size table (§3.3).
//!
//! Evaluating Theorem 1 on every allocation costs CPU on the service hot
//! path, so the paper prescribes precomputing `BS_k(n)` for all feasible
//! `(n, k)` at system-initialization time. Both `n` and `k` are bounded by
//! `N` (at most `N` streams are ever in service, and at most `N` more
//! could be admitted), so the table is `(N+1) × (N+1)` — 6 400 entries for
//! the Barracuda 9LP, negligible memory.

use vod_obs::metrics::{Metrics, GAUGE_TABLE_ENTRIES, PHASE_TABLE_BUILD};
use vod_types::{Bits, ConfigError};

use crate::closed_form::buffer_size_closed_form;
use crate::params::SystemParams;

/// Precomputed `BS_k(n)` for `0 ≤ n, k ≤ N`.
#[derive(Clone, Debug)]
pub struct SizeTable {
    big_n: usize,
    /// Row-major: `sizes[n * (N+1) + k]`.
    sizes: Vec<Bits>,
}

impl SizeTable {
    /// Builds the table by evaluating Theorem 1's closed form at every
    /// cell. Panics never; infeasible parameter sets must be caught by
    /// [`SystemParams::validate`] first (see [`SizeTable::try_build`]).
    #[must_use]
    pub fn build(params: &SystemParams) -> Self {
        let big_n = params.max_requests();
        let width = big_n + 1;
        let mut sizes = Vec::with_capacity(width * width);
        for n in 0..=big_n {
            for k in 0..=big_n {
                sizes.push(buffer_size_closed_form(params, n, k));
            }
        }
        SizeTable { big_n, sizes }
    }

    /// Builds like [`SizeTable::build`], timing the precompute into
    /// the [`PHASE_TABLE_BUILD`] histogram and publishing the entry
    /// count on the [`GAUGE_TABLE_ENTRIES`] gauge. With a detached
    /// [`Metrics`] this is exactly `build` (no clock read).
    #[must_use]
    pub fn build_instrumented(params: &SystemParams, metrics: &Metrics) -> Self {
        let timer = metrics.histogram(PHASE_TABLE_BUILD).start_timer();
        let table = Self::build(params);
        timer.stop();
        metrics
            .gauge(GAUGE_TABLE_ENTRIES)
            .set(table.sizes.len() as f64);
        table
    }

    /// Validates the parameters, then builds.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `params` is infeasible.
    pub fn try_build(params: &SystemParams) -> Result<Self, ConfigError> {
        params.validate()?;
        Ok(Self::build(params))
    }

    /// `BS_k(n)`, clamping `n` and `k` to `N` (the paper caps both: more
    /// than `N` streams can never be serviced, so larger arguments are
    /// equivalent to `N`).
    #[must_use]
    pub fn size(&self, n: usize, k: usize) -> Bits {
        let n = n.min(self.big_n);
        let k = k.min(self.big_n);
        self.sizes[n * (self.big_n + 1) + k]
    }

    /// The maximum supported stream count `N`.
    #[must_use]
    pub fn max_requests(&self) -> usize {
        self.big_n
    }

    /// The largest entry — the full-load static size `BS(N)`, useful for
    /// chunk-size validation ([`vod_disk::layout::validate_chunk_size`]).
    #[must_use]
    pub fn max_size(&self) -> Bits {
        self.size(self.big_n, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::buffer_size_closed_form;
    use crate::static_scheme::static_buffer_size;
    use vod_sched::SchedulingMethod;

    fn table() -> (SystemParams, SizeTable) {
        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let t = SizeTable::build(&p);
        (p, t)
    }

    #[test]
    fn lookup_agrees_with_direct_evaluation() {
        let (p, t) = table();
        for n in (0..=79).step_by(7) {
            for k in (0..=79).step_by(11) {
                assert_eq!(t.size(n, k), buffer_size_closed_form(&p, n, k));
            }
        }
    }

    #[test]
    fn out_of_range_arguments_clamp_to_n() {
        let (_, t) = table();
        assert_eq!(t.size(500, 0), t.size(79, 0));
        assert_eq!(t.size(10, 500), t.size(10, 79));
    }

    #[test]
    fn max_size_is_full_load_static_size() {
        let (p, t) = table();
        assert_eq!(t.max_size(), t.size(79, 0));
        let st = static_buffer_size(&p, 79);
        assert!((t.max_size().as_f64() - st.as_f64()).abs() / st.as_f64() < 1e-12);
    }

    #[test]
    fn try_build_rejects_invalid_params() {
        let mut p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        p.alpha = 0;
        assert!(SizeTable::try_build(&p).is_err());
    }

    #[test]
    fn table_is_monotone_in_both_arguments() {
        let (_, t) = table();
        for n in 0..=79usize {
            for k in 1..=79usize {
                assert!(t.size(n, k) >= t.size(n, k - 1), "k-monotone at ({n},{k})");
            }
        }
        for k in 0..=79usize {
            for n in 1..=79usize {
                assert!(t.size(n, k) >= t.size(n - 1, k), "n-monotone at ({n},{k})");
            }
        }
    }

    #[test]
    fn reports_big_n() {
        let (_, t) = table();
        assert_eq!(t.max_requests(), 79);
    }

    #[test]
    fn instrumented_build_matches_and_records_a_phase_sample() {
        use std::sync::Arc;
        use vod_obs::metrics::MetricsRegistry;

        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let plain = SizeTable::build(&p);

        // Detached metrics: plain build, no panic.
        let t = SizeTable::build_instrumented(&p, &Metrics::null());
        assert_eq!(t.size(40, 7), plain.size(40, 7));

        let reg = Arc::new(MetricsRegistry::new());
        let t = SizeTable::build_instrumented(&p, &Metrics::new(Arc::clone(&reg)));
        assert_eq!(t.size(79, 0), plain.size(79, 0));
        let snap = reg.snapshot();
        let hist = snap.histogram(PHASE_TABLE_BUILD).unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(snap.gauge(GAUGE_TABLE_ENTRIES), Some(6400.0));
    }
}
