//! The `O(N²)` precomputed buffer-size table (§3.3).
//!
//! Evaluating Theorem 1 on every allocation costs CPU on the service hot
//! path, so the paper prescribes precomputing `BS_k(n)` for all feasible
//! `(n, k)` at system-initialization time. Both `n` and `k` are bounded by
//! `N` (at most `N` streams are ever in service, and at most `N` more
//! could be admitted), so the table is `(N+1) × (N+1)` — 6 400 entries for
//! the Barracuda 9LP, negligible memory.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use vod_obs::metrics::{Metrics, GAUGE_TABLE_ENTRIES, PHASE_TABLE_BUILD};
use vod_types::{Bits, ConfigError};

use crate::closed_form::buffer_size_closed_form;
use crate::params::SystemParams;

/// Process-wide memo of built tables, keyed by an FNV-1a fingerprint of
/// the full parameter set. A bench matrix builds the same `(N+1)²` table
/// once per cell × per seed × per cluster node without this; every input
/// that reaches Theorem 1 is covered by the fingerprint, so a hit is
/// exactly the table a fresh build would produce.
static TABLE_CACHE: OnceLock<Mutex<HashMap<u64, Arc<SizeTable>>>> = OnceLock::new();

/// Safety valve: a proptest sweeping random parameter sets must not grow
/// the process-wide cache without bound. Past this many distinct
/// parameter sets the cache is cleared and rebuilt from scratch.
const TABLE_CACHE_CAP: usize = 128;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// FNV-1a fingerprint of every [`SystemParams`] field that the table
/// build reads (disk geometry and seek model, `CR`, method, `α`). Bit
/// patterns of the floats are hashed, so two parameter sets collide only
/// if Theorem 1 sees identical inputs.
#[must_use]
pub fn params_fingerprint(params: &SystemParams) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(params.disk.name.as_bytes());
    h.f64(params.disk.capacity.as_f64());
    h.f64(params.disk.transfer_rate.as_f64());
    h.u64(u64::from(params.disk.rpm));
    h.u64(u64::from(params.disk.cylinders));
    h.f64(params.disk.seek.mu1.as_secs_f64());
    h.f64(params.disk.seek.nu1.as_secs_f64());
    h.f64(params.disk.seek.mu2.as_secs_f64());
    h.f64(params.disk.seek.nu2.as_secs_f64());
    h.u64(u64::from(params.disk.seek.breakpoint));
    h.f64(params.disk.seek.max_rotational_delay.as_secs_f64());
    h.f64(params.consumption_rate.as_f64());
    match params.method {
        vod_sched::SchedulingMethod::RoundRobin => h.u64(1),
        vod_sched::SchedulingMethod::Sweep => h.u64(2),
        vod_sched::SchedulingMethod::Gss { group_size } => {
            h.u64(3);
            h.u64(group_size as u64);
        }
    }
    h.u64(u64::from(params.alpha));
    h.0
}

/// Precomputed `BS_k(n)` for `0 ≤ n, k ≤ N`.
#[derive(Clone, Debug)]
pub struct SizeTable {
    big_n: usize,
    /// Row-major: `sizes[n * (N+1) + k]`.
    sizes: Vec<Bits>,
}

impl SizeTable {
    /// Builds the table by evaluating Theorem 1's closed form at every
    /// cell. Panics never; infeasible parameter sets must be caught by
    /// [`SystemParams::validate`] first (see [`SizeTable::try_build`]).
    #[must_use]
    pub fn build(params: &SystemParams) -> Self {
        let big_n = params.max_requests();
        let width = big_n + 1;
        let mut sizes = Vec::with_capacity(width * width);
        for n in 0..=big_n {
            for k in 0..=big_n {
                sizes.push(buffer_size_closed_form(params, n, k));
            }
        }
        SizeTable { big_n, sizes }
    }

    /// Builds like [`SizeTable::build`], timing the precompute into
    /// the [`PHASE_TABLE_BUILD`] histogram and publishing the entry
    /// count on the [`GAUGE_TABLE_ENTRIES`] gauge. With a detached
    /// [`Metrics`] this is exactly `build` (no clock read).
    #[must_use]
    pub fn build_instrumented(params: &SystemParams, metrics: &Metrics) -> Self {
        let timer = metrics.histogram(PHASE_TABLE_BUILD).start_timer();
        let table = Self::build(params);
        timer.stop();
        metrics
            .gauge(GAUGE_TABLE_ENTRIES)
            .set(table.sizes.len() as f64);
        table
    }

    /// Validates the parameters, then builds.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `params` is infeasible.
    pub fn try_build(params: &SystemParams) -> Result<Self, ConfigError> {
        params.validate()?;
        Ok(Self::build(params))
    }

    /// The memoized constructor: returns the process-wide shared table
    /// for `params`, building it on first use. Subsequent callers with
    /// bit-identical parameters (same FNV-1a fingerprint — see
    /// [`params_fingerprint`]) get a clone of the same `Arc`, so a
    /// 45-cell cluster bench with 16 nodes per cell builds the O(N²)
    /// table once, not 16 × 45 times.
    #[must_use]
    pub fn shared(params: &SystemParams) -> Arc<Self> {
        let key = params_fingerprint(params);
        let cache = TABLE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = map.get(&key) {
            return Arc::clone(hit);
        }
        if map.len() >= TABLE_CACHE_CAP {
            map.clear();
        }
        let built = Arc::new(Self::build(params));
        map.insert(key, Arc::clone(&built));
        built
    }

    /// Like [`SizeTable::shared`], but times the call into the
    /// [`PHASE_TABLE_BUILD`] histogram and publishes the entry count on
    /// [`GAUGE_TABLE_ENTRIES`] — exactly one histogram sample per call,
    /// hit or miss, preserving the phase-count contract of
    /// [`SizeTable::build_instrumented`] (a hit simply records the
    /// cache-lookup latency instead of a rebuild).
    #[must_use]
    pub fn shared_instrumented(params: &SystemParams, metrics: &Metrics) -> Arc<Self> {
        let timer = metrics.histogram(PHASE_TABLE_BUILD).start_timer();
        let table = Self::shared(params);
        timer.stop();
        metrics
            .gauge(GAUGE_TABLE_ENTRIES)
            .set(table.sizes.len() as f64);
        table
    }

    /// `BS_k(n)`, clamping `n` and `k` to `N` (the paper caps both: more
    /// than `N` streams can never be serviced, so larger arguments are
    /// equivalent to `N`).
    #[must_use]
    pub fn size(&self, n: usize, k: usize) -> Bits {
        let n = n.min(self.big_n);
        let k = k.min(self.big_n);
        self.sizes[n * (self.big_n + 1) + k]
    }

    /// The maximum supported stream count `N`.
    #[must_use]
    pub fn max_requests(&self) -> usize {
        self.big_n
    }

    /// The largest entry — the full-load static size `BS(N)`, useful for
    /// chunk-size validation ([`vod_disk::layout::validate_chunk_size`]).
    #[must_use]
    pub fn max_size(&self) -> Bits {
        self.size(self.big_n, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::buffer_size_closed_form;
    use crate::static_scheme::static_buffer_size;
    use vod_sched::SchedulingMethod;

    fn table() -> (SystemParams, SizeTable) {
        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let t = SizeTable::build(&p);
        (p, t)
    }

    #[test]
    fn lookup_agrees_with_direct_evaluation() {
        let (p, t) = table();
        for n in (0..=79).step_by(7) {
            for k in (0..=79).step_by(11) {
                assert_eq!(t.size(n, k), buffer_size_closed_form(&p, n, k));
            }
        }
    }

    #[test]
    fn out_of_range_arguments_clamp_to_n() {
        let (_, t) = table();
        assert_eq!(t.size(500, 0), t.size(79, 0));
        assert_eq!(t.size(10, 500), t.size(10, 79));
    }

    #[test]
    fn max_size_is_full_load_static_size() {
        let (p, t) = table();
        assert_eq!(t.max_size(), t.size(79, 0));
        let st = static_buffer_size(&p, 79);
        assert!((t.max_size().as_f64() - st.as_f64()).abs() / st.as_f64() < 1e-12);
    }

    #[test]
    fn try_build_rejects_invalid_params() {
        let mut p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        p.alpha = 0;
        assert!(SizeTable::try_build(&p).is_err());
    }

    #[test]
    fn table_is_monotone_in_both_arguments() {
        let (_, t) = table();
        for n in 0..=79usize {
            for k in 1..=79usize {
                assert!(t.size(n, k) >= t.size(n, k - 1), "k-monotone at ({n},{k})");
            }
        }
        for k in 0..=79usize {
            for n in 1..=79usize {
                assert!(t.size(n, k) >= t.size(n - 1, k), "n-monotone at ({n},{k})");
            }
        }
    }

    #[test]
    fn reports_big_n() {
        let (_, t) = table();
        assert_eq!(t.max_requests(), 79);
    }

    #[test]
    fn shared_tables_are_memoized_per_fingerprint() {
        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let a = SizeTable::shared(&p);
        let b = SizeTable::shared(&p);
        // Same fingerprint → literally the same allocation.
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.size(40, 7), SizeTable::build(&p).size(40, 7));

        // Any fingerprinted field change misses the cache.
        let mut q = p.clone();
        q.alpha = 2;
        let c = SizeTable::shared(&q);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));

        let r = SystemParams::paper_defaults(SchedulingMethod::Sweep);
        let d = SizeTable::shared(&r);
        assert!(!std::sync::Arc::ptr_eq(&a, &d));
        assert_eq!(d.size(40, 7), SizeTable::build(&r).size(40, 7));
    }

    #[test]
    fn fingerprint_separates_gss_group_sizes() {
        let g8 = SystemParams::paper_defaults(SchedulingMethod::Gss { group_size: 8 });
        let g4 = SystemParams::paper_defaults(SchedulingMethod::Gss { group_size: 4 });
        assert_ne!(params_fingerprint(&g8), params_fingerprint(&g4));
        assert_eq!(params_fingerprint(&g8), params_fingerprint(&g8.clone()));
    }

    #[test]
    fn shared_instrumented_records_a_phase_sample_on_hits_too() {
        use std::sync::Arc;
        use vod_obs::metrics::MetricsRegistry;

        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let reg = Arc::new(MetricsRegistry::new());
        let m = Metrics::new(Arc::clone(&reg));
        let first = SizeTable::shared_instrumented(&p, &m);
        let second = SizeTable::shared_instrumented(&p, &m);
        assert!(Arc::ptr_eq(&first, &second));
        let snap = reg.snapshot();
        // One sample per call — hit or miss — so harness tests pinning
        // PHASE_TABLE_BUILD counts are unaffected by cache state.
        assert_eq!(snap.histogram(PHASE_TABLE_BUILD).unwrap().count, 2);
        assert_eq!(snap.gauge(GAUGE_TABLE_ENTRIES), Some(6400.0));
    }

    #[test]
    fn instrumented_build_matches_and_records_a_phase_sample() {
        use std::sync::Arc;
        use vod_obs::metrics::MetricsRegistry;

        let p = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let plain = SizeTable::build(&p);

        // Detached metrics: plain build, no panic.
        let t = SizeTable::build_instrumented(&p, &Metrics::null());
        assert_eq!(t.size(40, 7), plain.size(40, 7));

        let reg = Arc::new(MetricsRegistry::new());
        let t = SizeTable::build_instrumented(&p, &Metrics::new(Arc::clone(&reg)));
        assert_eq!(t.size(79, 0), plain.size(79, 0));
        let snap = reg.snapshot();
        let hist = snap.histogram(PHASE_TABLE_BUILD).unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(snap.gauge(GAUGE_TABLE_ENTRIES), Some(6400.0));
    }
}
