//! Property tests on the admission controller: the inertia assumptions
//! hold across arbitrary interleavings of arrivals, admissions,
//! allocations, and departures.

use proptest::prelude::*;
use vod_core::{AdmissionController, SystemParams};
use vod_sched::SchedulingMethod;
use vod_types::{Instant, RequestId, Seconds};

#[derive(Debug, Clone, Copy)]
enum Op {
    Arrive,
    TryAdmit,
    /// Allocate for the i-th (mod len) active stream.
    Allocate(u8),
    /// Depart the i-th (mod len) active stream.
    Depart(u8),
    Tick(u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::Arrive),
            Just(Op::TryAdmit),
            (0u8..255).prop_map(Op::Allocate),
            (0u8..255).prop_map(Op::Depart),
            (1u16..5000).prop_map(Op::Tick),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn assumptions_hold_under_arbitrary_interleavings(ops in ops()) {
        let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let big_n = params.max_requests();
        let alpha = params.alpha as usize;
        let mut ctl = AdmissionController::new(params, Seconds::from_minutes(40.0))
            .expect("valid");
        let mut t = Instant::ZERO;
        let mut next_id = 0u64;
        let mut active: Vec<RequestId> = Vec::new();
        // (n_i, k_i) records we have observed per active stream.
        let mut records: std::collections::HashMap<RequestId, (usize, usize)> =
            std::collections::HashMap::new();
        let period = Seconds::from_secs(2.0);

        for op in ops {
            match op {
                Op::Arrive => {
                    ctl.note_arrival(t);
                }
                Op::TryAdmit => {
                    let id = RequestId::new(next_id);
                    if ctl.can_admit() {
                        ctl.admit(id).expect("can_admit() said yes");
                        next_id += 1;
                        active.push(id);
                        // Assumption 1 as the paper states it: the new
                        // count respects every recorded bound.
                        for (&_, &(n_i, k_i)) in &records {
                            prop_assert!(
                                active.len() <= n_i + k_i,
                                "admission violated a ({n_i},{k_i}) record"
                            );
                        }
                        prop_assert!(active.len() <= big_n);
                    } else {
                        prop_assert!(ctl.admit(id).is_err());
                    }
                }
                Op::Allocate(i) => {
                    if !active.is_empty() {
                        let id = active[usize::from(i) % active.len()];
                        let alloc = ctl.allocate(id, t, period).expect("active");
                        prop_assert_eq!(alloc.n, active.len());
                        // Assumption 2: k_c ≤ every k_i + α.
                        for (&other, &(_, k_i)) in &records {
                            if other != id {
                                prop_assert!(
                                    alloc.k <= k_i + alpha,
                                    "k_c {} > k_i {} + α", alloc.k, k_i
                                );
                            }
                        }
                        prop_assert!(alloc.k <= big_n);
                        records.insert(id, (alloc.n, alloc.k));
                    }
                }
                Op::Depart(i) => {
                    if !active.is_empty() {
                        let idx = usize::from(i) % active.len();
                        let id = active.swap_remove(idx);
                        ctl.depart(id).expect("active");
                        records.remove(&id);
                    }
                }
                Op::Tick(ms) => {
                    t += Seconds::from_millis(f64::from(ms));
                }
            }
            prop_assert_eq!(ctl.active_count(), active.len());
            prop_assert!(ctl.admission_bound() <= big_n);
        }
    }

    #[test]
    fn estimate_is_side_effect_free(arrivals in 1usize..50) {
        let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let mut ctl = AdmissionController::new(params, Seconds::from_minutes(40.0))
            .expect("valid");
        let t = Instant::from_secs(10.0);
        for i in 0..arrivals {
            ctl.note_arrival(Instant::from_secs(i as f64 * 0.1));
        }
        let period = Seconds::from_secs(3.0);
        let first = ctl.estimate_k(t, period);
        let second = ctl.estimate_k(t, period);
        prop_assert_eq!(first, second, "estimate_k must be repeatable");
        prop_assert_eq!(ctl.active_count(), 0, "estimate_k must not admit");
    }
}
