//! Property tests for the incremental admission aggregates: the O(1)
//! counting-multiset minima must agree with a naive full scan over the
//! same history, for arbitrary interleavings of inserts, removes,
//! allocations, and departures.

use proptest::prelude::*;
use vod_core::{AdmissionController, MinMultiset, SystemParams};
use vod_sched::SchedulingMethod;
use vod_types::{Instant, RequestId, Seconds};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `MinMultiset` vs the obvious shadow model (a bag of values whose
    /// minimum is recomputed by scanning): identical `min`/`len` after
    /// every operation, including duplicate values and re-inserts after
    /// removal.
    #[test]
    fn multiset_min_matches_naive_scan(
        ops in prop::collection::vec((0u16..512, 0u8..255, 0u8..255), 1..300)
    ) {
        let mut agg = MinMultiset::new();
        let mut shadow: Vec<usize> = Vec::new();
        for (value, select, pick) in ops {
            if shadow.is_empty() || select < 170 {
                agg.insert(usize::from(value));
                shadow.push(usize::from(value));
            } else {
                let victim = shadow.swap_remove(usize::from(pick) % shadow.len());
                agg.remove(victim);
            }
            prop_assert_eq!(agg.len(), shadow.len());
            prop_assert_eq!(agg.min(), shadow.iter().copied().min());
        }
    }

    /// The controller's Assumption-1 admission bound vs a shadow rebuilt
    /// from the `Allocation`s it handed out: `min_i(n_i + k_i)` capped at
    /// `N`, recomputed by scanning the shadow after every step. (In debug
    /// builds the controller additionally cross-checks its internal
    /// aggregates against its own record table on every read.) The
    /// Assumption-2 clamp is visible through `estimate_k`: the estimate
    /// never exceeds the smallest outstanding `k_i` plus `α`.
    #[test]
    fn admission_bound_matches_shadow_scan(
        ops in prop::collection::vec((0u8..255, 0u8..255), 1..250)
    ) {
        let params = SystemParams::paper_defaults(SchedulingMethod::RoundRobin);
        let big_n = params.max_requests();
        let alpha = params.alpha as usize;
        let mut ctl =
            AdmissionController::new(params, Seconds::from_minutes(40.0)).expect("valid");
        let period = Seconds::from_secs(2.0);
        let mut t = Instant::ZERO;
        let mut next_id = 0u64;
        let mut active: Vec<RequestId> = Vec::new();
        let mut allocs: std::collections::HashMap<RequestId, (usize, usize)> =
            std::collections::HashMap::new();

        for (select, pick) in ops {
            match select % 5 {
                // Arrive + admit when the controller allows it.
                0 | 1 => {
                    ctl.note_arrival(t);
                    if ctl.can_admit() {
                        let id = RequestId::new(next_id);
                        next_id += 1;
                        ctl.admit(id).expect("can_admit() said yes");
                        active.push(id);
                    }
                }
                // Allocate for some active stream; record what it got.
                2 | 3 => {
                    if !active.is_empty() {
                        let id = active[usize::from(pick) % active.len()];
                        let alloc = ctl.allocate(id, t, period).expect("active");
                        allocs.insert(id, (alloc.n, alloc.k));
                    }
                }
                // Depart some active stream.
                _ => {
                    if !active.is_empty() {
                        let id = active.swap_remove(usize::from(pick) % active.len());
                        ctl.depart(id).expect("active");
                        allocs.remove(&id);
                    }
                }
            }
            t += Seconds::from_millis(250.0);

            let naive_a1 = allocs
                .values()
                .map(|&(n_i, k_i)| n_i + k_i)
                .min()
                .unwrap_or(usize::MAX);
            prop_assert_eq!(
                ctl.admission_bound(),
                naive_a1.min(big_n),
                "incremental bound != naive scan over handed-out allocations"
            );
            if let Some(min_k) = allocs.values().map(|&(_, k_i)| k_i).min() {
                let (k_c, _) = ctl.estimate_k(t, period);
                prop_assert!(
                    k_c <= min_k + alpha,
                    "Assumption-2 clamp violated: k_c {} > min k_i {} + α {}",
                    k_c,
                    min_k,
                    alpha
                );
            }
        }
    }
}
