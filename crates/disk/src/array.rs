//! Multi-disk servers.
//!
//! Most VOD servers stripe or replicate a large catalog over many drives;
//! the paper's capacity experiments (Figs. 13–14) use **10 Barracuda 9LP
//! drives** whose per-disk load follows a Zipf distribution of video
//! popularity (Wolf et al.). [`DiskArray`] owns the drives and the
//! video→disk mapping; load *assignment* policy lives in `vod-workload`.

use std::collections::BTreeMap;

use vod_types::{Bits, ConfigError, DiskId, VideoId};

use crate::disk::Disk;
use crate::profile::DiskProfile;

/// A homogeneous group of drives with a catalog spread across them.
#[derive(Clone, Debug)]
pub struct DiskArray {
    disks: Vec<Disk>,
    video_homes: BTreeMap<VideoId, DiskId>,
}

impl DiskArray {
    /// Creates an array of `count` identical drives.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `count` is zero or the profile is
    /// invalid.
    pub fn homogeneous(profile: &DiskProfile, count: usize) -> Result<Self, ConfigError> {
        if count == 0 {
            return Err(ConfigError::new("disk_count", "must be at least 1"));
        }
        let mut disks = Vec::with_capacity(count);
        for _ in 0..count {
            disks.push(Disk::new(profile.clone())?);
        }
        Ok(DiskArray {
            disks,
            video_homes: BTreeMap::new(),
        })
    }

    /// Number of drives.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True when the array has no drives (never true for a constructed array).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Places `video` on `disk`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the disk id is out of range, the video
    /// is already placed somewhere in the array, or it does not fit.
    pub fn place_video(
        &mut self,
        disk: DiskId,
        video: VideoId,
        size: Bits,
    ) -> Result<(), ConfigError> {
        if self.video_homes.contains_key(&video) {
            return Err(ConfigError::new(
                "video",
                format!("{video} already placed in the array"),
            ));
        }
        let d = self
            .disks
            .get_mut(disk.index())
            .ok_or_else(|| ConfigError::new("disk", format!("{disk} out of range")))?;
        d.place_video(video, size)?;
        self.video_homes.insert(video, disk);
        Ok(())
    }

    /// The disk holding `video`.
    #[must_use]
    pub fn home_of(&self, video: VideoId) -> Option<DiskId> {
        self.video_homes.get(&video).copied()
    }

    /// Immutable access to a drive.
    #[must_use]
    pub fn disk(&self, id: DiskId) -> Option<&Disk> {
        self.disks.get(id.index())
    }

    /// Mutable access to a drive.
    pub fn disk_mut(&mut self, id: DiskId) -> Option<&mut Disk> {
        self.disks.get_mut(id.index())
    }

    /// Iterates over `(id, disk)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DiskId, &Disk)> {
        self.disks
            .iter()
            .enumerate()
            .map(|(i, d)| (DiskId::new(i as u64), d))
    }

    /// Total capacity across drives.
    #[must_use]
    pub fn total_capacity(&self) -> Bits {
        self.disks.iter().map(|d| d.profile().capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_size() -> Bits {
        Bits::new(1.5e6 * 7200.0)
    }

    #[test]
    fn builds_ten_disk_array() {
        let arr = DiskArray::homogeneous(&DiskProfile::barracuda_9lp(), 10).expect("valid");
        assert_eq!(arr.len(), 10);
        assert!(!arr.is_empty());
        assert!((arr.total_capacity().as_gigabytes() - 91.9).abs() < 0.01);
        assert_eq!(arr.iter().count(), 10);
    }

    #[test]
    fn rejects_empty_array() {
        assert!(DiskArray::homogeneous(&DiskProfile::barracuda_9lp(), 0).is_err());
    }

    #[test]
    fn places_videos_and_tracks_homes() {
        let mut arr = DiskArray::homogeneous(&DiskProfile::barracuda_9lp(), 2).expect("valid");
        arr.place_video(DiskId::new(0), VideoId::new(0), video_size())
            .expect("fits");
        arr.place_video(DiskId::new(1), VideoId::new(1), video_size())
            .expect("fits");
        assert_eq!(arr.home_of(VideoId::new(0)), Some(DiskId::new(0)));
        assert_eq!(arr.home_of(VideoId::new(1)), Some(DiskId::new(1)));
        assert_eq!(arr.home_of(VideoId::new(2)), None);
        assert_eq!(arr.disk(DiskId::new(0)).expect("exists").layout().len(), 1);
    }

    #[test]
    fn rejects_duplicate_video_across_disks() {
        let mut arr = DiskArray::homogeneous(&DiskProfile::barracuda_9lp(), 2).expect("valid");
        arr.place_video(DiskId::new(0), VideoId::new(0), video_size())
            .expect("fits");
        assert!(arr
            .place_video(DiskId::new(1), VideoId::new(0), video_size())
            .is_err());
    }

    #[test]
    fn rejects_out_of_range_disk() {
        let mut arr = DiskArray::homogeneous(&DiskProfile::barracuda_9lp(), 2).expect("valid");
        assert!(arr
            .place_video(DiskId::new(5), VideoId::new(0), video_size())
            .is_err());
        assert!(arr.disk(DiskId::new(5)).is_none());
    }
}
