//! A simulated disk drive: head position, reads, and service accounting.

use vod_types::{Bits, ConfigError, Seconds, VideoId, VodError};

use crate::layout::{Extent, VideoLayout};
use crate::profile::DiskProfile;

/// Latency breakdown of one buffer service.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadOutcome {
    /// Seek time `γ(distance)`.
    pub seek: Seconds,
    /// Rotational delay (up to one revolution `θ`).
    pub rotation: Seconds,
    /// Transfer time `amount / TR`.
    pub transfer: Seconds,
}

impl ReadOutcome {
    /// Total service time: seek + rotation + transfer.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.seek + self.rotation + self.transfer
    }

    /// Disk latency as the paper defines it: seek + rotational delay
    /// (everything except the transfer).
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.seek + self.rotation
    }
}

/// Aggregate usage statistics of one drive.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Number of buffer services performed.
    pub services: u64,
    /// Total bits transferred.
    pub transferred: Bits,
    /// Total time the drive spent seeking/rotating/transferring.
    pub busy: Seconds,
}

/// A simulated drive.
///
/// The drive owns its [`VideoLayout`] and tracks the head cylinder so that
/// a simulator running in sampled-latency mode can charge the *actual* seek
/// distance between consecutive services. Worst-case mode bypasses the head
/// model via [`Disk::read_worst_case`], matching the paper's analysis.
#[derive(Clone, Debug)]
pub struct Disk {
    profile: DiskProfile,
    layout: VideoLayout,
    head_cylinder: u32,
    stats: DiskStats,
}

impl Disk {
    /// Creates an empty drive from a profile.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid profile.
    pub fn new(profile: DiskProfile) -> Result<Self, ConfigError> {
        profile.validate()?;
        let layout = VideoLayout::new(&profile)?;
        Ok(Disk {
            profile,
            layout,
            head_cylinder: 0,
            stats: DiskStats::default(),
        })
    }

    /// Stores a video on the drive.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the video does not fit (see
    /// [`VideoLayout::place`]).
    pub fn place_video(&mut self, video: VideoId, size: Bits) -> Result<Extent, ConfigError> {
        self.layout.place(video, size)
    }

    /// Services one buffer with sampled latency: seeks from the current
    /// head position to the play point of `video` at `offset`, waits
    /// `rotation_fraction` of a full revolution (the caller samples this in
    /// `[0, 1]` — keeping randomness out of the substrate), and transfers
    /// `amount` bits.
    ///
    /// # Errors
    ///
    /// Returns [`VodError::UnknownRequest`]-free errors only:
    /// [`VodError::Config`] when the video is not on this drive or the
    /// rotation fraction is out of range.
    pub fn read(
        &mut self,
        video: VideoId,
        offset: Bits,
        amount: Bits,
        rotation_fraction: f64,
    ) -> Result<ReadOutcome, VodError> {
        if !(0.0..=1.0).contains(&rotation_fraction) {
            return Err(ConfigError::new(
                "rotation_fraction",
                format!("{rotation_fraction} outside [0, 1]"),
            )
            .into());
        }
        let target = self
            .layout
            .cylinder_at(video, offset)
            .ok_or_else(|| ConfigError::new("video", format!("{video} not on this disk")))?;
        let distance = f64::from(self.head_cylinder.abs_diff(target));
        let seek = self.profile.seek.seek_time(distance);
        let rotation = self.profile.seek.max_rotational_delay * rotation_fraction;
        let transfer = amount / self.profile.transfer_rate;
        self.head_cylinder = target;
        let outcome = ReadOutcome {
            seek,
            rotation,
            transfer,
        };
        self.account(amount, outcome);
        Ok(outcome)
    }

    /// Services one buffer charging a caller-supplied worst-case disk
    /// latency (the per-scheduling-method `DL` of §2.2) plus the transfer
    /// time for `amount` bits. The head position is not consulted: the
    /// worst case is position-independent by construction.
    pub fn read_worst_case(&mut self, amount: Bits, worst_latency: Seconds) -> ReadOutcome {
        let transfer = amount / self.profile.transfer_rate;
        // Attribute the whole worst-case latency to "seek" and none to
        // rotation; the split is not observable downstream.
        let outcome = ReadOutcome {
            seek: worst_latency,
            rotation: Seconds::ZERO,
            transfer,
        };
        self.account(amount, outcome);
        outcome
    }

    fn account(&mut self, amount: Bits, outcome: ReadOutcome) {
        self.stats.services += 1;
        self.stats.transferred += amount;
        self.stats.busy += outcome.total();
    }

    /// The drive's profile.
    #[must_use]
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// The video layout.
    #[must_use]
    pub fn layout(&self) -> &VideoLayout {
        &self.layout
    }

    /// Current head cylinder.
    #[must_use]
    pub fn head_cylinder(&self) -> u32 {
        self.head_cylinder
    }

    /// Usage statistics so far.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets usage statistics (not the head position or layout).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_types::BitRate;

    fn disk_with_video() -> (Disk, VideoId, Bits) {
        let mut d = Disk::new(DiskProfile::barracuda_9lp()).expect("valid profile");
        let v = VideoId::new(0);
        let size = Bits::new(1.5e6 * 7200.0);
        d.place_video(v, size).expect("fits");
        (d, v, size)
    }

    #[test]
    fn sampled_read_moves_head_and_accounts() {
        let (mut d, v, size) = disk_with_video();
        let amount = Bits::from_megabits(8.0);
        let out = d.read(v, size / 2.0, amount, 0.5).expect("video present");
        assert!(out.seek > Seconds::ZERO, "head moved from cylinder 0");
        assert!(out.rotation > Seconds::ZERO);
        assert!((out.transfer.as_secs_f64() - 8.0e6 / 120.0e6).abs() < 1e-12);
        assert!(d.head_cylinder() > 0);
        assert_eq!(d.stats().services, 1);
        assert_eq!(d.stats().transferred, amount);
        assert!((d.stats().busy.as_secs_f64() - out.total().as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn repeated_read_at_same_position_has_no_seek() {
        let (mut d, v, _) = disk_with_video();
        let amount = Bits::from_megabits(1.0);
        d.read(v, Bits::ZERO, amount, 0.0).expect("first read");
        let out = d.read(v, Bits::ZERO, amount, 0.0).expect("second read");
        assert_eq!(out.seek, Seconds::ZERO);
        assert_eq!(out.rotation, Seconds::ZERO);
    }

    #[test]
    fn worst_case_read_charges_supplied_latency() {
        let (mut d, _, _) = disk_with_video();
        let dl = Seconds::from_millis(23.8);
        let amount = Bits::from_megabits(12.0);
        let out = d.read_worst_case(amount, dl);
        assert_eq!(out.latency(), dl);
        assert!((out.transfer.as_secs_f64() - 0.1).abs() < 1e-12);
        assert_eq!(d.stats().services, 1);
    }

    #[test]
    fn read_of_missing_video_fails() {
        let (mut d, _, _) = disk_with_video();
        let err = d.read(VideoId::new(42), Bits::ZERO, Bits::new(1.0), 0.0);
        assert!(err.is_err());
    }

    #[test]
    fn rotation_fraction_is_validated() {
        let (mut d, v, _) = disk_with_video();
        assert!(d.read(v, Bits::ZERO, Bits::new(1.0), 1.5).is_err());
        assert!(d.read(v, Bits::ZERO, Bits::new(1.0), -0.1).is_err());
    }

    #[test]
    fn latency_and_total_are_consistent() {
        let out = ReadOutcome {
            seek: Seconds::from_millis(10.0),
            rotation: Seconds::from_millis(4.0),
            transfer: Seconds::from_millis(100.0),
        };
        assert!((out.latency().as_millis() - 14.0).abs() < 1e-12);
        assert!((out.total().as_millis() - 114.0).abs() < 1e-12);
    }

    #[test]
    fn profile_constants_flow_through() {
        let (d, _, _) = disk_with_video();
        assert_eq!(
            d.profile().max_concurrent_requests(BitRate::from_mbps(1.5)),
            79
        );
        assert_eq!(d.layout().len(), 1);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let (mut d, v, _) = disk_with_video();
        d.read(v, Bits::ZERO, Bits::new(8.0), 0.0).expect("read");
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
    }
}
