//! Contiguous placement of videos on disk cylinders.
//!
//! The paper assumes video data is stored contiguously so that one service
//! incurs exactly one disk latency (§2.1). Chang & Garcia-Molina realize
//! this with *chunks*: physically contiguous regions at least twice the
//! maximum buffer size, with data replicated across chunk boundaries so any
//! one buffer's worth of data is readable from a single chunk. For the
//! model, the observable consequence is simply: **one seek + one rotation
//! per buffer service**, and a head position that advances with the play
//! point of the video.
//!
//! [`VideoLayout`] places each video on a contiguous cylinder extent and
//! maps a play offset to a cylinder, which is what the sampled-latency
//! simulator needs to compute actual seek distances.

use std::collections::BTreeMap;

use vod_types::{Bits, ConfigError, VideoId};

use crate::profile::DiskProfile;

/// A contiguous range of cylinders occupied by one video.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Extent {
    /// First cylinder of the extent.
    pub start_cylinder: u32,
    /// Number of cylinders spanned (at least 1).
    pub cylinders: u32,
    /// Size of the stored video.
    pub size: Bits,
}

impl Extent {
    /// Cylinder holding the data at `offset` bits into the video.
    ///
    /// Offsets at or past the end clamp to the last cylinder.
    #[must_use]
    pub fn cylinder_at(&self, offset: Bits) -> u32 {
        if self.size.is_zero() || self.cylinders == 0 {
            return self.start_cylinder;
        }
        let frac = (offset.as_f64() / self.size.as_f64()).clamp(0.0, 1.0);
        let within = ((frac * f64::from(self.cylinders)) as u32).min(self.cylinders - 1);
        self.start_cylinder + within
    }

    /// One-past-the-last cylinder of the extent.
    #[must_use]
    pub fn end_cylinder(&self) -> u32 {
        self.start_cylinder + self.cylinders
    }
}

/// Placement of a set of videos on one disk's cylinders.
#[derive(Clone, Debug, Default)]
pub struct VideoLayout {
    extents: BTreeMap<VideoId, Extent>,
    bits_per_cylinder: f64,
    total_cylinders: u32,
    next_free_cylinder: u32,
}

impl VideoLayout {
    /// Creates an empty layout for the given disk.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the profile has no cylinders or capacity.
    pub fn new(profile: &DiskProfile) -> Result<Self, ConfigError> {
        if profile.cylinders == 0 {
            return Err(ConfigError::new("cylinders", "must be positive"));
        }
        if profile.capacity.is_zero() || !profile.capacity.is_valid_size() {
            return Err(ConfigError::new("capacity", "must be positive"));
        }
        Ok(VideoLayout {
            extents: BTreeMap::new(),
            bits_per_cylinder: profile.capacity.as_f64() / f64::from(profile.cylinders),
            total_cylinders: profile.cylinders,
            next_free_cylinder: 0,
        })
    }

    /// Places `video` of the given size on the next free contiguous extent.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the video is empty, already placed, or
    /// does not fit in the remaining cylinders.
    pub fn place(&mut self, video: VideoId, size: Bits) -> Result<Extent, ConfigError> {
        if !size.is_valid_size() || size.is_zero() {
            return Err(ConfigError::new("video_size", "must be positive"));
        }
        if self.extents.contains_key(&video) {
            return Err(ConfigError::new(
                "video",
                format!("{video} is already placed on this disk"),
            ));
        }
        let cylinders = (size.as_f64() / self.bits_per_cylinder).ceil().max(1.0) as u32;
        let end = self
            .next_free_cylinder
            .checked_add(cylinders)
            .ok_or_else(|| ConfigError::new("video_size", "cylinder index overflow"))?;
        if end > self.total_cylinders {
            return Err(ConfigError::new(
                "video_size",
                format!(
                    "{video} needs {cylinders} cylinders but only {} remain",
                    self.total_cylinders - self.next_free_cylinder
                ),
            ));
        }
        let extent = Extent {
            start_cylinder: self.next_free_cylinder,
            cylinders,
            size,
        };
        self.next_free_cylinder = end;
        self.extents.insert(video, extent);
        Ok(extent)
    }

    /// The extent of a placed video.
    #[must_use]
    pub fn extent(&self, video: VideoId) -> Option<Extent> {
        self.extents.get(&video).copied()
    }

    /// Cylinder under the play point of `video` at `offset` bits.
    #[must_use]
    pub fn cylinder_at(&self, video: VideoId, offset: Bits) -> Option<u32> {
        self.extents.get(&video).map(|e| e.cylinder_at(offset))
    }

    /// Number of videos placed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// True when no videos are placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Remaining free cylinders.
    #[must_use]
    pub fn free_cylinders(&self) -> u32 {
        self.total_cylinders - self.next_free_cylinder
    }

    /// Iterates over `(video, extent)` pairs in video-id order.
    pub fn iter(&self) -> impl Iterator<Item = (VideoId, Extent)> + '_ {
        self.extents.iter().map(|(v, e)| (*v, *e))
    }
}

/// Validates the chunk-size rule of Chang & Garcia-Molina: a chunk must be
/// at least twice the largest buffer the allocation scheme can hand out, so
/// that any single buffer's data lies within one chunk (possibly via the
/// replicated overlap region).
///
/// # Errors
///
/// Returns [`ConfigError`] when the rule is violated.
pub fn validate_chunk_size(chunk: Bits, max_buffer: Bits) -> Result<(), ConfigError> {
    if !chunk.is_valid_size() || chunk.is_zero() {
        return Err(ConfigError::new("chunk_size", "must be positive"));
    }
    if chunk < max_buffer * 2.0 {
        return Err(ConfigError::new(
            "chunk_size",
            format!("chunk ({chunk}) must be at least twice the maximum buffer ({max_buffer})"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DiskProfile;

    fn layout() -> VideoLayout {
        VideoLayout::new(&DiskProfile::barracuda_9lp()).expect("valid profile")
    }

    fn video_size() -> Bits {
        // 120 min at 1.5 Mbps.
        Bits::new(1.5e6 * 7200.0)
    }

    #[test]
    fn places_videos_contiguously() {
        let mut l = layout();
        let a = l.place(VideoId::new(0), video_size()).expect("fits");
        let b = l.place(VideoId::new(1), video_size()).expect("fits");
        assert_eq!(a.start_cylinder, 0);
        assert_eq!(b.start_cylinder, a.end_cylinder());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn six_mpeg1_videos_fill_most_of_the_disk() {
        let mut l = layout();
        for i in 0..6 {
            l.place(VideoId::new(i), video_size()).expect("video fits");
        }
        // A seventh does not fit (capacity check in DiskProfile::videos_fitting).
        assert!(l.place(VideoId::new(6), video_size()).is_err());
    }

    #[test]
    fn rejects_duplicates_and_empty_videos() {
        let mut l = layout();
        l.place(VideoId::new(0), video_size()).expect("fits");
        assert!(l.place(VideoId::new(0), video_size()).is_err());
        assert!(l.place(VideoId::new(1), Bits::ZERO).is_err());
    }

    #[test]
    fn cylinder_advances_with_offset() {
        let mut l = layout();
        let v = VideoId::new(0);
        let ext = l.place(v, video_size()).expect("fits");
        let start = l.cylinder_at(v, Bits::ZERO).expect("placed");
        let middle = l.cylinder_at(v, video_size() / 2.0).expect("placed");
        let end = l.cylinder_at(v, video_size()).expect("placed");
        assert_eq!(start, ext.start_cylinder);
        assert!(middle > start);
        assert!(end >= middle);
        assert!(end < ext.end_cylinder());
    }

    #[test]
    fn offset_clamps_at_video_end() {
        let mut l = layout();
        let v = VideoId::new(0);
        let ext = l.place(v, video_size()).expect("fits");
        let past = l.cylinder_at(v, video_size() * 10.0).expect("placed");
        assert_eq!(past, ext.end_cylinder() - 1);
    }

    #[test]
    fn unknown_video_has_no_cylinder() {
        let l = layout();
        assert!(l.cylinder_at(VideoId::new(9), Bits::ZERO).is_none());
        assert!(l.extent(VideoId::new(9)).is_none());
        assert!(l.is_empty());
    }

    #[test]
    fn chunk_rule() {
        let max_buf = Bits::from_megabits(10.0);
        assert!(validate_chunk_size(Bits::from_megabits(20.0), max_buf).is_ok());
        assert!(validate_chunk_size(Bits::from_megabits(19.9), max_buf).is_err());
        assert!(validate_chunk_size(Bits::ZERO, max_buf).is_err());
    }

    #[test]
    fn free_cylinders_decrease_monotonically() {
        let mut l = layout();
        let before = l.free_cylinders();
        l.place(VideoId::new(0), video_size()).expect("fits");
        assert!(l.free_cylinders() < before);
        assert_eq!(l.iter().count(), 1);
    }
}
