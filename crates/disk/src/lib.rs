//! Disk substrate for the VOD dynamic-buffer-allocation library.
//!
//! The paper's entire analysis consumes a disk through three quantities:
//!
//! * the sustained transfer rate `TR` (bits/s),
//! * the seek-time function `γ(x)` over a distance of `x` cylinders
//!   (Eq. 7 of the paper, the Ruemmler & Wilkes two-piece model), and
//! * the maximum rotational delay `θ`.
//!
//! This crate models exactly that — plus the pieces a real server built on
//! the model needs:
//!
//! * [`seek::SeekModel`] — the two-piece seek curve with its continuity
//!   constraint at the breakpoint;
//! * [`profile::DiskProfile`] — a named parameter set
//!   ([`profile::DiskProfile::barracuda_9lp`] reproduces Table 3 of the
//!   paper) with derived quantities such as the maximum number `N` of
//!   concurrent streams (Eq. 1);
//! * [`layout`] — contiguous *chunk* placement of videos on cylinders
//!   (following Chang & Garcia-Molina), so a simulator can derive actual
//!   seek distances;
//! * [`disk::Disk`] — a simulated drive: tracks head position, services
//!   reads, and reports both worst-case and sampled service latencies;
//! * [`array::DiskArray`] — a multi-disk server with popularity-based
//!   placement, for the paper's 10-disk capacity experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod disk;
pub mod layout;
pub mod profile;
pub mod seek;
pub mod zoned;

pub use array::DiskArray;
pub use disk::{Disk, ReadOutcome};
pub use layout::{Extent, VideoLayout};
pub use profile::DiskProfile;
pub use seek::{LatencyModel, SeekModel};
pub use zoned::{Zone, ZonedProfile};
