//! Named disk parameter sets and quantities derived from them.

use vod_types::{BitRate, Bits, ConfigError, Seconds};

use crate::seek::SeekModel;

/// A disk's performance profile: everything the paper's formulas need.
///
/// [`DiskProfile::barracuda_9lp`] reproduces Table 3 of the paper (the
/// Seagate Barracuda 9LP used throughout its evaluation).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiskProfile {
    /// Human-readable model name.
    pub name: String,
    /// Formatted capacity of the drive.
    pub capacity: Bits,
    /// Minimum sustained transfer rate `TR`.
    pub transfer_rate: BitRate,
    /// Spindle speed, revolutions per minute.
    pub rpm: u32,
    /// Number of cylinders (`Cyln`). The paper's Table 3 omits this value;
    /// we default to the published 9LP figure (7 501) — see DESIGN.md §3.
    pub cylinders: u32,
    /// The seek-time curve and rotational delay.
    pub seek: SeekModel,
}

impl DiskProfile {
    /// The Seagate Barracuda 9LP profile of Table 3.
    ///
    /// ```
    /// use vod_disk::DiskProfile;
    /// use vod_types::BitRate;
    ///
    /// let disk = DiskProfile::barracuda_9lp();
    /// // The paper's Table 3 derives N = 79 for CR = 1.5 Mbps MPEG-1 streams.
    /// assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(1.5)), 79);
    /// ```
    #[must_use]
    pub fn barracuda_9lp() -> Self {
        DiskProfile {
            name: "Seagate Barracuda 9LP".to_owned(),
            capacity: Bits::from_gigabytes(9.19),
            transfer_rate: BitRate::from_mbps(120.0),
            rpm: 7200,
            cylinders: 7501,
            seek: SeekModel {
                mu1: Seconds::from_millis(0.54),
                nu1: Seconds::from_millis(0.26),
                mu2: Seconds::from_millis(5.0),
                nu2: Seconds::from_millis(0.0014),
                breakpoint: 400,
                max_rotational_delay: Seconds::from_millis(8.33),
            },
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-positive rates/capacity/cylinder
    /// counts, an invalid seek model, or a rotational delay inconsistent
    /// with the spindle speed by more than 10%.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.transfer_rate.is_valid_rate() {
            return Err(ConfigError::new("transfer_rate", "must be positive"));
        }
        if !self.capacity.is_valid_size() || self.capacity.is_zero() {
            return Err(ConfigError::new("capacity", "must be positive"));
        }
        if self.cylinders == 0 {
            return Err(ConfigError::new("cylinders", "must be positive"));
        }
        if self.rpm == 0 {
            return Err(ConfigError::new("rpm", "must be positive"));
        }
        self.seek.validate()?;
        let revolution = 60.0 / f64::from(self.rpm);
        let theta = self.seek.max_rotational_delay.as_secs_f64();
        if (theta - revolution).abs() / revolution > 0.10 {
            return Err(ConfigError::new(
                "max_rotational_delay",
                format!(
                    "θ = {theta:.5}s does not match one revolution at {} rpm ({revolution:.5}s)",
                    self.rpm
                ),
            ));
        }
        Ok(())
    }

    /// The maximum number `N` of concurrent streams the disk supports at
    /// consumption rate `CR`: the largest integer with `N < TR / CR`
    /// (Eq. 1 — strict, because disk latency makes `TR = N·CR` infeasible).
    #[must_use]
    pub fn max_concurrent_requests(&self, consumption_rate: BitRate) -> usize {
        if !consumption_rate.is_valid_rate() {
            return 0;
        }
        let ratio = self.transfer_rate / consumption_rate;
        if !ratio.is_finite() || ratio <= 1.0 {
            return 0;
        }
        // Largest integer strictly below `ratio`.
        let floor = ratio.floor();
        #[allow(clippy::float_cmp)] // exact comparison is the point: N < TR/CR is strict
        let n = if floor == ratio { floor - 1.0 } else { floor };
        n.max(0.0) as usize
    }

    /// Duration of one full platter revolution.
    #[must_use]
    pub fn revolution_time(&self) -> Seconds {
        Seconds::from_secs(60.0 / f64::from(self.rpm))
    }

    /// How many 120-minute videos at rate `cr` fit on the drive.
    #[must_use]
    pub fn videos_fitting(&self, cr: BitRate, video_length: Seconds) -> usize {
        let video_size = cr * video_length;
        if video_size.is_zero() {
            return 0;
        }
        (self.capacity / video_size).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barracuda_profile_is_valid() {
        DiskProfile::barracuda_9lp()
            .validate()
            .expect("Table 3 profile");
    }

    #[test]
    fn n_is_79_for_mpeg1() {
        // TR/CR = 120/1.5 = 80 exactly; N must be *strictly* less, so 79.
        let disk = DiskProfile::barracuda_9lp();
        assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(1.5)), 79);
    }

    #[test]
    fn n_handles_non_integral_ratio() {
        let disk = DiskProfile::barracuda_9lp();
        // 120 / 1.6 = 75 exactly -> 74; 120 / 1.7 ≈ 70.6 -> 70.
        assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(1.6)), 74);
        assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(1.7)), 70);
    }

    #[test]
    fn n_degenerate_cases() {
        let disk = DiskProfile::barracuda_9lp();
        assert_eq!(disk.max_concurrent_requests(BitRate::ZERO), 0);
        assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(120.0)), 0);
        assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(200.0)), 0);
        assert_eq!(disk.max_concurrent_requests(BitRate::from_mbps(61.0)), 1);
    }

    #[test]
    fn rotation_matches_rpm() {
        let disk = DiskProfile::barracuda_9lp();
        // 7200 rpm -> 8.333... ms per revolution; Table 3 rounds to 8.33 ms.
        assert!((disk.revolution_time().as_millis() - 8.333).abs() < 0.01);
    }

    #[test]
    fn validation_rejects_inconsistent_theta() {
        let mut disk = DiskProfile::barracuda_9lp();
        disk.seek.max_rotational_delay = Seconds::from_millis(20.0);
        assert!(disk.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_fields() {
        let mut disk = DiskProfile::barracuda_9lp();
        disk.cylinders = 0;
        assert!(disk.validate().is_err());

        let mut disk = DiskProfile::barracuda_9lp();
        disk.transfer_rate = BitRate::ZERO;
        assert!(disk.validate().is_err());

        let mut disk = DiskProfile::barracuda_9lp();
        disk.capacity = Bits::ZERO;
        assert!(disk.validate().is_err());
    }

    #[test]
    fn catalog_capacity_is_plausible() {
        let disk = DiskProfile::barracuda_9lp();
        // A 120-min MPEG-1 video is ~1.32 GB; the 9.19 GB drive holds ~6.
        let n = disk.videos_fitting(BitRate::from_mbps(1.5), Seconds::from_minutes(120.0));
        assert_eq!(n, 6);
    }
}
