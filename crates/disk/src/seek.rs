//! The seek-time model `γ(x)` of Eq. 7 and disk latency sampling.
//!
//! The paper follows Ruemmler & Wilkes and Chang & Garcia-Molina in
//! modelling the seek time over `x` cylinders as
//!
//! ```text
//! γ(x) = μ1 + ν1·√x        for x < breakpoint
//! γ(x) = μ2 + ν2·x         for x ≥ breakpoint
//! ```
//!
//! with `μ2`, `ν2` chosen so that `γ` is continuous at the breakpoint
//! (x = 400 for the Barracuda 9LP). `γ(0) = 0`: no head movement, no seek.
//!
//! *Disk latency* `DL` for one service is defined in the paper as seek time
//! plus rotational delay; the worst case uses the **maximum** rotational
//! delay `θ` (one full revolution).

use vod_types::{ConfigError, Seconds};

/// The two-piece seek-time curve of Eq. 7.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeekModel {
    /// Fixed overhead of the square-root segment (speedup/slowdown/settle),
    /// in seconds (`μ1`).
    pub mu1: Seconds,
    /// Coefficient of `√x` in the square-root segment, in seconds (`ν1`).
    pub nu1: Seconds,
    /// Fixed overhead of the linear segment, in seconds (`μ2`).
    pub mu2: Seconds,
    /// Coefficient of `x` in the linear segment, in seconds (`ν2`).
    pub nu2: Seconds,
    /// Cylinder distance at which the model switches from the square-root
    /// to the linear segment (400 for the Barracuda 9LP).
    pub breakpoint: u32,
    /// Maximum rotational delay `θ` (one full revolution), in seconds.
    pub max_rotational_delay: Seconds,
}

impl SeekModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a coefficient is negative/non-finite,
    /// the breakpoint is zero, or the two segments are discontinuous at the
    /// breakpoint by more than 5% of the local seek time. (The paper *selects*
    /// `μ2`, `ν2` for continuity; a small tolerance admits its rounded
    /// published constants.)
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("mu1", self.mu1),
            ("nu1", self.nu1),
            ("mu2", self.mu2),
            ("nu2", self.nu2),
            ("max_rotational_delay", self.max_rotational_delay),
        ] {
            if !v.is_valid_duration() {
                return Err(ConfigError::new(
                    "seek_model",
                    format!("{name} must be a finite, non-negative duration"),
                ));
            }
        }
        if self.breakpoint == 0 {
            return Err(ConfigError::new(
                "seek_model",
                "breakpoint must be positive",
            ));
        }
        let x = f64::from(self.breakpoint);
        let left = self.mu1.as_secs_f64() + self.nu1.as_secs_f64() * x.sqrt();
        let right = self.mu2.as_secs_f64() + self.nu2.as_secs_f64() * x;
        let scale = left.abs().max(right.abs()).max(1e-9);
        if (left - right).abs() / scale > 0.05 {
            return Err(ConfigError::new(
                "seek_model",
                format!(
                    "segments discontinuous at breakpoint {x}: sqrt-side {left:.6}s vs linear-side {right:.6}s"
                ),
            ));
        }
        Ok(())
    }

    /// Seek time `γ(x)` over a distance of `x` cylinders.
    ///
    /// Accepts fractional distances because the paper evaluates
    /// `γ(Cyln / n)` for the Sweep and GSS methods.
    #[must_use]
    pub fn seek_time(&self, cylinders: f64) -> Seconds {
        if cylinders <= 0.0 {
            return Seconds::ZERO;
        }
        if cylinders < f64::from(self.breakpoint) {
            Seconds::from_secs(self.mu1.as_secs_f64() + self.nu1.as_secs_f64() * cylinders.sqrt())
        } else {
            Seconds::from_secs(self.mu2.as_secs_f64() + self.nu2.as_secs_f64() * cylinders)
        }
    }

    /// Worst-case disk latency for one service across `x` cylinders:
    /// `γ(x) + θ` (seek plus a full rotation).
    #[must_use]
    pub fn worst_latency(&self, cylinders: f64) -> Seconds {
        self.seek_time(cylinders) + self.max_rotational_delay
    }
}

/// How a simulator charges disk latency for each service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LatencyModel {
    /// Charge the worst-case latency the buffer-size formulas assume
    /// (maximum seek for the scheduling method, full rotation). This is
    /// what the paper's evaluation assumes and keeps the simulator
    /// consistent with the analysis.
    #[default]
    WorstCase,
    /// Charge `γ(actual head movement) + U(0, θ)` based on real head
    /// positions, for realism ablations. Buffers are still *sized* for the
    /// worst case, so services complete early and memory-sharing effects
    /// (the Sweep vs. Sweep* distinction) become visible.
    Sampled,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barracuda_seek() -> SeekModel {
        // Table 3 of the paper.
        SeekModel {
            mu1: Seconds::from_millis(0.54),
            nu1: Seconds::from_millis(0.26),
            mu2: Seconds::from_millis(5.0),
            nu2: Seconds::from_millis(0.0014),
            breakpoint: 400,
            max_rotational_delay: Seconds::from_millis(8.33),
        }
    }

    #[test]
    fn validates_paper_constants() {
        barracuda_seek()
            .validate()
            .expect("Table 3 constants are consistent");
    }

    #[test]
    fn gamma_zero_is_zero() {
        assert_eq!(barracuda_seek().seek_time(0.0), Seconds::ZERO);
        assert_eq!(barracuda_seek().seek_time(-3.0), Seconds::ZERO);
    }

    #[test]
    fn gamma_is_nearly_continuous_at_breakpoint() {
        // The paper's published constants are rounded, leaving a ~0.18 ms
        // step at x = 400 (5.74 ms vs. 5.56 ms); `validate` tolerates up to
        // 5% for exactly this reason.
        let m = barracuda_seek();
        let just_below = m.seek_time(399.999_999);
        let at = m.seek_time(400.0);
        let gap = (just_below.as_secs_f64() - at.as_secs_f64()).abs();
        assert!(gap < 0.25e-3, "left {just_below}, right {at}");
    }

    #[test]
    fn gamma_is_monotone_within_each_segment() {
        let m = barracuda_seek();
        let mut prev = Seconds::ZERO;
        for x in 0..400 {
            let t = m.seek_time(f64::from(x));
            assert!(t >= prev, "sqrt segment not monotone at x={x}");
            prev = t;
        }
        let mut prev = m.seek_time(400.0);
        for x in 401..8000 {
            let t = m.seek_time(f64::from(x));
            assert!(t >= prev, "linear segment not monotone at x={x}");
            prev = t;
        }
    }

    #[test]
    fn gamma_uses_sqrt_segment_below_breakpoint() {
        let m = barracuda_seek();
        let t = m.seek_time(100.0);
        let expected = 0.54e-3 + 0.26e-3 * 10.0;
        assert!((t.as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_uses_linear_segment_at_and_above_breakpoint() {
        let m = barracuda_seek();
        let t = m.seek_time(7501.0);
        let expected = 5.0e-3 + 0.0014e-3 * 7501.0;
        assert!((t.as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn worst_latency_adds_full_rotation() {
        let m = barracuda_seek();
        let dl = m.worst_latency(7501.0);
        let expected = (5.0 + 0.0014 * 7501.0 + 8.33) * 1e-3;
        assert!((dl.as_secs_f64() - expected).abs() < 1e-12);
        // The paper's DL^RR for the Barracuda is roughly 23.8 ms.
        assert!((dl.as_millis() - 23.83).abs() < 0.1);
    }

    #[test]
    fn rejects_discontinuous_model() {
        let mut m = barracuda_seek();
        m.mu2 = Seconds::from_millis(50.0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_negative_coefficients() {
        let mut m = barracuda_seek();
        m.nu1 = Seconds::from_secs(-1.0);
        assert!(m.validate().is_err());
        let mut m = barracuda_seek();
        m.breakpoint = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn max_seek_matches_table3_read_seek() {
        // Table 3: max read seek 13.4 ms. γ(Cyln)+0 should be close for the
        // full stroke (γ(7501) ≈ 15.5ms includes settle overhead; the spec's
        // 13.4ms is the raw seek). We assert the model is in the right
        // regime rather than exactly equal.
        let m = barracuda_seek();
        let full = m.seek_time(7501.0).as_millis();
        assert!(full > 10.0 && full < 20.0, "full-stroke seek {full} ms");
    }
}
