//! Multi-zone recording (ZBR): real drives transfer faster on outer
//! cylinders.
//!
//! The paper sidesteps zoning by using the drive's **minimum** sustained
//! rate as `TR` (Table 3 lists "Min. Transfer Rate") — a conservative
//! bound under which every formula stays safe. [`ZonedProfile`] models
//! the zones explicitly so a server can (a) validate that the paper's
//! conservative choice really is the minimum, and (b) quantify the
//! headroom the conservative bound leaves on outer-zone reads.

use vod_types::{BitRate, ConfigError};

use crate::profile::DiskProfile;

/// One recording zone: a run of cylinders sharing a transfer rate.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Zone {
    /// Number of cylinders in the zone.
    pub cylinders: u32,
    /// Sustained transfer rate within the zone.
    pub rate: BitRate,
}

/// A disk profile with explicit recording zones (outermost first).
#[derive(Clone, Debug, PartialEq)]
pub struct ZonedProfile {
    base: DiskProfile,
    zones: Vec<Zone>,
    /// Cumulative cylinder boundaries (exclusive end per zone).
    boundaries: Vec<u32>,
}

impl ZonedProfile {
    /// Builds a zoned profile over `base`. The zones must tile exactly
    /// `base.cylinders`, and the slowest zone must be at least
    /// `base.transfer_rate` — the conservative `TR` the buffer formulas
    /// use must be a true lower bound.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the zones are empty, do not tile the
    /// cylinder count, contain a non-positive rate, or undercut `TR`.
    pub fn new(base: DiskProfile, zones: Vec<Zone>) -> Result<Self, ConfigError> {
        base.validate()?;
        if zones.is_empty() {
            return Err(ConfigError::new("zones", "must not be empty"));
        }
        let mut total: u64 = 0;
        let mut boundaries = Vec::with_capacity(zones.len());
        for (i, z) in zones.iter().enumerate() {
            if z.cylinders == 0 {
                return Err(ConfigError::new(
                    "zones",
                    format!("zone {i} has no cylinders"),
                ));
            }
            if !z.rate.is_valid_rate() {
                return Err(ConfigError::new("zones", format!("zone {i} has no rate")));
            }
            if z.rate < base.transfer_rate {
                return Err(ConfigError::new(
                    "zones",
                    format!(
                        "zone {i} rate {} undercuts the conservative TR {}",
                        z.rate, base.transfer_rate
                    ),
                ));
            }
            total += u64::from(z.cylinders);
            boundaries.push(total as u32);
        }
        if total != u64::from(base.cylinders) {
            return Err(ConfigError::new(
                "zones",
                format!(
                    "zones cover {total} cylinders; the profile has {}",
                    base.cylinders
                ),
            ));
        }
        Ok(ZonedProfile {
            base,
            zones,
            boundaries,
        })
    }

    /// A plausible 3-zone Barracuda 9LP: the paper's 120 Mbps as the
    /// inner-zone floor, faster middle and outer zones.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`ZonedProfile::new`].
    pub fn barracuda_9lp_3zone() -> Result<Self, ConfigError> {
        let base = DiskProfile::barracuda_9lp();
        let c = base.cylinders;
        let zones = vec![
            Zone {
                cylinders: c / 3,
                rate: BitRate::from_mbps(180.0),
            },
            Zone {
                cylinders: c / 3,
                rate: BitRate::from_mbps(150.0),
            },
            Zone {
                cylinders: c - 2 * (c / 3),
                rate: BitRate::from_mbps(120.0),
            },
        ];
        ZonedProfile::new(base, zones)
    }

    /// The conservative single-rate profile the paper's formulas consume.
    #[must_use]
    pub fn conservative(&self) -> &DiskProfile {
        &self.base
    }

    /// The zones, outermost first.
    #[must_use]
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Transfer rate at a cylinder (clamps past the last zone).
    #[must_use]
    pub fn rate_at(&self, cylinder: u32) -> BitRate {
        let idx = self.boundaries.partition_point(|&b| b <= cylinder);
        self.zones[idx.min(self.zones.len() - 1)].rate
    }

    /// The true minimum rate across zones (≥ the conservative `TR`).
    #[must_use]
    pub fn min_rate(&self) -> BitRate {
        self.zones
            .iter()
            .map(|z| z.rate)
            .min()
            .expect("constructor requires at least one zone")
    }

    /// Cylinder-weighted mean rate — the headroom the conservative bound
    /// leaves on average.
    #[must_use]
    pub fn mean_rate(&self) -> BitRate {
        let total: f64 = self.zones.iter().map(|z| f64::from(z.cylinders)).sum();
        let weighted: f64 = self
            .zones
            .iter()
            .map(|z| z.rate.as_f64() * f64::from(z.cylinders))
            .sum();
        BitRate::new(weighted / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_zone_barracuda_is_valid() {
        let z = ZonedProfile::barracuda_9lp_3zone().expect("built-in constants");
        assert_eq!(z.zones().len(), 3);
        assert_eq!(z.min_rate(), BitRate::from_mbps(120.0));
        assert!(z.mean_rate() > z.min_rate());
        assert!(z.mean_rate() < BitRate::from_mbps(180.0));
    }

    #[test]
    fn rate_lookup_respects_boundaries() {
        let z = ZonedProfile::barracuda_9lp_3zone().expect("valid");
        let third = z.conservative().cylinders / 3;
        assert_eq!(z.rate_at(0), BitRate::from_mbps(180.0));
        assert_eq!(z.rate_at(third - 1), BitRate::from_mbps(180.0));
        assert_eq!(z.rate_at(third), BitRate::from_mbps(150.0));
        assert_eq!(z.rate_at(2 * third), BitRate::from_mbps(120.0));
        // Past the end clamps into the last zone.
        assert_eq!(z.rate_at(u32::MAX), BitRate::from_mbps(120.0));
    }

    #[test]
    fn rejects_zones_that_undercut_tr() {
        let base = DiskProfile::barracuda_9lp();
        let c = base.cylinders;
        let res = ZonedProfile::new(
            base,
            vec![Zone {
                cylinders: c,
                rate: BitRate::from_mbps(100.0), // below TR = 120
            }],
        );
        assert!(res.is_err());
    }

    #[test]
    fn rejects_bad_tilings() {
        let base = DiskProfile::barracuda_9lp();
        assert!(ZonedProfile::new(base.clone(), vec![]).is_err());
        assert!(ZonedProfile::new(
            base.clone(),
            vec![Zone {
                cylinders: 10,
                rate: BitRate::from_mbps(130.0)
            }]
        )
        .is_err());
        assert!(ZonedProfile::new(
            base.clone(),
            vec![
                Zone {
                    cylinders: base.cylinders,
                    rate: BitRate::ZERO
                };
                1
            ]
        )
        .is_err());
    }

    #[test]
    fn single_zone_degenerates_to_flat() {
        let base = DiskProfile::barracuda_9lp();
        let z = ZonedProfile::new(
            base.clone(),
            vec![Zone {
                cylinders: base.cylinders,
                rate: base.transfer_rate,
            }],
        )
        .expect("valid");
        assert_eq!(z.min_rate(), base.transfer_rate);
        assert_eq!(z.mean_rate(), base.transfer_rate);
        assert_eq!(z.rate_at(1234), base.transfer_rate);
    }
}
