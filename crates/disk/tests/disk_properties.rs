//! Property tests for the disk substrate: seek-curve sanity over random
//! valid models, and layout extent disjointness over random catalogs.

use proptest::prelude::*;
use vod_disk::{DiskProfile, SeekModel, VideoLayout};
use vod_types::{Bits, Seconds, VideoId};

fn seek_model_strategy() -> impl Strategy<Value = SeekModel> {
    // Build the linear segment first, then derive a continuous sqrt
    // segment (the construction the paper describes: pick μ2, ν2 so γ is
    // continuous at the breakpoint).
    (
        0.1f64..2.0,  // mu1 ms
        0.05f64..0.5, // nu1 ms
        100u32..1000, // breakpoint
        1.0f64..20.0, // theta ms
    )
        .prop_map(|(mu1, nu1, bp, theta)| {
            let x = f64::from(bp);
            // Continuity: mu2 + nu2·x = mu1 + nu1·√x, slope matched at
            // roughly half the sqrt slope.
            let left = mu1 + nu1 * x.sqrt();
            let nu2 = nu1 / (2.0 * x.sqrt());
            let mu2 = left - nu2 * x;
            SeekModel {
                mu1: Seconds::from_millis(mu1),
                nu1: Seconds::from_millis(nu1),
                mu2: Seconds::from_millis(mu2),
                nu2: Seconds::from_millis(nu2),
                breakpoint: bp,
                max_rotational_delay: Seconds::from_millis(theta),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn constructed_models_validate_and_are_monotone(model in seek_model_strategy()) {
        prop_assert!(model.validate().is_ok());
        let mut prev = Seconds::ZERO;
        for x in 0..3000u32 {
            let t = model.seek_time(f64::from(x));
            prop_assert!(t >= prev, "γ dips at x={x}");
            prop_assert!(t.is_valid_duration());
            prev = t;
        }
        // Worst latency dominates the bare seek by exactly θ.
        let dl = model.worst_latency(1234.0);
        let seek = model.seek_time(1234.0);
        prop_assert!((dl.as_secs_f64() - seek.as_secs_f64()
            - model.max_rotational_delay.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn layout_extents_are_disjoint_and_ordered(
        sizes in prop::collection::vec(1.0e8f64..2.0e9, 1..12),
    ) {
        let profile = DiskProfile::barracuda_9lp();
        let mut layout = VideoLayout::new(&profile).expect("valid profile");
        let mut placed = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            match layout.place(VideoId::new(i as u64), Bits::new(size)) {
                Ok(ext) => placed.push(ext),
                Err(_) => break, // disk full: acceptable, stop placing
            }
        }
        // Extents tile the disk without overlap, in placement order.
        for pair in placed.windows(2) {
            prop_assert_eq!(pair[0].end_cylinder(), pair[1].start_cylinder);
        }
        for ext in &placed {
            prop_assert!(ext.cylinders >= 1);
            prop_assert!(ext.end_cylinder() <= profile.cylinders);
        }
    }

    #[test]
    fn play_offset_maps_into_the_extent(
        size in 1.0e8f64..2.0e9,
        frac in 0.0f64..1.5,
    ) {
        let profile = DiskProfile::barracuda_9lp();
        let mut layout = VideoLayout::new(&profile).expect("valid profile");
        let v = VideoId::new(0);
        let ext = layout.place(v, Bits::new(size)).expect("one video fits");
        let cyl = layout.cylinder_at(v, Bits::new(size * frac)).expect("placed");
        prop_assert!(cyl >= ext.start_cylinder);
        prop_assert!(cyl < ext.end_cylinder());
        // Offsets are monotone in cylinder.
        let before = layout.cylinder_at(v, Bits::new(size * frac * 0.5)).expect("placed");
        prop_assert!(before <= cyl);
    }

    #[test]
    fn n_formula_matches_strict_inequality(tr_mbps in 10.0f64..400.0, cr_mbps in 0.5f64..20.0) {
        let mut profile = DiskProfile::barracuda_9lp();
        profile.transfer_rate = vod_types::BitRate::from_mbps(tr_mbps);
        let n = profile.max_concurrent_requests(vod_types::BitRate::from_mbps(cr_mbps));
        let ratio = tr_mbps / cr_mbps;
        // N < TR/CR strictly, and N+1 ≥ TR/CR.
        prop_assert!((n as f64) < ratio);
        prop_assert!((n as f64) + 1.0 >= ratio - 1e-9);
    }
}
