//! Typed engine-lifecycle events.

use core::fmt;

use vod_types::{Bits, Instant, RequestId, Seconds};

use crate::json;
use crate::span::{AnnoValue, SpanId, SpanKind, SpanStatus, TraceId};

/// Why a request was rejected outright (as opposed to deferred).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The disk is at its stream bound `N` (queued requests included).
    DiskFull,
    /// The memory reservation for one more stream does not fit the budget.
    MemoryFull,
    /// The admission queue was drained at end of run (unreachable load).
    QueueDropped,
}

impl RejectReason {
    /// Stable snake_case label (used in JSON and stderr output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::DiskFull => "disk_full",
            RejectReason::MemoryFull => "memory_full",
            RejectReason::QueueDropped => "queue_dropped",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The discriminant of an [`Event`], used for filtering and counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A service cycle was planned and is about to start.
    CyclePlanned,
    /// One stream's buffer was refilled.
    StreamServiced,
    /// A queued request entered service.
    RequestAdmitted,
    /// Admission of the queue head was deferred (inertia assumptions).
    RequestDeferred,
    /// An arriving request was rejected outright.
    RequestRejected,
    /// A stream's first buffer was allocated.
    BufferAllocated,
    /// A live stream's allocation changed size.
    BufferResized,
    /// A departing stream's buffer was released.
    BufferFreed,
    /// The `k` estimate was clamped by Assumption 2 or the disk bound.
    EstimatorClamped,
    /// A stream consumed past its buffered data.
    Underflow,
    /// The buffer pool reached a new occupancy high-water mark.
    PoolOccupancy,
    /// A lifecycle span opened (see [`crate::span`]).
    SpanStart,
    /// A key/value annotation on an open span.
    SpanAnnotate,
    /// A lifecycle span closed.
    SpanEnd,
    /// A chaos fault was injected into a cluster node.
    FaultInjected,
    /// A cluster node recovered (rejoined) after a fault.
    NodeRecovered,
    /// A downed node's replica set was rebuilt onto surviving nodes.
    ReplicaRebuilt,
}

impl EventKind {
    /// Number of distinct kinds.
    pub const COUNT: usize = 17;

    /// Every kind, in index order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::CyclePlanned,
        EventKind::StreamServiced,
        EventKind::RequestAdmitted,
        EventKind::RequestDeferred,
        EventKind::RequestRejected,
        EventKind::BufferAllocated,
        EventKind::BufferResized,
        EventKind::BufferFreed,
        EventKind::EstimatorClamped,
        EventKind::Underflow,
        EventKind::PoolOccupancy,
        EventKind::SpanStart,
        EventKind::SpanAnnotate,
        EventKind::SpanEnd,
        EventKind::FaultInjected,
        EventKind::NodeRecovered,
        EventKind::ReplicaRebuilt,
    ];

    /// Dense index (0-based, stable within a release).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EventKind::CyclePlanned => 0,
            EventKind::StreamServiced => 1,
            EventKind::RequestAdmitted => 2,
            EventKind::RequestDeferred => 3,
            EventKind::RequestRejected => 4,
            EventKind::BufferAllocated => 5,
            EventKind::BufferResized => 6,
            EventKind::BufferFreed => 7,
            EventKind::EstimatorClamped => 8,
            EventKind::Underflow => 9,
            EventKind::PoolOccupancy => 10,
            EventKind::SpanStart => 11,
            EventKind::SpanAnnotate => 12,
            EventKind::SpanEnd => 13,
            EventKind::FaultInjected => 14,
            EventKind::NodeRecovered => 15,
            EventKind::ReplicaRebuilt => 16,
        }
    }

    /// True for the three span-lifecycle kinds.
    #[must_use]
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::SpanStart | EventKind::SpanAnnotate | EventKind::SpanEnd
        )
    }

    /// Stable snake_case label (the `kind` field of the JSONL output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::CyclePlanned => "cycle_planned",
            EventKind::StreamServiced => "stream_serviced",
            EventKind::RequestAdmitted => "request_admitted",
            EventKind::RequestDeferred => "request_deferred",
            EventKind::RequestRejected => "request_rejected",
            EventKind::BufferAllocated => "buffer_allocated",
            EventKind::BufferResized => "buffer_resized",
            EventKind::BufferFreed => "buffer_freed",
            EventKind::EstimatorClamped => "estimator_clamped",
            EventKind::Underflow => "underflow",
            EventKind::PoolOccupancy => "pool_occupancy",
            EventKind::SpanStart => "span_start",
            EventKind::SpanAnnotate => "span_annotate",
            EventKind::SpanEnd => "span_end",
            EventKind::FaultInjected => "fault_injected",
            EventKind::NodeRecovered => "node_recovered",
            EventKind::ReplicaRebuilt => "replica_rebuilt",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One engine-lifecycle event.
///
/// Every timestamp is **simulated** time — the event path never reads the
/// wall clock, so instrumented runs stay deterministic and replayable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A service cycle is about to start.
    CyclePlanned {
        /// Current simulated time when the plan was made.
        at: Instant,
        /// When the cycle actually starts (≥ `at`).
        start: Instant,
        /// The planner's latest provably safe start (may precede `at`).
        planned: Instant,
        /// Streams in service.
        n: usize,
        /// Earliest buffer-drain deadline among live streams.
        due_min: Option<Instant>,
        /// Mid-cycle insertions the start time budgeted for.
        insertion_budget: usize,
    },
    /// One stream's buffer was refilled.
    StreamServiced {
        /// Completion time of the service (seek + transfer).
        at: Instant,
        /// The serviced stream.
        id: RequestId,
        /// `n_c` used for the allocation.
        n: usize,
        /// `k_c` used for the allocation.
        k: usize,
        /// Data read from disk.
        read: Bits,
        /// Allocated buffer size.
        size: Bits,
        /// Duration of the service (disk latency + transfer).
        duration: Seconds,
        /// True when this was the stream's first fill.
        first_fill: bool,
    },
    /// A queued request entered service.
    RequestAdmitted {
        /// Admission time.
        at: Instant,
        /// The admitted request.
        id: RequestId,
        /// Streams in service after admission.
        n: usize,
        /// Queue wait: admission − arrival.
        waited: Seconds,
    },
    /// Admission of the queue head was deferred.
    RequestDeferred {
        /// Time of the failed attempt.
        at: Instant,
        /// The deferred request.
        id: RequestId,
        /// Streams in service at the attempt.
        n: usize,
    },
    /// An arriving request was rejected outright.
    RequestRejected {
        /// Rejection time.
        at: Instant,
        /// Streams in service (queued included, as admission counts them).
        n: usize,
        /// Why the request could not be taken.
        reason: RejectReason,
    },
    /// A stream's first buffer was allocated.
    BufferAllocated {
        /// Allocation time.
        at: Instant,
        /// The owning stream.
        id: RequestId,
        /// Allocated size.
        size: Bits,
    },
    /// A live stream's allocation changed size.
    BufferResized {
        /// Reallocation time.
        at: Instant,
        /// The owning stream.
        id: RequestId,
        /// Previous allocation.
        old_size: Bits,
        /// New allocation.
        new_size: Bits,
    },
    /// A departing stream's buffer was released.
    BufferFreed {
        /// Departure time.
        at: Instant,
        /// The departing stream.
        id: RequestId,
        /// Data still held at departure (released to the pool).
        released: Bits,
    },
    /// The `k` estimate was clamped below `k_log + α`.
    EstimatorClamped {
        /// Estimation time.
        at: Instant,
        /// Raw `k_log` from the arrival log.
        k_log: usize,
        /// `k_c` after clamping.
        k_clamped: usize,
        /// The binding cap (`min_i (k_i + α)` or the disk bound `N`).
        cap: usize,
    },
    /// A stream consumed past its buffered data.
    Underflow {
        /// Time the deficit was observed.
        at: Instant,
        /// The starved stream.
        id: RequestId,
        /// Streams in service.
        n: usize,
        /// Unserved consumption.
        deficit: Bits,
    },
    /// The pool reached a new occupancy high-water mark.
    PoolOccupancy {
        /// Observation time.
        at: Instant,
        /// Occupancy at the observation (the new peak).
        used: Bits,
        /// High-water mark (equals `used` on high-water events).
        peak: Bits,
        /// Streams holding buffers.
        streams: usize,
    },
    /// A lifecycle span opened.
    SpanStart {
        /// Open time.
        at: Instant,
        /// The owning trace.
        trace: TraceId,
        /// This span's id.
        span: SpanId,
        /// Enclosing span, if any.
        parent: Option<SpanId>,
        /// What stage of the request path the span covers.
        span_kind: SpanKind,
    },
    /// A key/value annotation on an open span.
    SpanAnnotate {
        /// Annotation time.
        at: Instant,
        /// The owning trace.
        trace: TraceId,
        /// The annotated span.
        span: SpanId,
        /// Annotation key.
        key: &'static str,
        /// Annotation value.
        value: AnnoValue,
    },
    /// A lifecycle span closed.
    SpanEnd {
        /// Close time.
        at: Instant,
        /// The owning trace.
        trace: TraceId,
        /// The closing span.
        span: SpanId,
        /// How the span ended.
        status: SpanStatus,
    },
    /// A chaos fault was injected into a cluster node.
    FaultInjected {
        /// Injection time (simulated).
        at: Instant,
        /// The faulted node's index.
        node: usize,
        /// Stable fault label (`crash`, `slow`, `pressure`, `rejoin`).
        fault: &'static str,
    },
    /// A cluster node recovered (rejoined) after a fault.
    NodeRecovered {
        /// Recovery time (simulated).
        at: Instant,
        /// The recovered node's index.
        node: usize,
        /// True when the rejoin reused the shared `BS_k` table (warm);
        /// false when it paid a cold rebuild.
        warm: bool,
    },
    /// A node stayed down past the re-replication horizon and its movies
    /// were re-placed onto surviving nodes.
    ReplicaRebuilt {
        /// Rebuild time (simulated).
        at: Instant,
        /// The downed node whose hot set was re-placed.
        node: usize,
        /// Movies that gained a replacement replica.
        movies: usize,
    },
}

impl Event {
    /// The event's kind.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::CyclePlanned { .. } => EventKind::CyclePlanned,
            Event::StreamServiced { .. } => EventKind::StreamServiced,
            Event::RequestAdmitted { .. } => EventKind::RequestAdmitted,
            Event::RequestDeferred { .. } => EventKind::RequestDeferred,
            Event::RequestRejected { .. } => EventKind::RequestRejected,
            Event::BufferAllocated { .. } => EventKind::BufferAllocated,
            Event::BufferResized { .. } => EventKind::BufferResized,
            Event::BufferFreed { .. } => EventKind::BufferFreed,
            Event::EstimatorClamped { .. } => EventKind::EstimatorClamped,
            Event::Underflow { .. } => EventKind::Underflow,
            Event::PoolOccupancy { .. } => EventKind::PoolOccupancy,
            Event::SpanStart { .. } => EventKind::SpanStart,
            Event::SpanAnnotate { .. } => EventKind::SpanAnnotate,
            Event::SpanEnd { .. } => EventKind::SpanEnd,
            Event::FaultInjected { .. } => EventKind::FaultInjected,
            Event::NodeRecovered { .. } => EventKind::NodeRecovered,
            Event::ReplicaRebuilt { .. } => EventKind::ReplicaRebuilt,
        }
    }

    /// Simulated time of the event.
    #[must_use]
    pub fn at(&self) -> Instant {
        match *self {
            Event::CyclePlanned { at, .. }
            | Event::StreamServiced { at, .. }
            | Event::RequestAdmitted { at, .. }
            | Event::RequestDeferred { at, .. }
            | Event::RequestRejected { at, .. }
            | Event::BufferAllocated { at, .. }
            | Event::BufferResized { at, .. }
            | Event::BufferFreed { at, .. }
            | Event::EstimatorClamped { at, .. }
            | Event::Underflow { at, .. }
            | Event::PoolOccupancy { at, .. }
            | Event::SpanStart { at, .. }
            | Event::SpanAnnotate { at, .. }
            | Event::SpanEnd { at, .. }
            | Event::FaultInjected { at, .. }
            | Event::NodeRecovered { at, .. }
            | Event::ReplicaRebuilt { at, .. } => at,
        }
    }

    /// One-line JSON object (no trailing newline) for JSONL export.
    ///
    /// Instants and durations are seconds, data sizes are bits; the first
    /// field is always `"kind"`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = json::Object::new();
        o.str("kind", self.kind().label());
        o.num("t", self.at().as_secs_f64());
        match *self {
            Event::CyclePlanned {
                start,
                planned,
                n,
                due_min,
                insertion_budget,
                ..
            } => {
                o.num("start", start.as_secs_f64());
                o.num("planned", planned.as_secs_f64());
                o.uint("n", n as u64);
                match due_min {
                    Some(d) => o.num("due_min", d.as_secs_f64()),
                    None => o.null("due_min"),
                }
                // usize::MAX means "unconstrained"; emit null for clarity.
                if insertion_budget == usize::MAX {
                    o.null("insertion_budget");
                } else {
                    o.uint("insertion_budget", insertion_budget as u64);
                }
            }
            Event::StreamServiced {
                id,
                n,
                k,
                read,
                size,
                duration,
                first_fill,
                ..
            } => {
                o.uint("id", id.raw());
                o.uint("n", n as u64);
                o.uint("k", k as u64);
                o.num("read_bits", read.as_f64());
                o.num("size_bits", size.as_f64());
                o.num("duration_s", duration.as_secs_f64());
                o.bool("first_fill", first_fill);
            }
            Event::RequestAdmitted { id, n, waited, .. } => {
                o.uint("id", id.raw());
                o.uint("n", n as u64);
                o.num("waited_s", waited.as_secs_f64());
            }
            Event::RequestDeferred { id, n, .. } => {
                o.uint("id", id.raw());
                o.uint("n", n as u64);
            }
            Event::RequestRejected { n, reason, .. } => {
                o.uint("n", n as u64);
                o.str("reason", reason.label());
            }
            Event::BufferAllocated { id, size, .. } => {
                o.uint("id", id.raw());
                o.num("size_bits", size.as_f64());
            }
            Event::BufferResized {
                id,
                old_size,
                new_size,
                ..
            } => {
                o.uint("id", id.raw());
                o.num("old_size_bits", old_size.as_f64());
                o.num("new_size_bits", new_size.as_f64());
            }
            Event::BufferFreed { id, released, .. } => {
                o.uint("id", id.raw());
                o.num("released_bits", released.as_f64());
            }
            Event::EstimatorClamped {
                k_log,
                k_clamped,
                cap,
                ..
            } => {
                o.uint("k_log", k_log as u64);
                o.uint("k_clamped", k_clamped as u64);
                o.uint("cap", cap as u64);
            }
            Event::Underflow { id, n, deficit, .. } => {
                o.uint("id", id.raw());
                o.uint("n", n as u64);
                o.num("deficit_bits", deficit.as_f64());
            }
            Event::PoolOccupancy {
                used,
                peak,
                streams,
                ..
            } => {
                o.num("used_bits", used.as_f64());
                o.num("peak_bits", peak.as_f64());
                o.uint("streams", streams as u64);
            }
            // Span ids are emitted as 16-hex-digit strings: a u64 does
            // not survive a round trip through an f64 JSON number.
            Event::SpanStart {
                trace,
                span,
                parent,
                span_kind,
                ..
            } => {
                o.str("trace", &trace.hex());
                o.str("span", &span.hex());
                match parent {
                    Some(p) => o.str("parent", &p.hex()),
                    None => o.null("parent"),
                }
                o.str("span_kind", span_kind.label());
            }
            Event::SpanAnnotate {
                trace,
                span,
                key,
                value,
                ..
            } => {
                o.str("trace", &trace.hex());
                o.str("span", &span.hex());
                o.str("key", key);
                match value {
                    AnnoValue::U64(v) => o.uint("value", v),
                    AnnoValue::F64(v) => o.num("value", v),
                    AnnoValue::Str(v) => o.str("value", v),
                }
            }
            Event::SpanEnd {
                trace,
                span,
                status,
                ..
            } => {
                o.str("trace", &trace.hex());
                o.str("span", &span.hex());
                o.str("status", status.label());
            }
            Event::FaultInjected { node, fault, .. } => {
                o.uint("node", node as u64);
                o.str("fault", fault);
            }
            Event::NodeRecovered { node, warm, .. } => {
                o.uint("node", node as u64);
                o.bool("warm", warm);
            }
            Event::ReplicaRebuilt { node, movies, .. } => {
                o.uint("node", node as u64);
                o.uint("movies", movies as u64);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_densely() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::COUNT);
    }

    #[test]
    fn json_has_kind_and_time() {
        let e = Event::Underflow {
            at: Instant::from_secs(12.5),
            id: RequestId::new(7),
            n: 3,
            deficit: Bits::new(64.0),
        };
        let j = e.to_json();
        assert!(j.starts_with("{\"kind\":\"underflow\""), "{j}");
        assert!(j.contains("\"t\":12.5"), "{j}");
        assert!(j.contains("\"id\":7"), "{j}");
        assert!(j.contains("\"deficit_bits\":64"), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn span_json_uses_hex_ids() {
        let trace = TraceId::derive(5, 1);
        let span = SpanId::derive(trace, 0);
        let e = Event::SpanStart {
            at: Instant::from_secs(2.0),
            trace,
            span,
            parent: None,
            span_kind: SpanKind::Request,
        };
        let j = e.to_json();
        assert!(j.starts_with("{\"kind\":\"span_start\""), "{j}");
        assert!(j.contains(&format!("\"trace\":\"{}\"", trace.hex())), "{j}");
        assert!(j.contains(&format!("\"span\":\"{}\"", span.hex())), "{j}");
        assert!(j.contains("\"parent\":null"), "{j}");
        assert!(j.contains("\"span_kind\":\"request\""), "{j}");

        let end = Event::SpanEnd {
            at: Instant::from_secs(3.0),
            trace,
            span,
            status: SpanStatus::Admitted,
        };
        assert!(end.to_json().contains("\"status\":\"admitted\""));

        let anno = Event::SpanAnnotate {
            at: Instant::from_secs(2.5),
            trace,
            span,
            key: "hops",
            value: AnnoValue::U64(2),
        };
        let aj = anno.to_json();
        assert!(aj.contains("\"key\":\"hops\""), "{aj}");
        assert!(aj.contains("\"value\":2"), "{aj}");
    }

    #[test]
    fn unbounded_insertion_budget_is_null() {
        let e = Event::CyclePlanned {
            at: Instant::ZERO,
            start: Instant::ZERO,
            planned: Instant::ZERO,
            n: 0,
            due_min: None,
            insertion_budget: usize::MAX,
        };
        let j = e.to_json();
        assert!(j.contains("\"insertion_budget\":null"), "{j}");
        assert!(j.contains("\"due_min\":null"), "{j}");
    }
}
