//! The on-anomaly [`FlightRecorder`]: a bounded ring of the most recent
//! events and spans, dumped as JSONL when something goes wrong.
//!
//! The recorder is a [`Sink`] like any other, so it can tee alongside a
//! [`RecorderSink`](crate::RecorderSink) or run alone. Writers never
//! block: each record claims a slot index from an atomic cursor and
//! `try_lock`s just that slot — if another thread happens to hold the
//! same slot (only possible once the cursor laps the ring), the write is
//! counted as dropped instead of waiting. The ring therefore always
//! holds (approximately) the last `capacity` records, which is exactly
//! the context you want attached to an anomaly.
//!
//! ## Anomaly triggers
//!
//! A dump fires automatically when the recorder sees:
//!
//! * an [`Underflow`](crate::Event::Underflow) — a stream starved;
//! * a [`RequestRejected`](crate::Event::RequestRejected) — admission
//!   overflow (disk or memory bound hit);
//! * a [`SpanEnd`](crate::Event::SpanEnd) with status
//!   [`Parked`](crate::span::SpanStatus::Parked) — a cluster arrival no
//!   node would take;
//!
//! and manually via [`FlightRecorder::trigger`] (the bench baseline gate
//! calls this when a perf check fails). Dumps are capped (default
//! [`DEFAULT_MAX_DUMPS`]) so an anomaly storm cannot fill the disk; the
//! anomaly *count* keeps incrementing past the cap.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{Event, EventKind};
use crate::json;
use crate::sink::Sink;
use crate::span::SpanStatus;

/// Default ring capacity (records retained at dump time).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Default cap on dumps written per recorder instance.
pub const DEFAULT_MAX_DUMPS: u64 = 8;

/// A bounded, non-blocking ring of recent events with on-anomaly JSONL
/// dumps. See the module docs for the design and trigger list.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicU64,
    dropped: AtomicU64,
    anomalies: AtomicU64,
    dumps_written: AtomicU64,
    max_dumps: u64,
    path: Option<PathBuf>,
    dump_log: Mutex<Vec<String>>,
}

impl FlightRecorder {
    /// A recorder retaining the last [`DEFAULT_FLIGHT_CAPACITY`] records.
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder retaining the last `capacity` records (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            dumps_written: AtomicU64::new(0),
            max_dumps: DEFAULT_MAX_DUMPS,
            path: None,
            dump_log: Mutex::new(Vec::new()),
        }
    }

    /// Appends every dump to `path` (JSONL; the file is created on the
    /// first dump). Without a path, dumps are only retained in memory —
    /// see [`FlightRecorder::last_dump`].
    #[must_use]
    pub fn with_path(mut self, path: impl AsRef<Path>) -> Self {
        self.path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Caps the number of dumps written (default [`DEFAULT_MAX_DUMPS`]).
    #[must_use]
    pub fn with_max_dumps(mut self, max: u64) -> Self {
        self.max_dumps = max;
        self
    }

    /// Records seen so far (dropped ones included).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Writes lost to slot contention (ring laps under concurrency).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Anomalies observed (automatic triggers plus manual
    /// [`FlightRecorder::trigger`] calls), including ones past the dump
    /// cap.
    #[must_use]
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// Dumps actually written (≤ the configured cap).
    #[must_use]
    pub fn dumps_written(&self) -> u64 {
        self.dumps_written.load(Ordering::Relaxed)
    }

    /// The most recent dump's JSONL text, if any dump has fired.
    #[must_use]
    pub fn last_dump(&self) -> Option<String> {
        self.dump_log
            .lock()
            .expect("flight dump log poisoned")
            .last()
            .cloned()
    }

    /// Fires a dump manually (e.g. on a baseline-gate failure). Counted
    /// as an anomaly; writes nothing once the dump cap is reached.
    pub fn trigger(&self, reason: &str) {
        self.anomalies.fetch_add(1, Ordering::Relaxed);
        // Claim a dump ticket; tickets at or past the cap are no-ops.
        let ticket = self.dumps_written.fetch_add(1, Ordering::Relaxed);
        if ticket >= self.max_dumps {
            self.dumps_written.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let dump = self.render_dump(reason);
        if let Some(path) = &self.path {
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = f.write_all(dump.as_bytes());
            }
        }
        self.dump_log
            .lock()
            .expect("flight dump log poisoned")
            .push(dump);
    }

    /// Renders the ring (oldest → newest) behind a `flight_dump` marker
    /// line carrying the trigger reason and cursor position.
    fn render_dump(&self, reason: &str) -> String {
        let seq = self.cursor.load(Ordering::Acquire);
        let len = self.slots.len() as u64;
        let start = seq.saturating_sub(len);
        let mut events = Vec::with_capacity(self.slots.len());
        for s in start..seq {
            let slot = &self.slots[(s % len) as usize];
            if let Some(e) = *slot.lock().expect("flight slot poisoned") {
                events.push(e);
            }
        }
        let mut marker = json::Object::new();
        marker.str("kind", "flight_dump");
        marker.str("reason", reason);
        marker.uint("seq", seq);
        marker.uint("events", events.len() as u64);
        marker.uint("dropped", self.dropped());
        let mut out = marker.finish();
        out.push('\n');
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// The automatic trigger table (see the module docs).
    fn anomaly_reason(event: &Event) -> Option<&'static str> {
        match event {
            Event::Underflow { .. } => Some("underflow"),
            Event::RequestRejected { .. } => Some("overflow_rejection"),
            Event::SpanEnd {
                status: SpanStatus::Parked,
                ..
            } => Some("cluster_queue_park"),
            _ => None,
        }
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl Sink for FlightRecorder {
    fn enabled(&self, _kind: EventKind) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        let seq = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut s) => *s = Some(*event),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(reason) = FlightRecorder::anomaly_reason(event) {
            self.trigger(reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};
    use vod_types::{Bits, Instant, RequestId};

    fn cycle(t: f64) -> Event {
        Event::CyclePlanned {
            at: Instant::from_secs(t),
            start: Instant::from_secs(t),
            planned: Instant::from_secs(t),
            n: 1,
            due_min: None,
            insertion_budget: 0,
        }
    }

    fn underflow(t: f64) -> Event {
        Event::Underflow {
            at: Instant::from_secs(t),
            id: RequestId::new(1),
            n: 1,
            deficit: Bits::new(8.0),
        }
    }

    #[test]
    fn ring_keeps_only_the_most_recent_records() {
        let fr = FlightRecorder::with_capacity(3);
        for t in 0..10 {
            fr.record(&cycle(f64::from(t)));
        }
        fr.trigger("manual");
        let dump = fr.last_dump().expect("dump fired");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "marker + 3 retained records: {dump}");
        assert!(lines[0].contains("\"kind\":\"flight_dump\""));
        assert!(lines[0].contains("\"reason\":\"manual\""));
        assert!(lines[1].contains("\"t\":7"), "oldest retained is t=7");
        assert!(lines[3].contains("\"t\":9"), "newest retained is t=9");
    }

    #[test]
    fn underflow_and_rejection_auto_trigger() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record(&cycle(0.0));
        assert_eq!(fr.anomalies(), 0);
        fr.record(&underflow(1.0));
        assert_eq!(fr.anomalies(), 1);
        assert!(fr.last_dump().unwrap().contains("\"reason\":\"underflow\""));
        fr.record(&Event::RequestRejected {
            at: Instant::from_secs(2.0),
            n: 3,
            reason: crate::RejectReason::DiskFull,
        });
        assert_eq!(fr.anomalies(), 2);
        assert!(fr
            .last_dump()
            .unwrap()
            .contains("\"reason\":\"overflow_rejection\""));
    }

    #[test]
    fn parked_span_end_auto_triggers() {
        let fr = FlightRecorder::with_capacity(8);
        let trace = TraceId::derive(1, 0);
        fr.record(&Event::SpanEnd {
            at: Instant::from_secs(1.0),
            trace,
            span: SpanId::derive(trace, crate::span::SEQ_DISPATCH),
            status: SpanStatus::Parked,
        });
        assert_eq!(fr.anomalies(), 1);
        assert!(fr
            .last_dump()
            .unwrap()
            .contains("\"reason\":\"cluster_queue_park\""));
        // A normally ended span is not an anomaly.
        fr.record(&Event::SpanEnd {
            at: Instant::from_secs(2.0),
            trace,
            span: SpanId::derive(trace, crate::span::SEQ_DISPATCH),
            status: SpanStatus::Ok,
        });
        assert_eq!(fr.anomalies(), 1);
    }

    #[test]
    fn dump_cap_bounds_output_but_not_the_anomaly_count() {
        let fr = FlightRecorder::with_capacity(4).with_max_dumps(2);
        for t in 0..5 {
            fr.record(&underflow(f64::from(t)));
        }
        assert_eq!(fr.anomalies(), 5);
        assert_eq!(fr.dumps_written(), 2);
        assert_eq!(
            fr.dump_log.lock().unwrap().len(),
            2,
            "no dumps past the cap"
        );
    }

    #[test]
    fn dumps_append_to_the_configured_file() {
        let path =
            std::env::temp_dir().join(format!("vod-flight-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fr = FlightRecorder::with_capacity(4).with_path(&path);
        fr.record(&cycle(0.0));
        fr.record(&underflow(1.0));
        let text = std::fs::read_to_string(&path).expect("dump file written");
        assert!(text.starts_with("{\"kind\":\"flight_dump\""), "{text}");
        assert!(text.contains("\"kind\":\"underflow\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
