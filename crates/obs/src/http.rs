//! Minimal single-threaded HTTP scrape endpoint for the metrics
//! registry.
//!
//! Built directly on [`std::net::TcpListener`] — one accept thread,
//! GET-only, `Connection: close` — so `repro --metrics-addr
//! 127.0.0.1:9100` can be scraped by Prometheus (or `curl`) without
//! pulling in an HTTP stack. Routing is deliberately tiny: `/metrics`
//! (and `/`, its alias) serve the exposition text, `/healthz` answers
//! liveness probes, anything else is 404. Anything fancier
//! (keep-alive, TLS) is out of scope: the server exists to serve one
//! text document to a trusted scraper.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::MetricsRegistry;
use crate::prom;

/// A running scrape endpoint. Dropping (or calling
/// [`MetricsServer::shutdown`]) stops the accept thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9100"`; port 0 picks a free
    /// port) and serves the current state of `registry` on every GET.
    pub fn bind(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("vod-metrics-http".to_owned())
            .spawn(move || serve(&listener, &registry, &thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful when binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection to ourselves.
        drop(TcpStream::connect(self.addr));
        if let Some(handle) = self.handle.take() {
            drop(handle.join());
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve(listener: &TcpListener, registry: &Arc<MetricsRegistry>, stop: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // A misbehaving client must not wedge the endpoint.
        drop(stream.set_read_timeout(Some(Duration::from_secs(2))));
        drop(stream.set_write_timeout(Some(Duration::from_secs(2))));
        handle_connection(stream, registry);
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Arc<MetricsRegistry>) {
    let mut buf = [0u8; 1024];
    let mut filled = 0usize;
    // Read until the end of the request head (or buffer full / EOF);
    // the request body, if any, is ignored.
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let request_line = head.lines().next().unwrap_or("");
    let response = match parse_get_path(request_line) {
        // `/` kept as an alias for `/metrics` (curl convenience and
        // backwards compatibility with the route-free server).
        Some("/metrics" | "/") => {
            let body = prom::render(&registry.snapshot());
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        }
        // Liveness probe: cheap (no registry snapshot), fixed body.
        Some("/healthz") => {
            let body = "ok\n";
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        }
        Some(_) => {
            let body = "not found\n";
            format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        }
        None => {
            let body = "method not allowed\n";
            format!(
                "HTTP/1.1 405 Method Not Allowed\r\nAllow: GET\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        }
    };
    drop(stream.write_all(response.as_bytes()));
    drop(stream.flush());
}

/// Extracts the request path from a `GET <path> HTTP/x.y` request line,
/// query string stripped; `None` for any other method or a malformed
/// line.
fn parse_get_path(request_line: &str) -> Option<&str> {
    let rest = request_line.strip_prefix("GET ")?;
    let path = rest.split_whitespace().next()?;
    Some(path.split('?').next().unwrap_or(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_text_on_get() {
        let reg = Arc::new(MetricsRegistry::new());
        Metrics::new(Arc::clone(&reg))
            .counter("vod_cycles_total")
            .add(3);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = server.local_addr();
        let body = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(body.starts_with("HTTP/1.1 200 OK"), "got: {body}");
        assert!(body.contains("vod_cycles_total 3"));
        // Live values: the next scrape sees the updated counter.
        Metrics::new(Arc::clone(&reg))
            .counter("vod_cycles_total")
            .inc();
        let body = scrape(addr, "GET / HTTP/1.0\r\n\r\n");
        assert!(body.contains("vod_cycles_total 4"));
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_methods() {
        let reg = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::bind("127.0.0.1:0", reg).unwrap();
        let body = scrape(
            server.local_addr(),
            "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(body.starts_with("HTTP/1.1 405"), "got: {body}");
    }

    #[test]
    fn parses_get_paths() {
        assert_eq!(parse_get_path("GET /metrics HTTP/1.1"), Some("/metrics"));
        assert_eq!(parse_get_path("GET /healthz HTTP/1.0"), Some("/healthz"));
        assert_eq!(
            parse_get_path("GET /metrics?x=1 HTTP/1.1"),
            Some("/metrics")
        );
        assert_eq!(parse_get_path("POST /metrics HTTP/1.1"), None);
        assert_eq!(parse_get_path(""), None);
    }

    /// `/healthz` answers even while the registry is busy, unknown
    /// paths 404, and the server keeps serving connections afterwards
    /// (one bad request must not wedge the accept loop).
    #[test]
    fn healthz_and_unknown_path_handling() {
        let reg = Arc::new(MetricsRegistry::new());
        Metrics::new(Arc::clone(&reg))
            .counter("vod_cycles_total")
            .inc();
        let server = MetricsServer::bind("127.0.0.1:0", reg).unwrap();
        let addr = server.local_addr();

        let health = scrape(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "got: {health}");
        assert!(health.ends_with("ok\n"), "got: {health}");
        assert!(
            !health.contains("vod_cycles_total"),
            "healthz must not render metrics: {health}"
        );

        let missing = scrape(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");

        // The endpoint still serves metrics after the 404.
        let body = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(body.contains("vod_cycles_total 1"), "got: {body}");
        server.shutdown();
    }
}
