//! Minimal hand-rolled JSON emission (no external dependencies).
//!
//! Only what the observability layer needs: objects and arrays built
//! field-by-field, with correct string escaping and `null` for
//! non-finite floats. Output is compact (no whitespace), one value per
//! call to [`Object::finish`] / [`Array::finish`].

use core::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number, or `null` when non-finite.
#[must_use]
pub fn number(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // which is always a valid JSON number for finite values.
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

/// An incremental JSON object builder.
#[derive(Debug, Default)]
pub struct Object {
    buf: String,
}

impl Object {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Object { buf: String::new() }
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
    }

    /// Adds a numeric field (`null` when non-finite).
    pub fn num(&mut self, name: &str, value: f64) {
        self.key(name);
        self.buf.push_str(&number(value));
    }

    /// Adds an unsigned-integer field.
    pub fn uint(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds a `null` field.
    pub fn null(&mut self, name: &str) {
        self.key(name);
        self.buf.push_str("null");
    }

    /// Adds a field whose value is pre-rendered JSON (object, array, …).
    pub fn raw(&mut self, name: &str, rendered: &str) {
        self.key(name);
        self.buf.push_str(rendered);
    }

    /// Renders the object.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// An incremental JSON array builder.
#[derive(Debug, Default)]
pub struct Array {
    buf: String,
}

impl Array {
    /// Starts an empty array.
    #[must_use]
    pub fn new() -> Self {
        Array { buf: String::new() }
    }

    /// Appends a pre-rendered JSON value.
    pub fn raw(&mut self, rendered: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(rendered);
    }

    /// Appends a numeric element (`null` when non-finite).
    pub fn num(&mut self, value: f64) {
        self.raw(&number(value));
    }

    /// Renders the array.
    #[must_use]
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = Array::new();
        inner.num(1.0);
        inner.num(2.5);
        let mut o = Object::new();
        o.str("name", "x");
        o.uint("count", 3);
        o.bool("ok", true);
        o.null("missing");
        o.raw("values", &inner.finish());
        assert_eq!(
            o.finish(),
            "{\"name\":\"x\",\"count\":3,\"ok\":true,\"missing\":null,\"values\":[1.0,2.5]}"
        );
    }
}
