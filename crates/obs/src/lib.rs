//! Structured observability for the VOD engine.
//!
//! The simulators and the admission controller emit typed [`Event`]s
//! describing the engine lifecycle — cycles planned, streams serviced,
//! requests admitted/deferred/rejected, buffers allocated/resized/freed,
//! estimator clamps, underflows, and pool-occupancy high-water marks —
//! into a [`Sink`]. Three sinks ship with the crate:
//!
//! * [`NullSink`] — records nothing; with no sink attached the
//!   [`Obs`] handle's `enabled()` fast path makes instrumentation
//!   near-free (a single `Option` check, no event construction).
//! * [`StderrSink`] — human-readable lines on stderr, filtered by an
//!   [`EventMask`]. [`StderrSink::from_env`] honours the historical
//!   `VOD_DEBUG_CYCLE`, `VOD_DEBUG_SVC`, and `VOD_DEBUG_UNDERFLOW`
//!   environment variables as kind filters.
//! * [`RecorderSink`] — an in-memory recorder with bounded event
//!   capacity, per-kind counters, fixed-bucket histograms (service
//!   latency, cycle slack, pool occupancy), and JSONL export.
//!
//! # Determinism
//!
//! Events carry only simulated time ([`vod_types::Instant`]) and values
//! the engine already computed; emission never feeds back into the
//! simulation. A run with any sink attached is bit-identical to a run
//! with none — `vod-sim` asserts this in its test suite.
//!
//! # No external dependencies
//!
//! JSON is hand-rolled ([`json`]); the recorder uses `std::sync::Mutex`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod recorder;
pub mod sink;

pub use event::{Event, EventKind, RejectReason};
pub use recorder::{
    Histogram, HistogramSnapshot, RecorderSink, RecorderSnapshot, HIST_CYCLE_SLACK,
    HIST_POOL_OCCUPANCY, HIST_SERVICE_LATENCY,
};
pub use sink::{EventMask, NullSink, Obs, Sink, StderrSink};
