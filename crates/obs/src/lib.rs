//! Structured observability for the VOD engine.
//!
//! The simulators and the admission controller emit typed [`Event`]s
//! describing the engine lifecycle — cycles planned, streams serviced,
//! requests admitted/deferred/rejected, buffers allocated/resized/freed,
//! estimator clamps, underflows, and pool-occupancy high-water marks —
//! into a [`Sink`]. Three sinks ship with the crate:
//!
//! * [`NullSink`] — records nothing; with no sink attached the
//!   [`Obs`] handle's `enabled()` fast path makes instrumentation
//!   near-free (a single `Option` check, no event construction).
//! * [`StderrSink`] — human-readable lines on stderr, filtered by an
//!   [`EventMask`]. [`StderrSink::from_env`] honours the historical
//!   `VOD_DEBUG_CYCLE`, `VOD_DEBUG_SVC`, and `VOD_DEBUG_UNDERFLOW`
//!   environment variables as kind filters.
//! * [`RecorderSink`] — an in-memory recorder with bounded event
//!   capacity, per-kind counters, fixed-bucket histograms (service
//!   latency, cycle slack, pool occupancy), and JSONL export.
//!
//! A fourth sink, the [`FlightRecorder`], keeps only a bounded ring of
//! the most recent records and dumps them as JSONL when an anomaly
//! fires (underflow, overflow rejection, cluster queue park, or a
//! manual trigger such as a baseline-gate failure). [`sink::TeeSink`]
//! fans one event stream out to two sinks, so the flight recorder can
//! ride alongside a full recorder.
//!
//! # Spans
//!
//! [`span`] layers request-lifecycle tracing over the same event
//! stream: deterministic [`TraceId`]/[`SpanId`]s derived from seed +
//! arrival index (never a clock), emitted as `SpanStart` /
//! `SpanAnnotate` / `SpanEnd` [`Event`] variants so every sink sees
//! them unchanged.
//!
//! # Determinism
//!
//! Events carry only simulated time ([`vod_types::Instant`]) and values
//! the engine already computed; emission never feeds back into the
//! simulation. A run with any sink attached is bit-identical to a run
//! with none — `vod-sim` asserts this in its test suite.
//!
//! # Aggregate metrics and profiling
//!
//! Orthogonal to the event stream, [`metrics`] provides a lock-free
//! [`MetricsRegistry`] of atomic counters, gauges, and log-bucketed
//! histograms that never drops and never allocates on the hot path;
//! [`profile::Timed`] is the RAII phase timer feeding it. [`prom`]
//! renders a registry snapshot in the Prometheus text format and
//! [`http::MetricsServer`] serves it over a one-thread GET-only
//! scrape endpoint. An [`Obs`] handle can carry a [`Metrics`] handle
//! alongside its sink ([`Obs::with_metrics`]), so one handle threads
//! both through the engine.
//!
//! # No external dependencies
//!
//! JSON is hand-rolled ([`json`]); the recorder uses `std::sync::Mutex`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod recorder;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use event::{Event, EventKind, RejectReason};
pub use flight::FlightRecorder;
pub use http::MetricsServer;
pub use metrics::{
    Counter, Gauge, Histo, HistoSnapshot, LogHistogram, Metrics, MetricsRegistry, MetricsSnapshot,
};
pub use profile::Timed;
pub use recorder::{
    Histogram, HistogramSnapshot, RecorderSink, RecorderSnapshot, HIST_CYCLE_SLACK,
    HIST_POOL_OCCUPANCY, HIST_SERVICE_LATENCY,
};
pub use sink::{EventMask, NullSink, Obs, Sink, StderrSink, TeeSink};
pub use span::{AnnoValue, Span, SpanId, SpanKind, SpanStatus, TraceId};
pub use timeseries::{Point, Series, SeriesRecorder, TimeSeries};
