//! Lock-free aggregate metrics: counters, gauges, and log-bucketed
//! histograms.
//!
//! The [`MetricsRegistry`] complements the event stream in
//! [`crate::sink`]: where `RecorderSink` keeps a *bounded* buffer of
//! typed events (and drops under pressure), the registry keeps *O(1)*
//! aggregates that never drop and never allocate on the hot path. All
//! hot-path updates are relaxed atomic operations on `AtomicU64`
//! (floats are bit-cast with `f64::to_bits`), so a single registry is
//! safe to share across the per-seed and per-disk threads of the
//! multi-seed runner.
//!
//! Instrument code through the detachable handles:
//!
//! - [`Counter`] — monotonically increasing `u64`;
//! - [`Gauge`] — last-written (or running-max) `f64`;
//! - [`Histo`] — base-2 log-bucketed `f64` distribution.
//!
//! A handle obtained from a detached [`Metrics`] is a no-op whose
//! update methods compile down to a branch on `None` — instrumented
//! code pays nothing when metrics are off. Registration (name lookup)
//! takes a mutex, so resolve handles once, outside loops.
//!
//! Like the event sinks, the registry must never perturb a run:
//! metric values are derived from already-computed state and host
//! wall-clock only; simulation control flow never reads them back.

use core::fmt;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;
use crate::profile::Timed;

/// Phase histogram: `BS_k(n)` size-table precompute (seconds).
pub const PHASE_TABLE_BUILD: &str = "vod_phase_table_build_seconds";
/// Phase histogram: per-cycle scheduling (order rebuild + cycle plan).
pub const PHASE_CYCLE_PLAN: &str = "vod_phase_cycle_plan_seconds";
/// Phase histogram: one stream service (buffer refill) in the engine.
pub const PHASE_SERVICE: &str = "vod_phase_service_seconds";
/// Phase histogram: one admission-control pass over the pending queue.
pub const PHASE_ADMISSION: &str = "vod_phase_admission_seconds";
/// Phase histogram: synthetic workload generation (per seed).
pub const PHASE_WORKLOAD_GEN: &str = "vod_phase_workload_gen_seconds";

/// Counter: service cycles completed.
pub const CTR_CYCLES: &str = "vod_cycles_total";
/// Counter: stream services (disk reads) performed.
pub const CTR_SERVICES: &str = "vod_services_total";
/// Counter: requests admitted into service.
pub const CTR_ADMITTED: &str = "vod_requests_admitted_total";
/// Counter: admission attempts deferred by the inertia assumptions.
pub const CTR_DEFERRED: &str = "vod_requests_deferred_total";
/// Counter: requests rejected.
pub const CTR_REJECTED: &str = "vod_requests_rejected_total";
/// Counter: buffer underflow events.
pub const CTR_UNDERFLOWS: &str = "vod_underflows_total";
/// Counter: buffer-pool fill operations.
pub const CTR_POOL_FILLS: &str = "vod_pool_fills_total";
/// Counter: non-span events dropped by a bounded recorder.
pub const CTR_EVENTS_DROPPED: &str = "vod_events_dropped_total";
/// Counter: span records dropped by a bounded recorder.
pub const CTR_SPANS_DROPPED: &str = "vod_spans_dropped_total";
/// Counter: Assumption-1 audit windows whose estimated service count
/// fell short of the actual count (see `vod-sim`'s `audit` module).
pub const CTR_AUDIT_VIOLATIONS: &str = "vod_audit_violations_total";

/// Gauge: current buffer-pool occupancy in bits.
pub const GAUGE_POOL_USED: &str = "vod_pool_used_bits";
/// Gauge: peak buffer-pool occupancy in bits.
pub const GAUGE_POOL_PEAK: &str = "vod_pool_peak_bits";
/// Gauge: entries in the most recently built `BS_k(n)` size table.
pub const GAUGE_TABLE_ENTRIES: &str = "vod_size_table_entries";

/// Counter: arrivals dispatched by the cluster front end.
pub const CTR_CLUSTER_DISPATCHED: &str = "vod_cluster_dispatched_total";
/// Counter: arrivals redirected off their primary replica (overflow).
pub const CTR_CLUSTER_REDIRECTED: &str = "vod_cluster_redirected_total";
/// Counter: arrivals parked in the cluster-wide overflow queue.
pub const CTR_CLUSTER_QUEUED: &str = "vod_cluster_queued_total";
/// Gauge: nodes composing the cluster.
pub const GAUGE_CLUSTER_NODES: &str = "vod_cluster_nodes";
/// Gauge: cluster load-imbalance ratio (max node admissions / mean).
pub const GAUGE_CLUSTER_IMBALANCE: &str = "vod_cluster_imbalance_ratio";
/// Gauge: aggregate peak buffer memory across nodes, in bits.
pub const GAUGE_CLUSTER_MEM_PEAK: &str = "vod_cluster_mem_peak_bits";

/// Counter: chaos faults injected into cluster nodes.
pub const CTR_FAULTS_INJECTED: &str = "vod_faults_injected_total";
/// Counter: streams migrated to a sibling replica after a node crash.
pub const CTR_FAILOVERS: &str = "vod_failovers_total";
/// Counter: streams dropped because no replica could take them.
pub const CTR_STREAMS_DROPPED: &str = "vod_streams_dropped_total";
/// Counter: node recoveries (rejoins) completed.
pub const CTR_RECOVERIES: &str = "vod_recoveries_total";
/// Counter: domain-level fault events (rack/zone) expanded into
/// per-node faults.
pub const CTR_DOMAIN_FAULTS: &str = "vod_domain_faults_total";
/// Counter: movies re-replicated onto surviving nodes after a node
/// stayed down past the re-replication horizon.
pub const CTR_REREPLICATIONS: &str = "vod_rereplications_total";
/// Counter: partial disk faults (per-disk degradations and error-rate
/// throttles) applied to cluster nodes.
pub const CTR_DISK_DEGRADATIONS: &str = "vod_disk_degradations_total";

/// Per-node metric name: `vod_cluster_node<i>_<suffix>`. The node index
/// is embedded in the name (not a label) so the registry's flat
/// `BTreeMap` namespace and the Prometheus renderer need no label
/// machinery; suffixes mirror the cluster counter families, e.g.
/// `per_node(3, "deferred_total")` → `vod_cluster_node3_deferred_total`.
#[must_use]
pub fn per_node(node: usize, suffix: &str) -> String {
    format!("vod_cluster_node{node}_{suffix}")
}

/// Exponent of the smallest finite histogram bound (`2^-20` ≈ 1 µs).
const LOG_MIN_EXP: i32 = -20;
/// Number of buckets: 33 finite power-of-two bounds (`2^-20 ..= 2^12`,
/// i.e. ~1 µs up to 4096 s) plus one `+Inf` overflow bucket.
const BUCKETS: usize = 34;

/// Upper bound of bucket `i` (`f64::INFINITY` for the last bucket).
fn bucket_bound(i: usize) -> f64 {
    if i + 1 >= BUCKETS {
        f64::INFINITY
    } else {
        let exp = LOG_MIN_EXP + i as i32;
        (f64::from(exp)).exp2()
    }
}

/// Index of the first bucket whose upper bound is `>= x`.
///
/// Values below the smallest bound (including zero and negatives)
/// land in bucket 0; values above the largest finite bound land in
/// the `+Inf` bucket. Callers must filter non-finite input.
fn bucket_index(x: f64) -> usize {
    let min_bound = bucket_bound(0);
    if x <= min_bound {
        return 0;
    }
    let bits = x.to_bits();
    // x > 2^LOG_MIN_EXP here, so it is normal and positive: the raw
    // exponent field gives floor(log2 x) directly.
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let exact_power = bits & ((1u64 << 52) - 1) == 0;
    let idx = exp - LOG_MIN_EXP + i32::from(!exact_power);
    usize::try_from(idx.max(0)).unwrap_or(0).min(BUCKETS - 1)
}

/// Atomically `fetch_update`s an `AtomicU64` holding `f64` bits.
fn update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A base-2 log-bucketed histogram with atomic counts.
///
/// Buckets span `2^-20 ..= 2^12` seconds (about 1 µs to ~68 min) plus
/// an overflow bucket — wide enough for any phase this repo times.
/// `sum`/`min`/`max` are tracked exactly (as bit-cast `f64`s), so
/// `max` in snapshots is precise even though quantiles are
/// bucket-resolution approximations.
pub struct LogHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.counts[bucket_index(x)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&self.sum_bits, |s| s + x);
        update_f64(&self.min_bits, |m| m.min(x));
        update_f64(&self.max_bits, |m| m.max(x));
    }

    /// Snapshots the current state.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistoSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistoSnapshot {
            name: name.to_owned(),
            bounds: (0..BUCKETS).map(bucket_bound).collect(),
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one [`LogHistogram`].
#[derive(Clone, Debug)]
pub struct HistoSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Upper bucket bounds (ascending; last is `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (same length as `bounds`).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+Inf` when empty).
    pub min: f64,
    /// Largest observation (`-Inf` when empty).
    pub max: f64,
}

impl HistoSnapshot {
    /// Nearest-rank quantile (`0.0 ..= 1.0`), approximated at bucket
    /// resolution and clamped to the exact `[min, max]` extrema.
    /// `None` when the histogram is empty or `q` is out of range.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let est = self.bounds[i];
                return Some(est.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Renders this histogram as a JSON object string with `count`,
    /// `sum`, exact `min`/`max`, bucket-resolution `p50`/`p95`
    /// (`null` when empty), and the raw `bounds`/`counts` arrays.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut bounds = json::Array::new();
        for &b in &self.bounds {
            bounds.num(b);
        }
        let mut counts = json::Array::new();
        for &c in &self.counts {
            counts.raw(&c.to_string());
        }
        let mut obj = json::Object::new();
        obj.uint("count", self.count);
        obj.num("sum", self.sum);
        if self.count == 0 {
            obj.null("min");
            obj.null("max");
            obj.null("p50");
            obj.null("p95");
        } else {
            obj.num("min", self.min);
            obj.num("max", self.max);
            obj.num("p50", self.quantile(0.5).unwrap_or(self.max));
            obj.num("p95", self.quantile(0.95).unwrap_or(self.max));
        }
        obj.raw("bounds", &bounds.finish());
        obj.raw("counts", &counts.finish());
        obj.finish()
    }
}

/// Shared registry of named counters, gauges, and histograms.
///
/// Registration (`counter`/`gauge`/`histogram` on [`Metrics`]) takes
/// a mutex and may allocate; the returned handles then update with
/// relaxed atomics only. `BTreeMap` keeps snapshot/exposition order
/// deterministic.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits()))),
        )
    }

    fn histogram_cell(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(LogHistogram::new())),
        )
    }

    /// Snapshots every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Detachable handle to an optional [`MetricsRegistry`].
///
/// Mirrors [`crate::Obs`]: a detached handle (`Metrics::null()`)
/// hands out no-op [`Counter`]/[`Gauge`]/[`Histo`] handles, so
/// instrumented code needs no branching of its own.
#[derive(Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<MetricsRegistry>>,
}

impl Metrics {
    /// A detached handle; every metric it hands out is a no-op.
    #[must_use]
    pub fn null() -> Self {
        Self { registry: None }
    }

    /// A handle attached to `registry`.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Some(registry),
        }
    }

    /// Whether a registry is attached.
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.registry.is_some()
    }

    /// The attached registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// Resolves (registering on first use) the counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.registry.as_ref().map(|r| r.counter_cell(name)),
        }
    }

    /// Resolves (registering on first use) the gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.registry.as_ref().map(|r| r.gauge_cell(name)),
        }
    }

    /// Resolves (registering on first use) the histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histo {
        Histo {
            hist: self.registry.as_ref().map(|r| r.histogram_cell(name)),
        }
    }
}

/// Handle to a monotonically increasing counter (no-op when detached).
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when detached).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to an `f64` gauge (no-op when detached).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` is larger (running maximum).
    pub fn set_max(&self, v: f64) {
        if let Some(cell) = &self.cell {
            update_f64(cell, |cur| cur.max(v));
        }
    }

    /// Current value (0.0 when detached).
    #[must_use]
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Handle to a [`LogHistogram`] (no-op when detached).
#[derive(Clone, Default)]
pub struct Histo {
    hist: Option<Arc<LogHistogram>>,
}

impl Histo {
    /// Whether this handle reaches a real histogram.
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.hist.is_some()
    }

    /// Records one observation (non-finite ignored; no-op when
    /// detached).
    pub fn record(&self, x: f64) {
        if let Some(hist) = &self.hist {
            hist.record(x);
        }
    }

    /// Starts a scoped timer that records elapsed seconds here on
    /// drop. Detached handles skip the clock read entirely.
    pub fn start_timer(&self) -> Timed {
        Timed::start(self)
    }
}

/// The handles hold atomics, so derived `Debug` is unavailable;
/// report attachment (and the live value where cheap) instead.
macro_rules! debug_as_attached {
    ($ty:ident) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct(stringify!($ty))
                    .field("attached", &self.is_attached())
                    .finish()
            }
        }
    };
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("attached", &self.is_attached())
            .finish()
    }
}

impl Counter {
    fn is_attached(&self) -> bool {
        self.cell.is_some()
    }
}

impl Gauge {
    fn is_attached(&self) -> bool {
        self.cell.is_some()
    }
}

debug_as_attached!(Counter);
debug_as_attached!(Gauge);
debug_as_attached!(Histo);

/// Point-in-time copy of every metric in a registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-ordered.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram, name-ordered.
    pub histograms: Vec<HistoSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Snapshot of histogram `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistoSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON object string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = json::Object::new();
        for (name, v) in &self.counters {
            counters.uint(name, *v);
        }
        let mut gauges = json::Object::new();
        for (name, v) in &self.gauges {
            gauges.num(name, *v);
        }
        let mut hists = json::Object::new();
        for h in &self.histograms {
            hists.raw(&h.name, &h.to_json());
        }
        let mut out = json::Object::new();
        out.raw("counters", &counters.finish());
        out.raw("gauges", &gauges.finish());
        out.raw("histograms", &hists.finish());
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_ascending_powers_of_two() {
        for i in 0..BUCKETS - 1 {
            assert!(bucket_bound(i) < bucket_bound(i + 1));
        }
        assert_eq!(bucket_bound(0), (-20.0f64).exp2());
        assert!(bucket_bound(BUCKETS - 1).is_infinite());
    }

    #[test]
    fn bucket_index_respects_le_semantics() {
        // A value equal to a bound lands in that bound's bucket.
        assert_eq!(bucket_index(bucket_bound(0)), 0);
        assert_eq!(bucket_index(bucket_bound(5)), 5);
        // Just above a bound goes to the next bucket.
        assert_eq!(bucket_index(bucket_bound(5) * 1.0001), 6);
        // Below range (including zero and negatives) clamps to 0.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(1e-12), 0);
        // Above the largest finite bound goes to the +Inf bucket.
        assert_eq!(bucket_index(1e30), BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_sum_min_max_exactly() {
        let h = LogHistogram::new();
        for &x in &[0.25, 1.0, 4.0] {
            h.record(x);
        }
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 5.25);
        assert_eq!(snap.min, 0.25);
        assert_eq!(snap.max, 4.0);
        assert_eq!(snap.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn quantiles_clamp_to_exact_extrema() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(0.001);
        }
        h.record(3.0);
        let snap = h.snapshot("t");
        let p50 = snap.quantile(0.5).unwrap();
        assert!(p50 >= snap.min && p50 <= snap.max);
        // p100 must be the exact max, not a bucket bound.
        assert_eq!(snap.quantile(1.0), Some(3.0));
        assert_eq!(snap.quantile(1.5), None);
        assert_eq!(LogHistogram::new().snapshot("e").quantile(0.5), None);
    }

    #[test]
    fn detached_handles_are_no_ops() {
        let m = Metrics::null();
        assert!(!m.is_attached());
        let c = m.counter(CTR_CYCLES);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = m.gauge(GAUGE_POOL_USED);
        g.set(5.0);
        assert_eq!(g.get(), 0.0);
        let h = m.histogram(PHASE_SERVICE);
        h.record(1.0);
        assert!(!h.is_attached());
    }

    #[test]
    fn registry_shares_cells_by_name() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = Metrics::new(Arc::clone(&reg));
        m.counter("a_total").add(2);
        m.counter("a_total").inc();
        m.gauge("g").set(1.5);
        m.gauge("g").set_max(1.0); // lower: keeps 1.5
        m.gauge("g").set_max(2.5);
        m.histogram("h_seconds").record(0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a_total"), Some(3));
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.histogram("h_seconds").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn registry_is_safe_to_share_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Metrics::new(Arc::clone(&reg));
                scope.spawn(move || {
                    let c = m.counter("shared_total");
                    let h = m.histogram("shared_seconds");
                    for i in 0..1000 {
                        c.inc();
                        h.record(f64::from(i) * 1e-4);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("shared_total"), Some(4000));
        let h = snap.histogram("shared_seconds").unwrap();
        assert_eq!(h.count, 4000);
        assert_eq!(h.counts.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn snapshot_json_is_shaped_as_expected() {
        let reg = MetricsRegistry::new();
        let m = Metrics::new(Arc::new(MetricsRegistry::new()));
        drop(m);
        let m = Metrics {
            registry: Some(Arc::new(reg)),
        };
        m.counter("c_total").inc();
        m.histogram("h_seconds").record(0.25);
        let json = m.registry().unwrap().snapshot().to_json();
        assert!(json.contains("\"c_total\":1"));
        assert!(json.contains("\"h_seconds\""));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"max\":0.25"));
    }
}
