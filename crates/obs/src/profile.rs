//! Scoped phase profiler: RAII timers feeding [`crate::metrics`]
//! histograms.
//!
//! ```
//! use vod_obs::metrics::{Metrics, MetricsRegistry, PHASE_SERVICE};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(MetricsRegistry::new());
//! let metrics = Metrics::new(Arc::clone(&reg));
//! let phase = metrics.histogram(PHASE_SERVICE);
//! {
//!     let _t = phase.start_timer(); // records elapsed seconds on drop
//!     // ... hot work ...
//! }
//! assert_eq!(reg.snapshot().histogram(PHASE_SERVICE).unwrap().count, 1);
//! ```
//!
//! Timers started from a detached [`crate::metrics::Histo`] never
//! read the clock, so always-on instrumentation costs one branch when
//! metrics are disabled. Timings are host wall-clock and feed *only*
//! the registry — never simulation state — preserving the determinism
//! contract of `vod-obs`.

use std::time::Instant;

use crate::metrics::Histo;

/// RAII guard that records elapsed wall-clock seconds into a
/// histogram when dropped.
///
/// The guard owns a clone of the handle (an `Arc` bump), so it does
/// not borrow the [`crate::metrics::Metrics`] it came from — timed
/// scopes can freely call `&mut self` methods.
#[must_use = "a Timed guard records on drop; binding it to _ discards the timing immediately"]
pub struct Timed {
    hist: Histo,
    start: Option<Instant>,
}

impl Timed {
    /// Starts timing into `hist`. Detached histograms produce an
    /// inert guard without reading the clock.
    pub fn start(hist: &Histo) -> Self {
        if hist.is_attached() {
            Self {
                hist: hist.clone(),
                start: Some(Instant::now()),
            }
        } else {
            Self {
                hist: Histo::default(),
                start: None,
            }
        }
    }

    /// Stops the timer now (equivalent to dropping the guard).
    pub fn stop(self) {}
}

impl Drop for Timed {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, MetricsRegistry};
    use std::sync::Arc;

    #[test]
    fn timed_records_one_sample_per_scope() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = Metrics::new(Arc::clone(&reg));
        let h = m.histogram("phase_seconds");
        {
            let _t = h.start_timer();
        }
        {
            let t = h.start_timer();
            t.stop();
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("phase_seconds").unwrap();
        assert_eq!(hist.count, 2);
        assert!(hist.min >= 0.0);
    }

    #[test]
    fn detached_timer_is_inert() {
        let h = Metrics::null().histogram("phase_seconds");
        let t = Timed::start(&h);
        assert!(t.start.is_none());
        drop(t);
    }
}
