//! Prometheus text-format (version 0.0.4) exposition for
//! [`crate::metrics::MetricsSnapshot`].
//!
//! Hand-rolled like [`crate::json`] — the renderer emits `# TYPE`
//! comment lines, plain samples for counters and gauges, and
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for
//! histograms, which is everything a scraper needs. Metric names are
//! sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset Prometheus
//! requires.

use crate::metrics::{HistoSnapshot, MetricsSnapshot};

/// Rewrites `name` into a valid Prometheus metric name.
///
/// Invalid characters become `_`; a leading digit gets a `_` prefix;
/// an empty name becomes `_`.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let valid = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            // A digit may not lead a name; keep it after a `_` prefix.
            out.push('_');
        }
        out.push(if valid { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a sample value the way Prometheus expects.
fn value(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_owned()
    } else if x == f64::INFINITY {
        "+Inf".to_owned()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{x:?}")
    }
}

fn render_histogram(out: &mut String, h: &HistoSnapshot) {
    let name = sanitize_name(&h.name);
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds.iter().zip(&h.counts) {
        cumulative += count;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            value(*bound)
        ));
    }
    out.push_str(&format!("{name}_sum {}\n", value(h.sum)));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters are assumed to already carry a `_total`-style name;
/// gauges are emitted as-is.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", value(*v)));
    }
    for h in &snapshot.histograms {
        render_histogram(&mut out, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, MetricsRegistry};
    use std::sync::Arc;

    fn snapshot_with_data() -> MetricsSnapshot {
        let reg = Arc::new(MetricsRegistry::new());
        let m = Metrics::new(Arc::clone(&reg));
        m.counter("vod_cycles_total").add(7);
        m.gauge("vod_pool_used_bits").set(1.5e6);
        let h = m.histogram("vod_phase_service_seconds");
        h.record(0.001);
        h.record(0.002);
        reg.snapshot()
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name("bad name-1"), "bad_name_1");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn renders_all_metric_kinds() {
        let text = render(&snapshot_with_data());
        assert!(text.contains("# TYPE vod_cycles_total counter\nvod_cycles_total 7\n"));
        assert!(text.contains("# TYPE vod_pool_used_bits gauge\nvod_pool_used_bits 1500000.0\n"));
        assert!(text.contains("# TYPE vod_phase_service_seconds histogram\n"));
        assert!(text.contains("vod_phase_service_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("vod_phase_service_seconds_count 2\n"));
        assert!(text.contains("vod_phase_service_seconds_sum 0.003"));
    }

    /// The recorder drop counters must surface as first-class counter
    /// series (not just summary-JSON fields), so dashboards can alert
    /// on capture loss directly.
    #[test]
    fn renders_drop_counters_as_first_class_series() {
        use crate::metrics::{CTR_EVENTS_DROPPED, CTR_SPANS_DROPPED};
        let reg = Arc::new(MetricsRegistry::new());
        let m = Metrics::new(Arc::clone(&reg));
        m.counter(CTR_EVENTS_DROPPED).add(3);
        m.counter(CTR_SPANS_DROPPED).add(5);
        let text = render(&reg.snapshot());
        assert!(
            text.contains("# TYPE vod_events_dropped_total counter\nvod_events_dropped_total 3\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE vod_spans_dropped_total counter\nvod_spans_dropped_total 5\n"),
            "{text}"
        );
    }

    /// Every scrape line must be `# ...`, blank, or
    /// `name[{labels}] value` with a parseable value — the shape a
    /// Prometheus scraper accepts.
    #[test]
    fn output_is_scrape_parseable() {
        let text = render(&snapshot_with_data());
        assert!(!text.is_empty());
        let mut cumulative_ok = true;
        let mut last_bucket = 0u64;
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name_part, value_part) = line.rsplit_once(' ').expect("sample line has a value");
            let bare = name_part.split('{').next().unwrap();
            assert!(
                bare.chars().enumerate().all(|(i, c)| {
                    c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
                }),
                "invalid metric name in line: {line}"
            );
            let parsed = match value_part {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                other => other.parse::<f64>().expect("numeric sample value"),
            };
            if name_part.contains("_bucket{") {
                let c = parsed as u64;
                cumulative_ok &= c >= last_bucket || name_part.contains("le=\"+Inf\"");
                last_bucket = c;
            }
            if let Some(rest) = name_part.strip_prefix(bare) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'));
                }
            }
        }
        assert!(cumulative_ok, "bucket counts must be cumulative");
    }
}
