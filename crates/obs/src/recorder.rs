//! The in-memory [`RecorderSink`]: bounded event capture, per-kind
//! counters, and fixed-bucket histograms, with JSON/JSONL export.

use std::sync::Mutex;

use crate::event::{Event, EventKind};
use crate::json;
use crate::sink::Sink;

/// A fixed-bucket histogram.
///
/// `bounds` are inclusive upper bucket edges in ascending order; a value
/// `x` lands in the first bucket with `x <= bound`, and values above the
/// last bound land in a final overflow bucket, so `counts.len() ==
/// bounds.len() + 1`. Exact min/max/sum are tracked alongside.
#[derive(Clone, Debug)]
pub struct Histogram {
    name: &'static str,
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A new histogram named `name` with the given ascending bucket edges.
    #[must_use]
    pub fn new(name: &'static str, bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            name,
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// An immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name,
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
        }
    }
}

/// An immutable view of a [`Histogram`] at snapshot time.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// The histogram's name (e.g. `service_latency_s`).
    pub name: &'static str,
    /// Inclusive upper bucket edges, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation, `None` when empty.
    pub min: Option<f64>,
    /// Largest observation, `None` when empty.
    pub max: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean of the observations, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut bounds = json::Array::new();
        for &b in &self.bounds {
            bounds.num(b);
        }
        let mut counts = json::Array::new();
        for &c in &self.counts {
            counts.raw(&c.to_string());
        }
        let mut o = json::Object::new();
        o.uint("count", self.count);
        o.num("sum", self.sum);
        match self.min {
            Some(v) => o.num("min", v),
            None => o.null("min"),
        }
        match self.max {
            Some(v) => o.num("max", v),
            None => o.null("max"),
        }
        match self.mean() {
            Some(v) => o.num("mean", v),
            None => o.null("mean"),
        }
        o.raw("bounds", &bounds.finish());
        o.raw("counts", &counts.finish());
        o.finish()
    }
}

/// Name of the recorder's service-latency histogram (seconds).
pub const HIST_SERVICE_LATENCY: &str = "service_latency_s";
/// Name of the recorder's cycle-slack histogram (seconds).
pub const HIST_CYCLE_SLACK: &str = "cycle_slack_s";
/// Name of the recorder's pool-occupancy histogram (MiB).
pub const HIST_POOL_OCCUPANCY: &str = "pool_occupancy_mib";

struct RecorderState {
    counters: [u64; EventKind::COUNT],
    events: Vec<Event>,
    events_dropped: u64,
    spans_dropped: u64,
    service_latency: Histogram,
    cycle_slack: Histogram,
    pool_occupancy: Histogram,
}

/// An in-memory sink: counts every event, histograms the interesting
/// distributions, and keeps up to `capacity` raw events for JSONL export
/// (overflow is counted, not silently discarded).
///
/// Thread-safe via an internal `std::sync::Mutex` — safe to share across
/// the multi-seed runner's worker threads.
pub struct RecorderSink {
    state: Mutex<RecorderState>,
    capacity: usize,
    enabled: [bool; EventKind::COUNT],
}

/// Default bounded event capacity (events beyond this are counted as
/// dropped but still feed counters and histograms).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

impl RecorderSink {
    /// A recorder holding up to [`DEFAULT_CAPACITY`] raw events.
    #[must_use]
    pub fn new() -> Self {
        RecorderSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding up to `capacity` raw events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RecorderSink {
            state: Mutex::new(RecorderState {
                counters: [0; EventKind::COUNT],
                events: Vec::with_capacity(capacity.min(4096)),
                events_dropped: 0,
                spans_dropped: 0,
                service_latency: Histogram::new(
                    HIST_SERVICE_LATENCY,
                    &[
                        0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
                    ],
                ),
                cycle_slack: Histogram::new(
                    HIST_CYCLE_SLACK,
                    &[0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
                ),
                pool_occupancy: Histogram::new(
                    HIST_POOL_OCCUPANCY,
                    &[
                        16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
                    ],
                ),
            }),
            capacity,
            enabled: [true; EventKind::COUNT],
        }
    }

    /// Restricts the recorder to `kinds`: other kinds are reported as
    /// disabled (so `emit_with` callers skip building them entirely) and
    /// ignored if recorded anyway. Use for long traced runs where only a
    /// subset of the stream is wanted — e.g. the cluster trace keeps span
    /// lifecycles plus admission outcomes and drops per-cycle telemetry
    /// that would otherwise overflow the capacity bound.
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[EventKind]) -> Self {
        self.enabled = [false; EventKind::COUNT];
        for &k in kinds {
            self.enabled[k.index()] = true;
        }
        self
    }

    /// An immutable copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> RecorderSnapshot {
        let st = self.state.lock().expect("recorder mutex poisoned");
        RecorderSnapshot {
            counters: st.counters,
            events: st.events.clone(),
            events_dropped: st.events_dropped,
            spans_dropped: st.spans_dropped,
            histograms: vec![
                st.service_latency.snapshot(),
                st.cycle_slack.snapshot(),
                st.pool_occupancy.snapshot(),
            ],
        }
    }
}

impl Default for RecorderSink {
    fn default() -> Self {
        RecorderSink::new()
    }
}

impl Sink for RecorderSink {
    fn enabled(&self, kind: EventKind) -> bool {
        self.enabled[kind.index()]
    }

    fn record(&self, event: &Event) {
        if !self.enabled[event.kind().index()] {
            return;
        }
        let mut st = self.state.lock().expect("recorder mutex poisoned");
        st.counters[event.kind().index()] += 1;
        match *event {
            Event::StreamServiced { duration, .. } => {
                st.service_latency.record(duration.as_secs_f64());
            }
            Event::CyclePlanned {
                start,
                due_min: Some(due),
                ..
            } => {
                st.cycle_slack.record((due - start).as_secs_f64());
            }
            Event::PoolOccupancy { used, .. } => {
                st.pool_occupancy.record(used.as_mebibytes());
            }
            _ => {}
        }
        if st.events.len() < self.capacity {
            st.events.push(*event);
        } else if event.kind().is_span() {
            st.spans_dropped += 1;
        } else {
            st.events_dropped += 1;
        }
    }
}

/// An immutable view of a [`RecorderSink`] at snapshot time.
#[derive(Clone, Debug)]
pub struct RecorderSnapshot {
    counters: [u64; EventKind::COUNT],
    events: Vec<Event>,
    events_dropped: u64,
    spans_dropped: u64,
    histograms: Vec<HistogramSnapshot>,
}

impl RecorderSnapshot {
    /// Number of events of `kind` recorded (dropped events included).
    #[must_use]
    pub fn counter(&self, kind: EventKind) -> u64 {
        self.counters[kind.index()]
    }

    /// Raw events retained (at most the recorder's capacity).
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Total records that exceeded capacity (events plus spans; each is
    /// still counted and histogrammed, just not kept).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.events_dropped + self.spans_dropped
    }

    /// Non-span events that exceeded capacity.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Span records (`span_start`/`span_annotate`/`span_end`) that
    /// exceeded capacity.
    #[must_use]
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// The three built-in histograms: service latency, cycle slack, and
    /// pool occupancy.
    #[must_use]
    pub fn histograms(&self) -> &[HistogramSnapshot] {
        &self.histograms
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders counters and histograms (not raw events) as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = json::Object::new();
        for k in EventKind::ALL {
            counters.uint(k.label(), self.counter(k));
        }
        let mut hists = json::Object::new();
        for h in &self.histograms {
            hists.raw(h.name, &h.to_json());
        }
        let mut o = json::Object::new();
        o.raw("counters", &counters.finish());
        o.uint("events_recorded", self.events.len() as u64);
        o.uint("events_dropped", self.events_dropped);
        o.uint("spans_dropped", self.spans_dropped);
        o.raw("histograms", &hists.finish());
        o.finish()
    }

    /// Renders the retained events as JSONL (one event per line, trailing
    /// newline included when non-empty).
    #[must_use]
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_types::{Bits, Instant, RequestId, Seconds};

    fn underflow(t: f64) -> Event {
        Event::Underflow {
            at: Instant::from_secs(t),
            id: RequestId::new(1),
            n: 1,
            deficit: Bits::new(8.0),
        }
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new("h", &[1.0, 2.0]);
        h.record(0.5); // bucket 0
        h.record(1.0); // bucket 0 (inclusive edge)
        h.record(1.5); // bucket 1
        h.record(9.0); // overflow
        h.record(f64::NAN); // ignored
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(9.0));
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn histogram_ignores_every_non_finite_input() {
        let mut h = Histogram::new("h", &[1.0, 2.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.counts, vec![0, 0, 0]);
        assert_eq!(s.sum, 0.0);
        assert_eq!((s.min, s.max), (None, None));
        // Non-finite noise must not poison later valid samples.
        h.record(f64::NAN);
        h.record(1.5);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (Some(1.5), Some(1.5)));
        assert_eq!(s.mean(), Some(1.5));
    }

    #[test]
    fn histogram_accepts_negative_and_negative_zero_inputs() {
        let mut h = Histogram::new("h", &[0.0, 1.0]);
        h.record(-3.0); // below every bound: first bucket
        h.record(-0.0); // -0.0 <= 0.0: first bucket
        h.record(0.5);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Some(-3.0));
        assert_eq!(s.max, Some(0.5));
        assert_eq!(s.sum, -2.5);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let s = Histogram::new("h", &[1.0]).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.mean(), None);
        assert!(s.to_json().contains("\"min\":null"));
    }

    #[test]
    fn recorder_counts_and_bounds_events() {
        let rec = RecorderSink::with_capacity(2);
        for t in 0..4 {
            rec.record(&underflow(f64::from(t)));
        }
        let s = rec.snapshot();
        assert_eq!(s.counter(EventKind::Underflow), 4);
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.dropped(), 2);
        let jsonl = s.export_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with("{\"kind\":\"underflow\"")));
    }

    #[test]
    fn recorder_splits_event_and_span_drops() {
        use crate::span::{SpanId, SpanKind, SpanStatus, TraceId};
        let rec = RecorderSink::with_capacity(1);
        rec.record(&underflow(0.0)); // retained
        rec.record(&underflow(1.0)); // dropped event
        let trace = TraceId::derive(1, 0);
        let span = SpanId::derive(trace, 0);
        rec.record(&Event::SpanStart {
            at: Instant::from_secs(2.0),
            trace,
            span,
            parent: None,
            span_kind: SpanKind::Request,
        }); // dropped span
        rec.record(&Event::SpanEnd {
            at: Instant::from_secs(3.0),
            trace,
            span,
            status: SpanStatus::Ok,
        }); // dropped span
        let s = rec.snapshot();
        assert_eq!(s.events_dropped(), 1);
        assert_eq!(s.spans_dropped(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.counter(EventKind::SpanStart), 1, "dropped still counted");
        let j = s.to_json();
        assert!(j.contains("\"events_dropped\":1"), "{j}");
        assert!(j.contains("\"spans_dropped\":2"), "{j}");
    }

    #[test]
    fn kind_filter_disables_and_ignores_other_kinds() {
        use crate::span::{SpanId, SpanKind, TraceId};
        let rec = RecorderSink::new().with_kinds(&[EventKind::SpanStart]);
        assert!(rec.enabled(EventKind::SpanStart));
        assert!(!rec.enabled(EventKind::Underflow));
        rec.record(&underflow(0.0)); // filtered out entirely
        let trace = TraceId::derive(1, 0);
        rec.record(&Event::SpanStart {
            at: Instant::ZERO,
            trace,
            span: SpanId::derive(trace, 0),
            parent: None,
            span_kind: SpanKind::Request,
        });
        let s = rec.snapshot();
        assert_eq!(s.counter(EventKind::Underflow), 0, "not even counted");
        assert_eq!(s.counter(EventKind::SpanStart), 1);
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn recorder_feeds_histograms() {
        let rec = RecorderSink::new();
        rec.record(&Event::StreamServiced {
            at: Instant::from_secs(1.0),
            id: RequestId::new(1),
            n: 2,
            k: 1,
            read: Bits::new(100.0),
            size: Bits::new(200.0),
            duration: Seconds::from_secs(0.15),
            first_fill: true,
        });
        rec.record(&Event::CyclePlanned {
            at: Instant::ZERO,
            start: Instant::from_secs(1.0),
            planned: Instant::ZERO,
            n: 2,
            due_min: Some(Instant::from_secs(1.4)),
            insertion_budget: 3,
        });
        rec.record(&Event::CyclePlanned {
            at: Instant::ZERO,
            start: Instant::from_secs(1.0),
            planned: Instant::ZERO,
            n: 2,
            due_min: None,
            insertion_budget: usize::MAX,
        });
        let s = rec.snapshot();
        assert_eq!(s.histogram(HIST_SERVICE_LATENCY).unwrap().count, 1);
        // Only the cycle with a known deadline contributes slack.
        assert_eq!(s.histogram(HIST_CYCLE_SLACK).unwrap().count, 1);
        let slack = s.histogram(HIST_CYCLE_SLACK).unwrap();
        assert!((slack.sum - 0.4).abs() < 1e-9);
    }

    #[test]
    fn summary_json_lists_all_counters() {
        let s = RecorderSink::new().snapshot();
        let j = s.to_json();
        for k in EventKind::ALL {
            assert!(j.contains(&format!("\"{}\":0", k.label())), "{j}");
        }
        assert!(j.contains("\"events_recorded\":0"), "{j}");
        assert!(j.contains("\"histograms\":{"), "{j}");
    }
}
