//! Event sinks and the [`Obs`] handle threaded through the engine.

use core::fmt;
use std::sync::Arc;

use crate::event::{Event, EventKind};
use crate::metrics::Metrics;

/// A set of [`EventKind`]s, packed into a bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventMask(u16);

impl EventMask {
    /// The empty set.
    pub const NONE: EventMask = EventMask(0);

    /// Every kind.
    #[must_use]
    pub fn all() -> Self {
        let mut m = EventMask::NONE;
        for k in EventKind::ALL {
            m = m.with(k);
        }
        m
    }

    /// This set plus `kind`.
    #[must_use]
    pub fn with(self, kind: EventKind) -> Self {
        EventMask(self.0 | (1 << kind.index()))
    }

    /// True when `kind` is in the set.
    #[must_use]
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind.index()) != 0
    }

    /// True when the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// A destination for engine events.
///
/// `enabled` is the fast path: emitters check it before constructing an
/// event, so a sink that returns `false` costs one virtual call and no
/// allocation. `record` must tolerate concurrent callers (the multi-seed
/// runner emits from several threads into per-seed or shared sinks).
pub trait Sink: Send + Sync {
    /// Should events of `kind` be constructed and recorded?
    fn enabled(&self, kind: EventKind) -> bool;

    /// Records one event. Only called for kinds where `enabled` is true.
    fn record(&self, event: &Event);
}

/// A sink that records nothing; `enabled` is always `false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self, _kind: EventKind) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Human-readable events on stderr, filtered by an [`EventMask`].
///
/// The line formats for cycles, services, and underflows match the
/// historical `VOD_DEBUG_*` `eprintln!` hooks they replaced.
#[derive(Clone, Copy, Debug)]
pub struct StderrSink {
    mask: EventMask,
}

impl StderrSink {
    /// A sink printing every event kind.
    #[must_use]
    pub fn all() -> Self {
        StderrSink {
            mask: EventMask::all(),
        }
    }

    /// A sink printing only the kinds in `mask`.
    #[must_use]
    pub fn with_mask(mask: EventMask) -> Self {
        StderrSink { mask }
    }

    /// Builds the sink from the historical debug environment variables —
    /// `VOD_DEBUG_CYCLE` (cycle plans), `VOD_DEBUG_SVC` (services), and
    /// `VOD_DEBUG_UNDERFLOW` (underflows) — returning `None` when none is
    /// set. Each variable enables one event kind, preserving the old
    /// opt-in filtering semantics.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let mut mask = EventMask::NONE;
        if std::env::var_os("VOD_DEBUG_CYCLE").is_some() {
            mask = mask.with(EventKind::CyclePlanned);
        }
        if std::env::var_os("VOD_DEBUG_SVC").is_some() {
            mask = mask.with(EventKind::StreamServiced);
        }
        if std::env::var_os("VOD_DEBUG_UNDERFLOW").is_some() {
            mask = mask.with(EventKind::Underflow);
        }
        if mask.is_empty() {
            None
        } else {
            Some(StderrSink { mask })
        }
    }
}

impl Sink for StderrSink {
    fn enabled(&self, kind: EventKind) -> bool {
        self.mask.contains(kind)
    }

    fn record(&self, event: &Event) {
        match *event {
            Event::CyclePlanned {
                at,
                start,
                planned,
                n,
                due_min,
                insertion_budget,
            } => {
                let budget = if insertion_budget == usize::MAX {
                    "unbounded".to_owned()
                } else {
                    insertion_budget.to_string()
                };
                eprintln!(
                    "CYCLE t={at} start={start} planned={planned} n={n} due_min={due_min:?} \
                     budget={budget}"
                );
            }
            Event::StreamServiced {
                at,
                id,
                n,
                k,
                read,
                size,
                ..
            } => {
                eprintln!("SVC t={at} id={id} n={n} k={k} read={read} size={size}");
            }
            Event::Underflow { at, id, n, deficit } => {
                eprintln!("UF t={at} id={id} n={n} deficit={deficit}");
            }
            ref other => {
                eprintln!("{}", other.to_json());
            }
        }
    }
}

/// Fans one event stream out to two sinks.
///
/// `enabled` is the union of the children's interests; `record` hands
/// the event to each child that wants its kind. Nest tees to fan out
/// wider (e.g. recorder + flight recorder + stderr).
pub struct TeeSink {
    a: Arc<dyn Sink>,
    b: Arc<dyn Sink>,
}

impl TeeSink {
    /// A tee feeding both `a` and `b`.
    #[must_use]
    pub fn new(a: Arc<dyn Sink>, b: Arc<dyn Sink>) -> Self {
        TeeSink { a, b }
    }
}

impl Sink for TeeSink {
    fn enabled(&self, kind: EventKind) -> bool {
        self.a.enabled(kind) || self.b.enabled(kind)
    }

    fn record(&self, event: &Event) {
        let kind = event.kind();
        if self.a.enabled(kind) {
            self.a.record(event);
        }
        if self.b.enabled(kind) {
            self.b.record(event);
        }
    }
}

/// The handle emitters hold: either detached (free) or an attached sink.
///
/// Cloning is cheap (an `Arc` clone). The `#[inline]` fast paths mean a
/// detached handle costs a single `Option` discriminant check per
/// instrumentation site — the "provably near-zero overhead" the
/// simulators rely on to keep the hot loop unperturbed.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn Sink>>,
    metrics: Metrics,
}

impl Obs {
    /// A detached handle: nothing is constructed, nothing recorded.
    #[must_use]
    pub fn null() -> Self {
        Obs {
            sink: None,
            metrics: Metrics::null(),
        }
    }

    /// Attaches a sink.
    #[must_use]
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Obs {
            sink: Some(sink),
            metrics: Metrics::null(),
        }
    }

    /// Attaches a metrics handle, keeping any sink. The handle rides
    /// along wherever the `Obs` is threaded, so instrumented code can
    /// resolve counters and phase histograms from the observer it
    /// already holds.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The metrics handle carried by this observer (detached unless
    /// [`Obs::with_metrics`] attached one).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The attached sink, if any. Harnesses that swap in a temporary
    /// sink (a per-cell recorder, say) use this to tee the caller's
    /// sink alongside rather than silently dropping it.
    #[must_use]
    pub fn sink(&self) -> Option<Arc<dyn Sink>> {
        self.sink.clone()
    }

    /// The historical default: a [`StderrSink`] when any `VOD_DEBUG_*`
    /// variable is set, otherwise detached. Read once at construction —
    /// not per event, unlike the `eprintln!` hooks this replaced.
    #[must_use]
    pub fn from_env() -> Self {
        match StderrSink::from_env() {
            Some(s) => Obs::new(Arc::new(s)),
            None => Obs::null(),
        }
    }

    /// True when a sink is attached.
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// True when events of `kind` would be recorded. Check this before
    /// doing any work to *construct* an event.
    #[inline]
    #[must_use]
    pub fn enabled(&self, kind: EventKind) -> bool {
        match &self.sink {
            None => false,
            Some(s) => s.enabled(kind),
        }
    }

    /// Records `event` if its kind is enabled.
    #[inline]
    pub fn emit(&self, event: &Event) {
        if let Some(s) = &self.sink {
            if s.enabled(event.kind()) {
                s.record(event);
            }
        }
    }

    /// Constructs (via `build`) and records an event only when `kind` is
    /// enabled — the zero-cost path for events whose payload takes any
    /// work to assemble.
    #[inline]
    pub fn emit_with(&self, kind: EventKind, build: impl FnOnce() -> Event) {
        if let Some(s) = &self.sink {
            if s.enabled(kind) {
                s.record(&build());
            }
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("attached", &self.sink.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderSink;
    use vod_types::{Bits, Instant, RequestId};

    #[test]
    fn mask_set_operations() {
        let m = EventMask::NONE
            .with(EventKind::Underflow)
            .with(EventKind::CyclePlanned);
        assert!(m.contains(EventKind::Underflow));
        assert!(m.contains(EventKind::CyclePlanned));
        assert!(!m.contains(EventKind::StreamServiced));
        assert!(EventMask::NONE.is_empty());
        for k in EventKind::ALL {
            assert!(EventMask::all().contains(k));
        }
    }

    #[test]
    fn null_obs_never_builds_events() {
        let obs = Obs::null();
        assert!(!obs.is_attached());
        assert!(!obs.enabled(EventKind::Underflow));
        let mut built = false;
        obs.emit_with(EventKind::Underflow, || {
            built = true;
            Event::Underflow {
                at: Instant::ZERO,
                id: RequestId::new(0),
                n: 0,
                deficit: Bits::ZERO,
            }
        });
        assert!(!built, "closure must not run with no sink attached");
    }

    #[test]
    fn attached_obs_records() {
        let rec = Arc::new(RecorderSink::with_capacity(16));
        let obs = Obs::new(rec.clone());
        assert!(obs.is_attached());
        obs.emit(&Event::Underflow {
            at: Instant::from_secs(1.0),
            id: RequestId::new(3),
            n: 2,
            deficit: Bits::new(10.0),
        });
        assert_eq!(rec.snapshot().counter(EventKind::Underflow), 1);
    }

    #[test]
    fn obs_carries_a_metrics_handle() {
        use crate::metrics::MetricsRegistry;
        let reg = Arc::new(MetricsRegistry::new());
        let obs = Obs::null().with_metrics(Metrics::new(Arc::clone(&reg)));
        assert!(!obs.is_attached(), "metrics do not imply a sink");
        assert!(obs.metrics().is_attached());
        obs.metrics().counter("x_total").inc();
        obs.clone().metrics().counter("x_total").inc();
        assert_eq!(reg.snapshot().counter("x_total"), Some(2));
        assert!(!Obs::null().metrics().is_attached());
    }

    #[test]
    fn null_sink_disables_everything() {
        for k in EventKind::ALL {
            assert!(!NullSink.enabled(k));
        }
    }

    #[test]
    fn tee_feeds_both_children_and_unions_interest() {
        let a = Arc::new(RecorderSink::with_capacity(4));
        let b = Arc::new(RecorderSink::with_capacity(4));
        let tee = TeeSink::new(a.clone(), b.clone());
        assert!(tee.enabled(EventKind::Underflow));
        let obs = Obs::new(Arc::new(tee));
        obs.emit(&Event::Underflow {
            at: Instant::from_secs(1.0),
            id: RequestId::new(1),
            n: 1,
            deficit: Bits::new(8.0),
        });
        assert_eq!(a.snapshot().counter(EventKind::Underflow), 1);
        assert_eq!(b.snapshot().counter(EventKind::Underflow), 1);
    }
}
