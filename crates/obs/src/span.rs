//! Deterministic trace/span identifiers and the span lifecycle API.
//!
//! Spans ride the existing [`Sink`](crate::Sink) pipeline as three extra
//! [`Event`](crate::Event) variants (`SpanStart` / `SpanAnnotate` /
//! `SpanEnd`), so every sink — recorder, stderr, flight recorder — sees
//! them with no new plumbing. Identifiers are **derived**, never drawn
//! from a clock or a global counter: a [`TraceId`] hashes a scope seed
//! with the arrival index (splitmix64), and every [`SpanId`] hashes its
//! trace with a small per-trace sequence number. Two runs of the same
//! workload therefore produce byte-identical trace output, and a span
//! can be reconstructed (or predicted) from `(seed, arrival, seq)`
//! without any shared mutable state.
//!
//! ## Sequence-number convention
//!
//! Within one trace the span salts are partitioned so the engine and the
//! cluster never collide:
//!
//! | salt                 | span                                    |
//! |----------------------|-----------------------------------------|
//! | `0`                  | request root (arrival → departure)      |
//! | `1`                  | admission (queue wait, defer/admit)     |
//! | `2 + i`              | i-th per-cycle service of the stream    |
//! | `SEQ_DISPATCH`       | cluster dispatch attempt                |
//! | `SEQ_RETRY`          | overflow-queue retry / final flush      |
//! | `SEQ_HOP_DISPATCH`   | redirection hop taken at dispatch       |
//! | `SEQ_HOP_RETRY`      | redirection hop taken at retry          |
//! | `SEQ_FAILOVER`       | failover migration of an evicted stream |
//!
//! The cluster salts live above `1 << 62`, far beyond any realistic
//! service count, so the two spaces cannot overlap.

use core::fmt;

use vod_types::Instant;

use crate::event::{Event, EventKind};
use crate::sink::Obs;

/// splitmix64 finalizer: a fast, well-mixed 64-bit permutation.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Salt for the request root span (arrival → departure).
pub const SEQ_REQUEST: u64 = 0;
/// Salt for the admission span (queue entry → admit/refuse).
pub const SEQ_ADMISSION: u64 = 1;
/// Salt of a stream's first per-cycle service span; the i-th service
/// uses `SEQ_FIRST_SERVICE + i`.
pub const SEQ_FIRST_SERVICE: u64 = 2;
/// Salt for the cluster dispatch span.
pub const SEQ_DISPATCH: u64 = 1 << 62;
/// Salt for the overflow-queue retry (or end-of-run flush) span.
pub const SEQ_RETRY: u64 = (1 << 62) | 1;
/// Salt for a redirection hop taken during initial dispatch.
pub const SEQ_HOP_DISPATCH: u64 = (1 << 62) | 2;
/// Salt for a redirection hop taken when an overflow retry lands.
pub const SEQ_HOP_RETRY: u64 = (1 << 62) | 3;
/// Salt for a failover span (a stream migrated off a crashed node).
pub const SEQ_FAILOVER: u64 = (1 << 62) | 4;

/// Identifies one request's journey end to end (across cluster hops).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The "no trace" sentinel carried by untraced streams.
    pub const NONE: TraceId = TraceId(0);

    /// Derives the trace for the `index`-th arrival under `seed`.
    ///
    /// Purely a hash — no clock, no counter — so the same `(seed,
    /// index)` always names the same trace. The result is never
    /// [`TraceId::NONE`].
    #[must_use]
    pub fn derive(seed: u64, index: u64) -> Self {
        let id = mix64(seed ^ mix64(index));
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Wraps a raw id (for parsers reconstructing traces from JSONL).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }

    /// The raw 64-bit id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True when this is the [`TraceId::NONE`] sentinel.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The 16-hex-digit form used in JSONL (exact — u64 does not
    /// survive a round-trip through f64 JSON numbers).
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within (and derived from) a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// Derives the span with sequence `seq` inside `trace` (see the
    /// module docs for the salt convention).
    #[must_use]
    pub fn derive(trace: TraceId, seq: u64) -> Self {
        SpanId(mix64(trace.raw() ^ mix64(seq)))
    }

    /// Wraps a raw id (for parsers reconstructing traces from JSONL).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        SpanId(raw)
    }

    /// The raw 64-bit id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The 16-hex-digit form used in JSONL.
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What stage of the request path a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// The request root: arrival to departure (or refusal).
    Request,
    /// Queue wait at the admission controller.
    Admission,
    /// One per-cycle buffer refill.
    Service,
    /// One engine service cycle (engine-scoped, not per-request).
    Cycle,
    /// A cluster dispatch attempt for one arrival.
    Dispatch,
    /// One redirection hop between cluster nodes.
    Hop,
    /// A failover migration of one stream off a crashed node.
    Failover,
}

impl SpanKind {
    /// Every kind, in a stable order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::Request,
        SpanKind::Admission,
        SpanKind::Service,
        SpanKind::Cycle,
        SpanKind::Dispatch,
        SpanKind::Hop,
        SpanKind::Failover,
    ];

    /// Stable snake_case label (the `span_kind` field in JSONL).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Admission => "admission",
            SpanKind::Service => "service",
            SpanKind::Cycle => "cycle",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Hop => "hop",
            SpanKind::Failover => "failover",
        }
    }

    /// Parses a label back (for the trace analyzer).
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        SpanKind::ALL.iter().copied().find(|k| k.label() == s)
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanStatus {
    /// Normal completion.
    Ok,
    /// Admission span: the request entered service.
    Admitted,
    /// Admission or request span: rejected outright.
    Refused,
    /// Cluster dispatch span: no node would accept; parked on the
    /// overflow queue. An anomaly trigger for the flight recorder.
    Parked,
}

impl SpanStatus {
    /// Every status, in a stable order.
    pub const ALL: [SpanStatus; 4] = [
        SpanStatus::Ok,
        SpanStatus::Admitted,
        SpanStatus::Refused,
        SpanStatus::Parked,
    ];

    /// Stable snake_case label (the `status` field in JSONL).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Admitted => "admitted",
            SpanStatus::Refused => "refused",
            SpanStatus::Parked => "parked",
        }
    }

    /// Parses a label back (for the trace analyzer).
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        SpanStatus::ALL.iter().copied().find(|k| k.label() == s)
    }
}

impl fmt::Display for SpanStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A span-annotation value. Keys are `&'static str` and values are
/// `Copy` so annotation events allocate nothing on the emit path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AnnoValue {
    /// An unsigned integer (counts, ids, node indexes).
    U64(u64),
    /// A float (durations, sizes).
    F64(f64),
    /// A static label (reasons, constraint names).
    Str(&'static str),
}

impl fmt::Display for AnnoValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AnnoValue::U64(v) => write!(f, "{v}"),
            AnnoValue::F64(v) => write!(f, "{v}"),
            AnnoValue::Str(v) => f.write_str(v),
        }
    }
}

impl Obs {
    /// True when span events would be recorded. Emitters check this once
    /// and skip all id derivation when tracing is off, so a detached
    /// handle pays one `Option` check per site and allocates nothing.
    #[inline]
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.enabled(EventKind::SpanStart)
    }

    /// Emits a span-start event.
    #[inline]
    pub fn span_start(
        &self,
        at: Instant,
        trace: TraceId,
        span: SpanId,
        parent: Option<SpanId>,
        kind: SpanKind,
    ) {
        self.emit(&Event::SpanStart {
            at,
            trace,
            span,
            parent,
            span_kind: kind,
        });
    }

    /// Emits a key/value annotation on an open span.
    #[inline]
    pub fn span_annotate(
        &self,
        at: Instant,
        trace: TraceId,
        span: SpanId,
        key: &'static str,
        value: AnnoValue,
    ) {
        self.emit(&Event::SpanAnnotate {
            at,
            trace,
            span,
            key,
            value,
        });
    }

    /// Emits a span-end event.
    #[inline]
    pub fn span_end(&self, at: Instant, trace: TraceId, span: SpanId, status: SpanStatus) {
        self.emit(&Event::SpanEnd {
            at,
            trace,
            span,
            status,
        });
    }

    /// Starts a span and returns a guard for the `annotate`/`end`
    /// lifecycle. The guard clones the handle (an `Arc` clone at most),
    /// so it suits setup-time call sites; hot loops use the free
    /// [`Obs::span_start`]/[`Obs::span_end`] emitters with derived ids.
    #[must_use]
    pub fn start_span(
        &self,
        at: Instant,
        trace: TraceId,
        seq: u64,
        parent: Option<SpanId>,
        kind: SpanKind,
    ) -> Span {
        let id = SpanId::derive(trace, seq);
        self.span_start(at, trace, id, parent, kind);
        Span {
            obs: self.clone(),
            trace,
            id,
        }
    }
}

/// A started span: annotate it, then end it exactly once.
///
/// Dropping a `Span` without calling [`Span::end`] leaks the span open
/// in the output — the analyzer's invariant audit flags that, which is
/// deliberate: an unended span is a bug in the instrumented code, not
/// something to paper over with an implicit drop-time end (drops have
/// no simulated timestamp to use).
#[derive(Clone, Debug)]
pub struct Span {
    obs: Obs,
    trace: TraceId,
    id: SpanId,
}

impl Span {
    /// The owning trace.
    #[must_use]
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// This span's id.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches a key/value annotation.
    pub fn annotate(&self, at: Instant, key: &'static str, value: AnnoValue) {
        self.obs.span_annotate(at, self.trace, self.id, key, value);
    }

    /// Ends the span with `status`, consuming the guard.
    pub fn end(self, at: Instant, status: SpanStatus) {
        self.obs.span_end(at, self.trace, self.id, status);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderSink;
    use std::sync::Arc;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(TraceId::derive(7, 0), TraceId::derive(7, 0));
        assert_ne!(TraceId::derive(7, 0), TraceId::derive(7, 1));
        assert_ne!(TraceId::derive(7, 0), TraceId::derive(8, 0));
        assert!(!TraceId::derive(0, 0).is_none());
    }

    #[test]
    fn span_ids_partition_by_seq() {
        let t = TraceId::derive(1, 2);
        let mut ids: Vec<u64> = [
            SEQ_REQUEST,
            SEQ_ADMISSION,
            SEQ_FIRST_SERVICE,
            SEQ_FIRST_SERVICE + 1,
            SEQ_DISPATCH,
            SEQ_RETRY,
            SEQ_HOP_DISPATCH,
            SEQ_HOP_RETRY,
            SEQ_FAILOVER,
        ]
        .iter()
        .map(|&s| SpanId::derive(t, s).raw())
        .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 9, "seq salts must not collide");
    }

    #[test]
    fn hex_round_trips() {
        let t = TraceId::derive(42, 9);
        let parsed = u64::from_str_radix(&t.hex(), 16).unwrap();
        assert_eq!(TraceId::from_raw(parsed), t);
        assert_eq!(t.hex().len(), 16);
    }

    #[test]
    fn labels_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_label(k.label()), Some(k));
        }
        for s in SpanStatus::ALL {
            assert_eq!(SpanStatus::from_label(s.label()), Some(s));
        }
        assert_eq!(SpanKind::from_label("nope"), None);
        assert_eq!(SpanStatus::from_label("nope"), None);
    }

    #[test]
    fn span_guard_emits_start_annotate_end() {
        let rec = Arc::new(RecorderSink::with_capacity(16));
        let obs = Obs::new(rec.clone());
        let t = TraceId::derive(1, 0);
        let span = obs.start_span(Instant::ZERO, t, SEQ_REQUEST, None, SpanKind::Request);
        span.annotate(Instant::from_secs(1.0), "video", AnnoValue::U64(3));
        span.end(Instant::from_secs(2.0), SpanStatus::Ok);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(EventKind::SpanStart), 1);
        assert_eq!(snap.counter(EventKind::SpanAnnotate), 1);
        assert_eq!(snap.counter(EventKind::SpanEnd), 1);
    }

    #[test]
    fn detached_obs_reports_tracing_off() {
        assert!(!Obs::null().tracing());
        let rec = Arc::new(RecorderSink::with_capacity(4));
        assert!(Obs::new(rec).tracing());
    }
}
