//! Cycle-indexed time series with power-of-two decimation.
//!
//! The metrics registry (PR 2) captures end-of-run aggregates and the
//! span layer (PR 5) captures per-request lifecycles; this module covers
//! the territory between them: **how a quantity evolved over a run**.
//! A [`TimeSeries`] is a fixed-capacity buffer of `(index, t, value)`
//! points sampled at deterministic simulation points (engine cycle
//! boundaries, cluster dispatches). When the buffer fills, every second
//! retained point is dropped and the sampling stride doubles
//! (1 → 2 → 4 → …), so memory stays bounded while coverage always spans
//! the whole run at uniform resolution.
//!
//! ## Determinism argument
//!
//! Nothing here reads a wall clock, draws randomness, or depends on
//! thread interleaving:
//!
//! * the sample *index* is a pure count of offers to the series;
//! * the *t* column is simulated time, supplied by the caller;
//! * acceptance of an offer depends only on `(index, stride)`, and the
//!   stride only on how many offers preceded it.
//!
//! A series is therefore a pure function of the offered `(t, value)`
//! sequence. Engines sample themselves (one series set per engine), so
//! the sequence each series sees is the engine's own deterministic
//! history — running the matrix at `--jobs 1` or `--jobs N` produces
//! byte-identical exports (pinned by tests).
//!
//! ## Decimation invariant
//!
//! With an **even** capacity `C`, the retained points are always exactly
//! the offers at indices `{0, s, 2s, …}` for the current stride `s`:
//! decimating a full buffer keeps positions `0, 2, 4, …` — the offers at
//! multiples of `2s` — and since `C` is even the next accepted offer
//! (`C·s`, a multiple of `2s`) continues the arithmetic progression.
//! Consequently a series with capacity `C` equals a series with any
//! larger capacity filtered to the coarser stride — capacity changes
//! only the resolution, never which values appear at the indices both
//! keep (property-tested in `tests/timeseries_properties.rs`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json;

/// Default point capacity of a series (even; see the module docs).
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// One retained sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// The offer index (cycle number, dispatch number, …).
    pub index: u64,
    /// Simulated time of the sample, seconds.
    pub t: f64,
    /// The sampled value.
    pub value: f64,
}

/// A fixed-capacity, stride-doubling series of [`Point`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    stride: u64,
    count: u64,
    points: Vec<Point>,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` points. Capacities
    /// are clamped to at least 2 and rounded up to even — the decimation
    /// invariant (module docs) needs an even buffer.
    #[must_use]
    pub fn new(name: &str, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let capacity = capacity + (capacity % 2);
        TimeSeries {
            name: name.to_owned(),
            capacity,
            stride: 1,
            count: 0,
            points: Vec::new(),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current sampling stride (a power of two).
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total samples offered (kept or decimated away).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The retained points, in index order.
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Offers one sample. The offer's index is the running count; it is
    /// kept only when the index is a multiple of the current stride, and
    /// a full buffer decimates (drop every second point, double the
    /// stride) before accepting.
    pub fn push(&mut self, t: f64, value: f64) {
        let index = self.count;
        self.count += 1;
        if !index.is_multiple_of(self.stride) {
            return;
        }
        if self.points.len() == self.capacity {
            let mut pos = 0usize;
            self.points.retain(|_| {
                let keep = pos.is_multiple_of(2);
                pos += 1;
                keep
            });
            self.stride *= 2;
            if !index.is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push(Point { index, t, value });
    }

    /// One JSONL line:
    /// `{"kind":"series","scope":..,"name":..,"stride":..,"count":..,"points":[[index,t,value],..]}`.
    #[must_use]
    pub fn to_json(&self, scope: &str) -> String {
        let mut o = json::Object::new();
        o.str("kind", "series");
        o.str("scope", scope);
        o.str("name", &self.name);
        o.uint("stride", self.stride);
        o.uint("count", self.count);
        let mut arr = json::Array::new();
        for p in &self.points {
            let mut triple = json::Array::new();
            triple.raw(&p.index.to_string());
            triple.num(p.t);
            triple.num(p.value);
            arr.raw(&triple.finish());
        }
        o.raw("points", &arr.finish());
        o.finish()
    }

    /// Appends `scope,name,index,t,value` CSV rows (no header).
    pub fn append_csv(&self, scope: &str, out: &mut String) {
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                scope,
                self.name,
                p.index,
                json::number(p.t),
                json::number(p.value),
            ));
        }
    }
}

/// A shared handle to one series. Cloning the `Arc` is how emitters keep
/// a resolved handle (mirroring [`crate::metrics::Counter`]); pushes
/// lock only this series.
#[derive(Debug)]
pub struct Series(Mutex<TimeSeries>);

impl Series {
    /// Offers one sample (see [`TimeSeries::push`]).
    pub fn push(&self, t: f64, value: f64) {
        self.0.lock().expect("series mutex poisoned").push(t, value);
    }

    /// A point-in-time copy of the series.
    #[must_use]
    pub fn snapshot(&self) -> TimeSeries {
        self.0.lock().expect("series mutex poisoned").clone()
    }
}

/// A named set of series sharing one scope label (an engine, a cluster
/// node, the cluster front end). Detachable like the metrics registry:
/// samplers hold `Option<Arc<SeriesRecorder>>` and skip all sampling
/// work when none is attached, so telemetry-off runs never construct a
/// sample (the emission-gating that keeps `DiskRunStats` bit-identical).
#[derive(Debug)]
pub struct SeriesRecorder {
    scope: String,
    capacity: usize,
    series: Mutex<BTreeMap<String, Arc<Series>>>,
}

impl SeriesRecorder {
    /// A recorder whose series hold [`DEFAULT_SERIES_CAPACITY`] points.
    #[must_use]
    pub fn new(scope: &str) -> Self {
        SeriesRecorder::with_capacity(scope, DEFAULT_SERIES_CAPACITY)
    }

    /// A recorder whose series hold at most `capacity` points each (see
    /// [`TimeSeries::new`] for the evenness clamp).
    #[must_use]
    pub fn with_capacity(scope: &str, capacity: usize) -> Self {
        SeriesRecorder {
            scope: scope.to_owned(),
            capacity,
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// The scope label series of this recorder export under.
    #[must_use]
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Resolves (creating on first use) the series named `name`.
    #[must_use]
    pub fn series(&self, name: &str) -> Arc<Series> {
        let mut map = self.series.lock().expect("series map poisoned");
        Arc::clone(
            map.entry(name.to_owned()).or_insert_with(|| {
                Arc::new(Series(Mutex::new(TimeSeries::new(name, self.capacity))))
            }),
        )
    }

    /// Snapshots every series, in name order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TimeSeries> {
        self.series
            .lock()
            .expect("series map poisoned")
            .values()
            .map(|s| s.snapshot())
            .collect()
    }

    /// One `{"kind":"series",...}` JSONL line per series, in name order.
    #[must_use]
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            out.push_str(&s.to_json(&self.scope));
            out.push('\n');
        }
        out
    }

    /// CSV rows (`scope,name,index,t,value`, no header), in name order.
    #[must_use]
    pub fn export_csv(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            s.append_csv(&self.scope, &mut out);
        }
        out
    }
}

/// The canonical CSV header matching [`SeriesRecorder::export_csv`].
pub const SERIES_CSV_HEADER: &str = "scope,name,index,t,value\n";

/// Engine series names (sampled once per completed service cycle).
pub mod engine_series {
    /// Buffer-pool occupancy at the cycle boundary, bits.
    pub const POOL_USED_BITS: &str = "pool_used_bits";
    /// Streams in service at the cycle boundary.
    pub const ACTIVE_STREAMS: &str = "active_streams";
    /// Admission headroom: the Assumption-1 bound minus offered load.
    pub const ADMISSION_HEADROOM: &str = "admission_headroom";
    /// Deferred requests waiting in the admission queue.
    pub const DEFERRAL_QUEUE_DEPTH: &str = "deferral_queue_depth";
    /// Duration of the cycle that just completed, seconds.
    pub const CYCLE_SERVICE_S: &str = "cycle_service_s";
}

/// Cluster series names (sampled once per front-end dispatch).
pub mod cluster_series {
    /// Arrivals dispatched to the node so far (per-node scope).
    pub const NODE_LOAD: &str = "load";
    /// Redirections in + out touching the node so far (per-node scope).
    pub const NODE_REDIRECTIONS: &str = "redirections";
    /// Busiest node's dispatched count over the mean (cluster scope).
    pub const IMBALANCE_RATIO: &str = "imbalance_ratio";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offered(n: u64) -> TimeSeries {
        let mut s = TimeSeries::new("x", 8);
        for i in 0..n {
            s.push(i as f64 * 0.5, i as f64);
        }
        s
    }

    #[test]
    fn under_capacity_keeps_every_sample_at_stride_one() {
        let s = offered(5);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.count(), 5);
        let idx: Vec<u64> = s.points().iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.points()[3].value, 3.0);
        assert_eq!(s.points()[3].t, 1.5);
    }

    #[test]
    fn overflow_decimates_and_doubles_the_stride() {
        let s = offered(9); // capacity 8: the 9th offer triggers decimation
        assert_eq!(s.stride(), 2);
        let idx: Vec<u64> = s.points().iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn retained_indices_are_always_stride_multiples() {
        for n in [1u64, 7, 8, 9, 16, 17, 33, 100, 1000] {
            let s = offered(n);
            assert!(s.points().len() <= 8, "n={n}");
            for (i, p) in s.points().iter().enumerate() {
                assert_eq!(p.index, i as u64 * s.stride(), "n={n}");
                assert_eq!(p.value, p.index as f64, "values ride along");
            }
            // Full-run coverage: the last retained point is within one
            // stride of the last offer.
            let last = s.points().last().expect("non-empty").index;
            assert!(n - 1 - last < s.stride(), "n={n} last={last}");
        }
    }

    #[test]
    fn coarse_series_is_the_fine_series_filtered_to_its_stride() {
        let n = 613u64;
        let coarse = offered(n);
        let mut fine = TimeSeries::new("x", 64);
        for i in 0..n {
            fine.push(i as f64 * 0.5, i as f64);
        }
        let filtered: Vec<Point> = fine
            .points()
            .iter()
            .copied()
            .filter(|p| p.index % coarse.stride() == 0)
            .collect();
        assert_eq!(coarse.points(), &filtered[..]);
    }

    #[test]
    fn capacity_is_clamped_even() {
        assert_eq!(TimeSeries::new("x", 0).capacity, 2);
        assert_eq!(TimeSeries::new("x", 7).capacity, 8);
        assert_eq!(TimeSeries::new("x", 8).capacity, 8);
    }

    #[test]
    fn json_line_carries_scope_name_stride_and_points() {
        let mut s = TimeSeries::new("pool_used_bits", 4);
        s.push(0.0, 1.5);
        s.push(1.0, 2.0);
        let j = s.to_json("node0");
        assert!(j.starts_with("{\"kind\":\"series\""), "{j}");
        assert!(j.contains("\"scope\":\"node0\""), "{j}");
        assert!(j.contains("\"name\":\"pool_used_bits\""), "{j}");
        assert!(j.contains("\"stride\":1"), "{j}");
        assert!(j.contains("\"count\":2"), "{j}");
        assert!(j.contains("\"points\":[[0,0.0,1.5],[1,1.0,2.0]]"), "{j}");
    }

    #[test]
    fn recorder_resolves_and_exports_in_name_order() {
        let rec = SeriesRecorder::with_capacity("engine", 4);
        rec.series("zeta").push(0.0, 1.0);
        rec.series("alpha").push(0.0, 2.0);
        rec.series("alpha").push(1.0, 3.0);
        let jsonl = rec.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"alpha\""));
        assert!(lines[1].contains("\"name\":\"zeta\""));
        let csv = rec.export_csv();
        assert_eq!(
            csv,
            "engine,alpha,0,0.0,2.0\nengine,alpha,1,1.0,3.0\nengine,zeta,0,0.0,1.0\n"
        );
    }

    #[test]
    fn series_handles_share_state() {
        let rec = SeriesRecorder::new("s");
        let a = rec.series("x");
        let b = rec.series("x");
        a.push(0.0, 1.0);
        b.push(1.0, 2.0);
        assert_eq!(a.snapshot().count(), 2);
    }
}
