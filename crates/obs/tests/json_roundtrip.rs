//! Round-trip tests for the hand-rolled JSON emitter (`vod_obs::json`):
//! whatever `escape` / `number` / the builders produce must parse as
//! valid JSON under a strict RFC 8259 grammar.
//!
//! The validator below is a minimal recursive-descent parser written for
//! this test only. It accepts exactly one JSON value and rejects trailing
//! input, raw control characters inside strings, malformed escapes, and
//! malformed numbers — the failure modes a hand-rolled emitter could
//! plausibly produce.

use vod_obs::json::{escape, number, Array, Object};

/// Strict single-value JSON validator. Returns `Err(position)` on the
/// first offending byte.
fn validate(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i == b.len() {
        Ok(())
    } else {
        Err(p.i)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), usize> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn value(&mut self) -> Result<(), usize> {
        match self.peek().ok_or(self.i)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.eat("true"),
            b'f' => self.eat("false"),
            b'n' => self.eat("null"),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.i),
        }
    }

    fn object(&mut self) -> Result<(), usize> {
        self.eat("{")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn array(&mut self) -> Result<(), usize> {
        self.eat("[")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn string(&mut self) -> Result<(), usize> {
        self.eat("\"")?;
        loop {
            match self.peek().ok_or(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or(self.i)? {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.i += 1,
                        b'u' => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.peek().ok_or(self.i)?.is_ascii_hexdigit() {
                                    return Err(self.i);
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.i),
                    }
                }
                c if c < 0x20 => return Err(self.i), // raw control char
                _ => self.i += 1,                    // any other (UTF-8 continuation included)
            }
        }
    }

    fn digits(&mut self) -> Result<(), usize> {
        if !self.peek().ok_or(self.i)?.is_ascii_digit() {
            return Err(self.i);
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), usize> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek().ok_or(self.i)? {
            b'0' => {
                self.i += 1;
                // leading zero must not be followed by a digit
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    return Err(self.i);
                }
            }
            b'1'..=b'9' => self.digits()?,
            _ => return Err(self.i),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

fn assert_valid(s: &str) {
    if let Err(pos) = validate(s) {
        panic!("invalid JSON at byte {pos}: {s:?}");
    }
}

#[test]
fn the_validator_itself_rejects_malformed_json() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "\"\u{1}\"",   // raw control char
        "\"\\x\"",     // bad escape
        "\"\\u12g4\"", // bad hex
        "01",
        "1.",
        "1e",
        "--1",
        "NaN",
        "Infinity",
        "1 2",
        "{\"a\":1,}",
    ] {
        assert!(validate(bad).is_err(), "accepted malformed JSON: {bad:?}");
    }
    for good in ["0", "-0.0", "1e300", "[]", "{}", "\"\\u0007\"", "[1,2]"] {
        assert_valid(good);
    }
}

#[test]
fn escaped_strings_always_parse() {
    // Every control character, the escape-relevant ASCII, and a BMP sweep
    // around the surrogate range (surrogates themselves cannot occur in a
    // Rust &str, so U+D7FF / U+E000 are the closest representable values).
    let mut chars: Vec<char> = (0u32..0x80).filter_map(char::from_u32).collect();
    chars.extend([
        '\u{d7ff}',
        '\u{e000}',
        '\u{fffd}',
        '\u{ffff}',
        '\u{10000}',
        '\u{10ffff}',
    ]);
    for c in chars {
        let s = format!("x{c}y");
        let doc = format!("\"{}\"", escape(&s));
        assert_valid(&doc);
    }
    // A torture string mixing everything at once.
    let torture =
        "quote:\" backslash:\\ newline:\n tab:\t cr:\r bell:\u{7} del:\u{7f} é 漢 \u{10ffff}";
    assert_valid(&format!("\"{}\"", escape(torture)));
}

#[test]
fn numbers_always_parse_and_non_finite_becomes_null() {
    let finite = [
        0.0,
        -0.0,
        1.0,
        -1.5,
        1e300,
        -1e300,
        1e-300,
        5e-324, // smallest subnormal
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        f64::EPSILON,
        1.0 / 3.0,
        123_456_789.123_456_78,
    ];
    for x in finite {
        assert_valid(&number(x));
    }
    assert_eq!(number(-0.0), "-0.0");
    assert_eq!(number(f64::NAN), "null");
    assert_eq!(number(f64::INFINITY), "null");
    assert_eq!(number(f64::NEG_INFINITY), "null");
    assert_valid(&number(f64::NAN));
}

#[test]
fn built_documents_round_trip_through_the_validator() {
    let mut inner = Object::new();
    inner.str("ctrl\u{1}key", "va\"lue\\with\nnasties\u{1f}");
    inner.num("neg_zero", -0.0);
    inner.num("huge", 1e300);
    inner.num("nan", f64::NAN); // must render as null
    inner.uint("max", u64::MAX);
    inner.bool("flag", false);
    inner.null("nothing");

    let mut arr = Array::new();
    arr.num(0.1);
    arr.num(f64::INFINITY);
    arr.raw(&inner.finish());
    arr.raw("[]");

    let mut doc = Object::new();
    doc.str("name", "röund-trip \u{10348}");
    doc.raw("items", &arr.finish());
    let rendered = doc.finish();
    assert_valid(&rendered);
    assert!(rendered.contains("null"));
}
