//! Property tests for the time-series decimation scheme: the retained
//! sample set must be a pure function of `(push sequence, capacity)`,
//! and capacities must nest — a small ring is always the large ring
//! filtered to the small ring's stride. These are the structural facts
//! behind the determinism argument in `timeseries.rs`: if filtering
//! commutes with capacity, any two runs that push the same sequence
//! agree on every retained point regardless of ring size.

use proptest::prelude::*;
use vod_obs::TimeSeries;

/// Replays `values` (t = index as f64) into a fresh series.
fn replay(values: &[f64], capacity: usize) -> TimeSeries {
    let mut s = TimeSeries::new("x", capacity);
    for (i, &v) in values.iter().enumerate() {
        s.push(i as f64, v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Retained indices are exactly the multiples of the final stride
    /// below the push count, so decimation keeps full-run coverage: the
    /// gap after the last retained sample is smaller than one stride.
    #[test]
    fn retained_points_are_exactly_the_stride_multiples(
        values in prop::collection::vec(-1e6f64..1e6, 0..3000),
        capacity in 2usize..128,
    ) {
        let s = replay(&values, capacity);
        let stride = s.stride();
        prop_assert!(stride.is_power_of_two());
        let expected: Vec<u64> =
            (0..values.len() as u64).step_by(stride as usize).collect();
        let got: Vec<u64> = s.points().iter().map(|p| p.index).collect();
        prop_assert_eq!(got, expected);
        for p in s.points() {
            // Values are never resampled or averaged — each retained
            // point is the original observation at its index.
            prop_assert_eq!(p.value.to_bits(), values[p.index as usize].to_bits());
            prop_assert_eq!(p.t.to_bits(), (p.index as f64).to_bits());
        }
    }

    /// Capacity invariance modulo stride: a small ring equals the large
    /// ring filtered to the small ring's stride, byte for byte. Ring
    /// size changes resolution, never which values an index maps to.
    #[test]
    fn small_capacity_is_the_large_capacity_filtered(
        values in prop::collection::vec(-1e6f64..1e6, 0..3000),
        small in 2usize..32,
        extra in 0usize..96,
    ) {
        let large = small + extra;
        let coarse = replay(&values, small);
        let fine = replay(&values, large);
        let stride = coarse.stride();
        prop_assert_eq!(stride % fine.stride(), 0, "strides must nest");
        let filtered: Vec<(u64, u64, u64)> = fine
            .points()
            .iter()
            .filter(|p| p.index % stride == 0)
            .map(|p| (p.index, p.t.to_bits(), p.value.to_bits()))
            .collect();
        let got: Vec<(u64, u64, u64)> = coarse
            .points()
            .iter()
            .map(|p| (p.index, p.t.to_bits(), p.value.to_bits()))
            .collect();
        prop_assert_eq!(got, filtered);
    }

    /// Replaying the same sequence twice gives byte-identical JSON —
    /// the exported artifact is deterministic, not just the in-memory
    /// points.
    #[test]
    fn replays_export_identical_json(
        values in prop::collection::vec(-1e3f64..1e3, 0..500),
        capacity in 2usize..64,
    ) {
        let a = replay(&values, capacity).to_json("scope");
        let b = replay(&values, capacity).to_json("scope");
        prop_assert_eq!(a, b);
    }
}
