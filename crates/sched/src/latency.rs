//! Worst-case initial-latency formulas (Eqs. 2–4 of the paper).
//!
//! *Initial latency* is the time between the arrival of a user request and
//! the arrival of its first video data in server memory. It matters
//! because VCR operations are modelled as new requests, so initial latency
//! is the response time of every interactive operation.
//!
//! All three formulas are linear in the buffer size `BS`, which is the
//! paper's motivation for minimizing `BS`: with `DL`, `TR`, and `g`
//! constant, shrinking the buffer shrinks both memory use *and* latency.

use vod_disk::DiskProfile;
use vod_types::{Bits, Seconds};

use crate::method::SchedulingMethod;

/// Worst-case initial latency for a new request arriving when `n` streams
/// are in service and buffers of size `bs` are being allocated.
///
/// * Round-Robin (BubbleUp), Eq. 2: `2·DL + BS/TR` — wait out the service
///   in execution (`DL + BS/TR`), then one more `DL` for the new request's
///   own seek (its transfer completes the "data in memory" event, so the
///   final `BS/TR` of Eq. 2's derivation is folded into the first term by
///   the paper; we follow Eq. 2 verbatim).
/// * Sweep\*, Eq. 3: `2n(DL + BS/TR) + DL + BS/TR` — arrive just after a
///   period starts, wait that period and be serviced last in the next.
/// * GSS\*, Eq. 4: `2g(DL + BS/TR)` — wait out the current group, then be
///   serviced in the next group.
#[must_use]
pub fn worst_initial_latency(
    method: SchedulingMethod,
    profile: &DiskProfile,
    bs: Bits,
    n: usize,
) -> Seconds {
    let dl = method.worst_disk_latency(profile, n);
    let transfer = bs / profile.transfer_rate;
    match method {
        SchedulingMethod::RoundRobin => dl * 2.0 + transfer,
        SchedulingMethod::Sweep => (dl + transfer) * (2 * n.max(1)) as f64 + dl + transfer,
        SchedulingMethod::Gss { .. } => {
            let g = method.effective_group_size(n);
            (dl + transfer) * (2 * g) as f64
        }
    }
}

/// Worst-case initial latency of the *Fixed-Stretch* scheme — the
/// Round-Robin scheduler **without** BubbleUp, kept for comparison with
/// related work. A new request must wait for its slot in a full service
/// period of `n + 1` equally stretched slots, then its own service:
/// `(n + 1)·(DL + BS/TR) + DL + BS/TR`.
#[must_use]
pub fn worst_initial_latency_fixed_stretch(profile: &DiskProfile, bs: Bits, n: usize) -> Seconds {
    let dl = SchedulingMethod::RoundRobin.worst_disk_latency(profile, n);
    let slot = dl + bs / profile.transfer_rate;
    slot * (n.max(1) + 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskProfile {
        DiskProfile::barracuda_9lp()
    }

    fn bs() -> Bits {
        Bits::from_megabits(12.0)
    }

    #[test]
    fn round_robin_matches_eq2() {
        let dl = SchedulingMethod::RoundRobin
            .worst_disk_latency(&disk(), 5)
            .as_secs_f64();
        let il = worst_initial_latency(SchedulingMethod::RoundRobin, &disk(), bs(), 5);
        let expected = 2.0 * dl + 12.0e6 / 120.0e6;
        assert!((il.as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn sweep_matches_eq3() {
        let n = 10;
        let dl = SchedulingMethod::Sweep
            .worst_disk_latency(&disk(), n)
            .as_secs_f64();
        let il = worst_initial_latency(SchedulingMethod::Sweep, &disk(), bs(), n);
        let slot = dl + 0.1;
        let expected = 2.0 * (n as f64) * slot + slot;
        assert!((il.as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn gss_matches_eq4() {
        let n = 40;
        let dl = SchedulingMethod::GSS_PAPER
            .worst_disk_latency(&disk(), n)
            .as_secs_f64();
        let il = worst_initial_latency(SchedulingMethod::GSS_PAPER, &disk(), bs(), n);
        let expected = 2.0 * 8.0 * (dl + 0.1);
        assert!((il.as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn latency_is_linear_in_buffer_size() {
        for m in SchedulingMethod::paper_methods() {
            let n = 20;
            let il1 = worst_initial_latency(m, &disk(), Bits::from_megabits(4.0), n);
            let il2 = worst_initial_latency(m, &disk(), Bits::from_megabits(8.0), n);
            let il3 = worst_initial_latency(m, &disk(), Bits::from_megabits(12.0), n);
            // Equal increments in BS give equal increments in IL.
            let d1 = il2.as_secs_f64() - il1.as_secs_f64();
            let d2 = il3.as_secs_f64() - il2.as_secs_f64();
            assert!((d1 - d2).abs() < 1e-12, "{m}: not linear");
            assert!(d1 > 0.0, "{m}: not increasing");
        }
    }

    #[test]
    fn sweep_latency_grows_with_n_at_fixed_bs() {
        // More streams per period -> longer wait for the new request.
        let il5 = worst_initial_latency(SchedulingMethod::Sweep, &disk(), bs(), 5);
        let il50 = worst_initial_latency(SchedulingMethod::Sweep, &disk(), bs(), 50);
        assert!(il50 > il5);
    }

    #[test]
    fn bubbleup_beats_fixed_stretch() {
        // BubbleUp's whole point: the new request does not wait a full
        // period. At any realistic n its worst IL is far below
        // Fixed-Stretch's.
        for n in [1, 10, 40, 79] {
            let bubble = worst_initial_latency(SchedulingMethod::RoundRobin, &disk(), bs(), n);
            let fixed = worst_initial_latency_fixed_stretch(&disk(), bs(), n);
            assert!(bubble < fixed, "n={n}");
        }
    }

    #[test]
    fn gss_latency_is_between_rr_and_sweep_for_large_n() {
        // With g=8 < n, GSS* waits ~2 groups: more than BubbleUp's single
        // service, less than Sweep*'s two full periods.
        let n = 79;
        let rr = worst_initial_latency(SchedulingMethod::RoundRobin, &disk(), bs(), n);
        let gss = worst_initial_latency(SchedulingMethod::GSS_PAPER, &disk(), bs(), n);
        let sweep = worst_initial_latency(SchedulingMethod::Sweep, &disk(), bs(), n);
        assert!(rr < gss);
        assert!(gss < sweep);
    }
}
