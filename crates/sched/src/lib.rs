//! Buffer scheduling methods for VOD servers.
//!
//! The *buffer scheduling method* determines the order in which the server
//! fills the buffers of active streams (§2.2 of the paper). Three
//! representative methods are modelled, exactly as the paper evaluates
//! them:
//!
//! * **Round-Robin**, serviced with **BubbleUp** (Chang & Garcia-Molina):
//!   buffers are filled in allocation order, but a newly arriving request
//!   is serviced right after the service currently in execution, giving
//!   the worst-case initial latency of Eq. 2.
//! * **Sweep\***: buffers are filled in disk-position order to minimize
//!   seek time; new requests wait for the next service period, giving
//!   Eq. 3.
//! * **GSS\*** (Grouped Sweeping Scheduling): `n` streams are split into
//!   groups of at most `g` buffers; groups are serviced round-robin (with
//!   BubbleUp), buffers within a group by Sweep, giving Eq. 4.
//!
//! Each method also fixes the **worst-case disk latency `DL`** charged per
//! buffer service, which is what the buffer-size formulas consume:
//! `γ(Cyln)+θ` for Round-Robin, `γ(Cyln/n)+θ` for Sweep\*, and
//! `γ(Cyln/g)+θ` for GSS\*.
//!
//! The buffer *allocation* schemes (static and dynamic) are deliberately
//! independent of the method — the paper's third claimed advantage — so
//! this crate exposes the per-method quantities behind one enum,
//! [`SchedulingMethod`], that `vod-core` and `vod-sim` consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod method;
pub mod order;

pub use latency::{worst_initial_latency, worst_initial_latency_fixed_stretch};
pub use method::{AdmissionTiming, SchedulingMethod};
pub use order::sweep_order;
