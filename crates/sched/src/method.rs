//! The [`SchedulingMethod`] enum and its per-method disk latency.

use core::fmt;

use vod_disk::DiskProfile;
use vod_types::{ConfigError, Seconds};

/// When a scheduling method first services a newly admitted request.
///
/// This is the behavioural difference that drives the initial-latency
/// formulas of §2.2 and the simulator's service ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionTiming {
    /// BubbleUp: right after the service currently in execution completes.
    AfterCurrentService,
    /// Sweep\*: at the next service-period boundary (servicing it
    /// mid-period could break seek-order optimality).
    NextPeriod,
    /// GSS\*: with the next group to be serviced.
    NextGroup,
}

/// A buffer scheduling method, as evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulingMethod {
    /// Round-Robin in allocation order, serviced with BubbleUp.
    RoundRobin,
    /// Sweep\*: seek-order service within each period.
    Sweep,
    /// GSS\*: groups of at most `group_size` buffers; Sweep within a
    /// group, Round-Robin (BubbleUp) across groups.
    Gss {
        /// Maximum buffers per group (`g`). The paper uses 8, the value
        /// minimizing memory requirements for the Barracuda 9LP (§5.1).
        group_size: usize,
    },
}

impl SchedulingMethod {
    /// The paper's GSS\* configuration (`g` = 8).
    pub const GSS_PAPER: SchedulingMethod = SchedulingMethod::Gss { group_size: 8 };

    /// All three methods with the paper's parameters, in the order the
    /// paper's figures present them.
    #[must_use]
    pub fn paper_methods() -> [SchedulingMethod; 3] {
        [
            SchedulingMethod::RoundRobin,
            SchedulingMethod::Sweep,
            SchedulingMethod::GSS_PAPER,
        ]
    }

    /// Validates method parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a GSS group size is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            SchedulingMethod::Gss { group_size: 0 } => {
                Err(ConfigError::new("group_size", "must be at least 1"))
            }
            _ => Ok(()),
        }
    }

    /// Worst-case disk latency `DL` for servicing **one buffer** when `n`
    /// streams are in service (§2.2):
    ///
    /// * Round-Robin: `γ(Cyln) + θ` — the head may cross the whole disk.
    /// * Sweep\*: `γ(Cyln/n) + θ` — the worst total seek across a period
    ///   occurs with equally spaced data, `n·γ(Cyln/n)`; per buffer that is
    ///   `γ(Cyln/n)`.
    /// * GSS\*: `γ(Cyln/g) + θ` with `g` buffers swept per group.
    ///
    /// `n = 0` is treated as `n = 1` (the latency of servicing the first
    /// buffer of an empty server).
    #[must_use]
    pub fn worst_disk_latency(&self, profile: &DiskProfile, n: usize) -> Seconds {
        let cyln = f64::from(profile.cylinders);
        let span = match self {
            SchedulingMethod::RoundRobin => cyln,
            SchedulingMethod::Sweep => cyln / (n.max(1) as f64),
            SchedulingMethod::Gss { group_size } => {
                // A group never holds more buffers than there are streams.
                let g = (*group_size).clamp(1, n.max(1));
                cyln / (g as f64)
            }
        };
        profile.seek.worst_latency(span)
    }

    /// When this method first services a newly admitted request.
    #[must_use]
    pub fn admission_timing(&self) -> AdmissionTiming {
        match self {
            SchedulingMethod::RoundRobin => AdmissionTiming::AfterCurrentService,
            SchedulingMethod::Sweep => AdmissionTiming::NextPeriod,
            SchedulingMethod::Gss { .. } => AdmissionTiming::NextGroup,
        }
    }

    /// Effective group size for `n` streams: `n` for Sweep\*, 1 for
    /// Round-Robin, `min(g, n)` for GSS\* — the paper's observation that
    /// GSS degenerates to Sweep at `g = n` and Round-Robin at `g = 1`.
    #[must_use]
    pub fn effective_group_size(&self, n: usize) -> usize {
        match self {
            SchedulingMethod::RoundRobin => 1,
            SchedulingMethod::Sweep => n.max(1),
            SchedulingMethod::Gss { group_size } => (*group_size).clamp(1, n.max(1)),
        }
    }

    /// Short label used in tables and CSV headers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SchedulingMethod::RoundRobin => "Round-Robin",
            SchedulingMethod::Sweep => "Sweep*",
            SchedulingMethod::Gss { .. } => "GSS*",
        }
    }
}

impl fmt::Display for SchedulingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingMethod::Gss { group_size } => write!(f, "GSS*(g={group_size})"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskProfile {
        DiskProfile::barracuda_9lp()
    }

    #[test]
    fn round_robin_latency_is_full_stroke() {
        let dl = SchedulingMethod::RoundRobin.worst_disk_latency(&disk(), 40);
        let expected = disk().seek.worst_latency(7501.0);
        assert_eq!(dl, expected);
        // ≈ 23.8 ms for the Barracuda 9LP.
        assert!((dl.as_millis() - 23.83).abs() < 0.1);
    }

    #[test]
    fn round_robin_latency_is_independent_of_n() {
        let m = SchedulingMethod::RoundRobin;
        assert_eq!(
            m.worst_disk_latency(&disk(), 1),
            m.worst_disk_latency(&disk(), 79)
        );
    }

    #[test]
    fn sweep_latency_shrinks_with_n() {
        let m = SchedulingMethod::Sweep;
        let dl1 = m.worst_disk_latency(&disk(), 1);
        let dl10 = m.worst_disk_latency(&disk(), 10);
        let dl79 = m.worst_disk_latency(&disk(), 79);
        assert!(dl1 > dl10);
        assert!(dl10 > dl79);
        // n = 1 Sweep equals Round-Robin's full stroke.
        assert_eq!(
            dl1,
            SchedulingMethod::RoundRobin.worst_disk_latency(&disk(), 1)
        );
    }

    #[test]
    fn sweep_latency_matches_formula() {
        let dl = SchedulingMethod::Sweep.worst_disk_latency(&disk(), 10);
        let expected = disk().seek.worst_latency(7501.0 / 10.0);
        assert_eq!(dl, expected);
    }

    #[test]
    fn gss_latency_uses_group_size() {
        let m = SchedulingMethod::GSS_PAPER;
        let dl = m.worst_disk_latency(&disk(), 40);
        let expected = disk().seek.worst_latency(7501.0 / 8.0);
        assert_eq!(dl, expected);
    }

    #[test]
    fn gss_group_clamps_to_stream_count() {
        let m = SchedulingMethod::GSS_PAPER;
        // With only 3 streams the group has 3 buffers, not 8.
        let dl = m.worst_disk_latency(&disk(), 3);
        let expected = disk().seek.worst_latency(7501.0 / 3.0);
        assert_eq!(dl, expected);
        assert_eq!(m.effective_group_size(3), 3);
        assert_eq!(m.effective_group_size(40), 8);
    }

    #[test]
    fn gss_degenerates_to_sweep_and_round_robin() {
        let n = 16;
        let sweep_like = SchedulingMethod::Gss { group_size: n };
        assert_eq!(
            sweep_like.worst_disk_latency(&disk(), n),
            SchedulingMethod::Sweep.worst_disk_latency(&disk(), n)
        );
        let rr_like = SchedulingMethod::Gss { group_size: 1 };
        assert_eq!(
            rr_like.effective_group_size(n),
            SchedulingMethod::RoundRobin.effective_group_size(n)
        );
    }

    #[test]
    fn n_zero_is_treated_as_one() {
        for m in SchedulingMethod::paper_methods() {
            assert_eq!(
                m.worst_disk_latency(&disk(), 0),
                m.worst_disk_latency(&disk(), 1)
            );
        }
    }

    #[test]
    fn validation() {
        assert!(SchedulingMethod::Gss { group_size: 0 }.validate().is_err());
        for m in SchedulingMethod::paper_methods() {
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(SchedulingMethod::RoundRobin.label(), "Round-Robin");
        assert_eq!(SchedulingMethod::Sweep.to_string(), "Sweep*");
        assert_eq!(SchedulingMethod::GSS_PAPER.to_string(), "GSS*(g=8)");
    }

    #[test]
    fn admission_timings_differ_per_method() {
        assert_eq!(
            SchedulingMethod::RoundRobin.admission_timing(),
            AdmissionTiming::AfterCurrentService
        );
        assert_eq!(
            SchedulingMethod::Sweep.admission_timing(),
            AdmissionTiming::NextPeriod
        );
        assert_eq!(
            SchedulingMethod::GSS_PAPER.admission_timing(),
            AdmissionTiming::NextGroup
        );
    }
}
