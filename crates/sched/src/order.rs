//! Service-order helpers used by the simulator.

/// Orders items for a Sweep pass: ascending by cylinder, with the scan
/// direction alternating per period (the classic elevator), so the head
/// never retraces the whole disk between consecutive periods.
///
/// `ascending` is the direction of *this* period; the caller flips it each
/// period. Returns indices into `cylinders` in service order. Ties keep
/// their relative input order (stable), so equal-position streams are
/// serviced in admission order.
#[must_use]
pub fn sweep_order(cylinders: &[u32], ascending: bool) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..cylinders.len()).collect();
    idx.sort_by_key(|&i| cylinders[i]);
    if !ascending {
        idx.reverse();
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_orders_by_cylinder() {
        let cyl = [500, 100, 300];
        assert_eq!(sweep_order(&cyl, true), vec![1, 2, 0]);
    }

    #[test]
    fn descending_reverses() {
        let cyl = [500, 100, 300];
        assert_eq!(sweep_order(&cyl, false), vec![0, 2, 1]);
    }

    #[test]
    fn stable_for_ties() {
        let cyl = [200, 200, 100];
        assert_eq!(sweep_order(&cyl, true), vec![2, 0, 1]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(sweep_order(&[], true).is_empty());
        assert_eq!(sweep_order(&[7], false), vec![0]);
    }
}
