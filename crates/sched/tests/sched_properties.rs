//! Property tests for the scheduling methods: latency formulas behave
//! per §2.2 across the whole parameter space.

use proptest::prelude::*;
use vod_disk::DiskProfile;
use vod_sched::{
    sweep_order, worst_initial_latency, worst_initial_latency_fixed_stretch, SchedulingMethod,
};
use vod_types::Bits;

fn methods() -> impl Strategy<Value = SchedulingMethod> {
    prop_oneof![
        Just(SchedulingMethod::RoundRobin),
        Just(SchedulingMethod::Sweep),
        (1usize..=16).prop_map(|g| SchedulingMethod::Gss { group_size: g }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn latency_is_positive_finite_and_monotone_in_bs(
        m in methods(),
        n in 1usize..=79,
        mb in 0.1f64..250.0,
    ) {
        let disk = DiskProfile::barracuda_9lp();
        let bs = Bits::from_megabits(mb);
        let il = worst_initial_latency(m, &disk, bs, n);
        prop_assert!(il.is_valid_duration());
        prop_assert!(il.as_secs_f64() > 0.0);
        let il_bigger = worst_initial_latency(m, &disk, Bits::from_megabits(mb * 2.0), n);
        prop_assert!(il_bigger > il, "{m}: IL must grow with BS");
    }

    #[test]
    fn per_buffer_latency_never_exceeds_full_stroke(
        m in methods(),
        n in 1usize..=79,
    ) {
        // γ is concave-ish increasing: a shorter sweep span can never
        // cost more than the full stroke Round-Robin assumes.
        let disk = DiskProfile::barracuda_9lp();
        let dl = m.worst_disk_latency(&disk, n);
        let full = SchedulingMethod::RoundRobin.worst_disk_latency(&disk, n);
        prop_assert!(dl <= full + vod_types::Seconds::from_millis(0.3),
            "{m} at n={n}: {dl} > {full}");
        prop_assert!(dl > disk.seek.max_rotational_delay, "at least one rotation");
    }

    #[test]
    fn gss_interpolates_between_extremes(n in 2usize..=79) {
        let disk = DiskProfile::barracuda_9lp();
        let rr = SchedulingMethod::Gss { group_size: 1 }.worst_disk_latency(&disk, n);
        let sweep_like = SchedulingMethod::Gss { group_size: n }.worst_disk_latency(&disk, n);
        for g in 2..n {
            let dl = SchedulingMethod::Gss { group_size: g }.worst_disk_latency(&disk, n);
            prop_assert!(dl <= rr + vod_types::Seconds::from_millis(0.3));
            prop_assert!(dl >= sweep_like - vod_types::Seconds::from_millis(0.3));
        }
    }

    #[test]
    fn bubbleup_dominates_fixed_stretch(
        n in 1usize..=79,
        mb in 0.1f64..250.0,
    ) {
        let disk = DiskProfile::barracuda_9lp();
        let bs = Bits::from_megabits(mb);
        let bubble = worst_initial_latency(SchedulingMethod::RoundRobin, &disk, bs, n);
        let fixed = worst_initial_latency_fixed_stretch(&disk, bs, n);
        prop_assert!(bubble < fixed);
    }

    #[test]
    fn sweep_order_is_a_permutation_sorted_by_position(
        cylinders in prop::collection::vec(0u32..8000, 0..40),
        ascending in any::<bool>(),
    ) {
        let order = sweep_order(&cylinders, ascending);
        // Permutation of 0..len.
        let mut seen = vec![false; cylinders.len()];
        for &i in &order {
            prop_assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        // Monotone in the chosen direction.
        for w in order.windows(2) {
            if ascending {
                prop_assert!(cylinders[w[0]] <= cylinders[w[1]]);
            } else {
                prop_assert!(cylinders[w[0]] >= cylinders[w[1]]);
            }
        }
    }
}
