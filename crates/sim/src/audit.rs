//! Scoring the `k` estimator against reality (Figs. 7 and 8).
//!
//! Every buffer allocation by an estimating scheme opens an
//! [`AuditRecord`] — with the estimate `k_c`
//! and the usage-period window it covers. After the run, the record is scored
//! against the *actual* arrivals (admitted or not): the estimation was
//! **successful** when `k_estimated ≥` the number of arrivals inside the
//! window — the paper's definition in §3.1.

use vod_types::Instant;

use crate::metrics::AuditRecord;

/// Aggregated estimator quality over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AuditOutcome {
    /// Number of allocations scored.
    pub samples: usize,
    /// Mean `k_c` across allocations — Fig. 7a / 8a's y-axis.
    pub mean_estimated: f64,
    /// Mean *actual* additional requests per allocation window.
    pub mean_actual: f64,
    /// Fraction of allocations with `k_estimated ≥ actual` — Fig. 7b /
    /// 8b's y-axis.
    pub success_probability: f64,
    /// Allocations whose estimate fell short (`samples` minus the
    /// successes) — the absolute count behind `1 - success_probability`,
    /// surfaced as the `vod_audit_violations_total` counter.
    pub violations: usize,
}

/// Scores audit records against the complete arrival-time list (which
/// must be sorted ascending; every arrival counts, rejected ones too).
#[must_use]
pub fn evaluate_audits(audits: &[AuditRecord], arrival_times: &[Instant]) -> AuditOutcome {
    debug_assert!(arrival_times.windows(2).all(|w| w[0] <= w[1]));
    if audits.is_empty() {
        return AuditOutcome::default();
    }
    let mut est_sum = 0.0;
    let mut act_sum = 0.0;
    let mut successes = 0usize;
    for a in audits {
        // Arrivals strictly after the allocation, up to the window's end.
        let lo = arrival_times.partition_point(|&t| t <= a.at);
        let end = a.at + a.window;
        let hi = arrival_times.partition_point(|&t| t <= end);
        let actual = hi - lo;
        est_sum += a.k_estimated as f64;
        act_sum += actual as f64;
        if a.k_estimated >= actual {
            successes += 1;
        }
    }
    let n = audits.len() as f64;
    AuditOutcome {
        samples: audits.len(),
        mean_estimated: est_sum / n,
        mean_actual: act_sum / n,
        success_probability: successes as f64 / n,
        violations: audits.len() - successes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_types::Seconds;

    fn rec(at: f64, window: f64, k: usize) -> AuditRecord {
        AuditRecord {
            at: Instant::from_secs(at),
            window: Seconds::from_secs(window),
            k_estimated: k,
        }
    }

    fn times(ts: &[f64]) -> Vec<Instant> {
        ts.iter().map(|&t| Instant::from_secs(t)).collect()
    }

    #[test]
    fn empty_audits_give_defaults() {
        let out = evaluate_audits(&[], &times(&[1.0, 2.0]));
        assert_eq!(out, AuditOutcome::default());
    }

    #[test]
    fn counts_arrivals_inside_window() {
        // Window (10, 20]: arrivals at 12, 15, 20 count; 10 and 21 do not.
        let arrivals = times(&[5.0, 10.0, 12.0, 15.0, 20.0, 21.0]);
        let out = evaluate_audits(&[rec(10.0, 10.0, 3)], &arrivals);
        assert_eq!(out.samples, 1);
        assert!((out.mean_actual - 3.0).abs() < 1e-12);
        assert!((out.success_probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underestimates_are_failures() {
        let arrivals = times(&[11.0, 12.0, 13.0]);
        let out = evaluate_audits(&[rec(10.0, 5.0, 2)], &arrivals);
        assert_eq!(out.success_probability, 0.0);
        assert!((out.mean_estimated - 2.0).abs() < 1e-12);
        assert!((out.mean_actual - 3.0).abs() < 1e-12);
        assert_eq!(out.violations, 1);
    }

    #[test]
    fn mixed_outcomes_average() {
        let arrivals = times(&[11.0, 12.0, 31.0]);
        let audits = [
            rec(10.0, 5.0, 2), // actual 2: success
            rec(30.0, 5.0, 0), // actual 1: failure
        ];
        let out = evaluate_audits(&audits, &arrivals);
        assert!((out.success_probability - 0.5).abs() < 1e-12);
        assert!((out.mean_estimated - 1.0).abs() < 1e-12);
        assert!((out.mean_actual - 1.5).abs() < 1e-12);
        assert_eq!(out.violations, 1);
    }

    #[test]
    fn arrival_exactly_at_allocation_instant_is_excluded() {
        // The window is (at, at + window]: the arrival that *triggered*
        // the allocation (t == at) must not count against its own
        // estimate — only strictly-later arrivals do.
        let arrivals = times(&[10.0]);
        let out = evaluate_audits(&[rec(10.0, 5.0, 0)], &arrivals);
        assert_eq!(out.mean_actual, 0.0);
        assert_eq!(out.success_probability, 1.0);
    }

    #[test]
    fn arrival_exactly_at_window_end_is_included() {
        // The window end is inclusive: t == at + window still counts.
        let arrivals = times(&[15.0]);
        let out = evaluate_audits(&[rec(10.0, 5.0, 0)], &arrivals);
        assert!((out.mean_actual - 1.0).abs() < 1e-12);
        assert_eq!(out.success_probability, 0.0);
        // Just past the end does not.
        let late = times(&[15.000001]);
        let out = evaluate_audits(&[rec(10.0, 5.0, 0)], &late);
        assert_eq!(out.mean_actual, 0.0);
        assert_eq!(out.success_probability, 1.0);
    }

    #[test]
    fn no_arrivals_means_every_estimate_succeeds() {
        let out = evaluate_audits(&[rec(0.0, 100.0, 0), rec(5.0, 100.0, 3)], &[]);
        assert_eq!(out.success_probability, 1.0);
        assert_eq!(out.mean_actual, 0.0);
    }
}
