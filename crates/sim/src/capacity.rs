//! The admission-level, multi-disk capacity simulator (Fig. 14, Table 5).
//!
//! In the capacity experiments the only cross-disk interaction is the
//! **shared memory pool**: a request for disk `d` is admitted when `d`
//! still has stream slots (`n_d < N`) *and* the whole server's minimum
//! memory requirement — Theorems 2–4 summed over disks, with disk `d` at
//! `n_d + 1` — fits in the configured memory. This is exactly the
//! reservation the Fig. 13 analysis evaluates; running it against a
//! Poisson/Zipf trace adds the stochastic load imbalance the paper's
//! Fig. 14 measures.

use std::collections::BinaryHeap;

use vod_core::scheme::Sizer;
use vod_core::{memory, ArrivalLog, SchemeKind, SizeTable, SystemParams};
use vod_obs::{Event, EventKind, Obs, RejectReason};
use vod_types::{Bits, ConfigError, Instant, RequestId, Seconds};
use vod_workload::Workload;

/// Configuration of one capacity run.
#[derive(Clone, Debug)]
pub struct CapacityConfig {
    /// Per-disk parameters (all disks identical).
    pub params: SystemParams,
    /// The allocation scheme under test.
    pub scheme: SchemeKind,
    /// Number of disks (10 in the paper's Figs. 13–14).
    pub disks: usize,
    /// Total buffer memory shared by all disks.
    pub total_memory: Bits,
    /// `T_log` of the estimating schemes.
    pub t_log: Seconds,
}

/// What one capacity run measured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CapacityResult {
    /// Peak number of concurrently serviced streams — Fig. 14's y-axis.
    pub max_concurrent: usize,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected (no stream slot or no memory).
    pub rejected: u64,
    /// Peak total memory reservation.
    pub peak_reserved: Bits,
    /// Per-disk peak stream counts.
    pub per_disk_peak: Vec<usize>,
}

#[derive(PartialEq)]
struct Departure {
    at: Instant,
    disk: usize,
}

impl Eq for Departure {}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on time.
        other.at.cmp(&self.at)
    }
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The capacity simulator.
pub struct CapacitySim {
    cfg: CapacityConfig,
    sizer: Sizer,
    table: Option<SizeTable>,
    obs: Obs,
}

impl CapacitySim {
    /// Builds the simulator, precomputing the scheme's size table.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn new(cfg: CapacityConfig) -> Result<Self, ConfigError> {
        Self::with_observer(cfg, Obs::null())
    }

    /// Like [`CapacitySim::new`], with an event sink attached. Admission
    /// decisions and reservation high-water marks are reported; request
    /// ids are synthesized from the arrival's index in the workload
    /// (the capacity trace has no per-request identifiers of its own).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for infeasible parameters.
    pub fn with_observer(cfg: CapacityConfig, obs: Obs) -> Result<Self, ConfigError> {
        cfg.params.validate()?;
        if cfg.disks == 0 {
            return Err(ConfigError::new("disks", "must be at least 1"));
        }
        if !cfg.total_memory.is_valid_size() || cfg.total_memory.is_zero() {
            return Err(ConfigError::new("total_memory", "must be positive"));
        }
        let sizer = Sizer::new(cfg.scheme, &cfg.params)?;
        let table = match cfg.scheme {
            SchemeKind::Dynamic => Some(SizeTable::build(&cfg.params)),
            _ => None,
        };
        Ok(CapacitySim {
            cfg,
            sizer,
            table,
            obs,
        })
    }

    /// Replays a workload (arrivals across all disks) and measures the
    /// achievable concurrency under the memory constraint.
    #[must_use]
    pub fn run(&self, workload: &Workload) -> CapacityResult {
        let d = self.cfg.disks;
        let big_n = self.cfg.params.max_requests();
        let alpha = self.cfg.params.alpha as usize;
        let mut n = vec![0usize; d];
        let mut k_last = vec![alpha; d];
        let mut reserved: Vec<Bits> = vec![Bits::ZERO; d];
        let mut logs: Vec<ArrivalLog> = (0..d).map(|_| ArrivalLog::new(self.cfg.t_log)).collect();
        let mut departures: BinaryHeap<Departure> = BinaryHeap::new();
        let mut result = CapacityResult {
            per_disk_peak: vec![0; d],
            ..Default::default()
        };
        let mut total_reserved = Bits::ZERO;
        let mut concurrent = 0usize;

        for (idx, a) in workload.arrivals.iter().enumerate() {
            // Request ids for observability: the arrival's workload index.
            let rid = RequestId::new(idx as u64);
            // Release departures up to this arrival.
            while let Some(dep) = departures.peek() {
                if dep.at > a.at {
                    break;
                }
                let dep = departures
                    .pop()
                    .expect("departure heap cannot empty while peek returned a due entry");
                n[dep.disk] -= 1;
                concurrent -= 1;
                let k = self.estimate_k(&mut logs[dep.disk], dep.at, n[dep.disk], k_last[dep.disk]);
                k_last[dep.disk] = k;
                let new_res = self.reservation(n[dep.disk], k);
                total_reserved = total_reserved - reserved[dep.disk] + new_res;
                reserved[dep.disk] = new_res;
            }

            let disk = a.disk.index();
            if disk >= d {
                // A request for a disk this server does not have cannot
                // be serviced; count it so admitted + rejected always
                // equals the workload size.
                result.rejected += 1;
                self.obs
                    .emit_with(EventKind::RequestRejected, || Event::RequestRejected {
                        at: a.at,
                        n: concurrent,
                        reason: RejectReason::DiskFull,
                    });
                continue;
            }
            logs[disk].record(a.at);
            if n[disk] >= big_n {
                result.rejected += 1;
                self.obs
                    .emit_with(EventKind::RequestRejected, || Event::RequestRejected {
                        at: a.at,
                        n: concurrent,
                        reason: RejectReason::DiskFull,
                    });
                continue;
            }
            let k = self.estimate_k(&mut logs[disk], a.at, n[disk] + 1, k_last[disk]);
            let needed = self.reservation(n[disk] + 1, k);
            let prospective = total_reserved - reserved[disk] + needed;
            if prospective > self.cfg.total_memory {
                result.rejected += 1;
                self.obs
                    .emit_with(EventKind::RequestRejected, || Event::RequestRejected {
                        at: a.at,
                        n: concurrent,
                        reason: RejectReason::MemoryFull,
                    });
                continue;
            }
            // Admit.
            n[disk] += 1;
            k_last[disk] = k;
            total_reserved = prospective;
            reserved[disk] = needed;
            concurrent += 1;
            result.admitted += 1;
            result.max_concurrent = result.max_concurrent.max(concurrent);
            result.per_disk_peak[disk] = result.per_disk_peak[disk].max(n[disk]);
            self.obs
                .emit_with(EventKind::RequestAdmitted, || Event::RequestAdmitted {
                    at: a.at,
                    id: rid,
                    n: concurrent,
                    waited: Seconds::ZERO,
                });
            if total_reserved > result.peak_reserved {
                result.peak_reserved = total_reserved;
                self.obs
                    .emit_with(EventKind::PoolOccupancy, || Event::PoolOccupancy {
                        at: a.at,
                        used: total_reserved,
                        peak: result.peak_reserved,
                        streams: concurrent,
                    });
            }
            departures.push(Departure {
                at: a.at + a.viewing,
                disk,
            });
        }
        result
    }

    /// Minimum memory a disk must reserve to run `n` streams under the
    /// configured scheme (Theorems 2–4; static uses the `BS(N)`, `k=N−n`
    /// instantiation — see `vod_core::memory`).
    fn reservation(&self, n: usize, k: usize) -> Bits {
        if n == 0 {
            return Bits::ZERO;
        }
        match self.cfg.scheme {
            SchemeKind::Static | SchemeKind::StaticMaxUse => {
                memory::min_memory_static(&self.cfg.params, n)
            }
            SchemeKind::NaiveDynamic => {
                let bs = self.sizer.size(n, k);
                memory::min_memory_with(&self.cfg.params, bs, n, k)
            }
            SchemeKind::Dynamic => memory::min_memory_dynamic(
                &self.cfg.params,
                self.table.as_ref().expect("dynamic builds a table"),
                n,
                k,
            ),
        }
    }

    /// Per-disk `k` estimate: `k_log + α` over a usage-period window
    /// (admission-level approximation of Fig. 5's Step 4).
    fn estimate_k(&self, log: &mut ArrivalLog, now: Instant, n: usize, k_prev: usize) -> usize {
        if !self.cfg.scheme.is_dynamic() {
            return 0;
        }
        let n_eff = n.max(1);
        let dl = self
            .cfg
            .params
            .method
            .worst_disk_latency(&self.cfg.params.disk, n_eff);
        let slot = dl + self.sizer.size(n_eff, k_prev) / self.cfg.params.tr();
        let period = slot * (n_eff + k_prev) as f64;
        let alpha = self.cfg.params.alpha as usize;
        (log.k_log(now, period) + alpha).min(self.cfg.params.max_requests())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_sched::SchedulingMethod;
    use vod_workload::{generate, WorkloadConfig};

    fn cfg(scheme: SchemeKind, memory_gb: f64) -> CapacityConfig {
        CapacityConfig {
            params: SystemParams::paper_defaults(SchedulingMethod::RoundRobin),
            scheme,
            disks: 10,
            total_memory: Bits::from_gigabytes(memory_gb),
            t_log: Seconds::from_minutes(40.0),
        }
    }

    fn heavy_workload(disk_theta: f64) -> Workload {
        // Enough offered load to saturate 10 disks.
        generate(&WorkloadConfig::paper_ten_disk(disk_theta, 20_000.0), 17).expect("valid")
    }

    #[test]
    fn dynamic_beats_static_under_tight_memory() {
        let w = heavy_workload(0.0);
        let st = CapacitySim::new(cfg(SchemeKind::Static, 2.0))
            .expect("valid")
            .run(&w);
        let dy = CapacitySim::new(cfg(SchemeKind::Dynamic, 2.0))
            .expect("valid")
            .run(&w);
        assert!(
            dy.max_concurrent as f64 > 1.5 * st.max_concurrent as f64,
            "dynamic {} vs static {}",
            dy.max_concurrent,
            st.max_concurrent
        );
    }

    #[test]
    fn ample_memory_equalizes_schemes_at_disk_limit() {
        let w = heavy_workload(0.0);
        let st = CapacitySim::new(cfg(SchemeKind::Static, 30.0))
            .expect("valid")
            .run(&w);
        let dy = CapacitySim::new(cfg(SchemeKind::Dynamic, 30.0))
            .expect("valid")
            .run(&w);
        // With enough memory only the disks limit capacity (§5.3).
        assert_eq!(st.max_concurrent, dy.max_concurrent);
    }

    #[test]
    fn capacity_grows_with_memory() {
        let w = heavy_workload(0.5);
        let mut prev = 0;
        for gb in [1.0, 2.0, 4.0, 8.0] {
            let r = CapacitySim::new(cfg(SchemeKind::Static, gb))
                .expect("valid")
                .run(&w);
            assert!(
                r.max_concurrent >= prev,
                "capacity dipped at {gb} GB: {} < {prev}",
                r.max_concurrent
            );
            prev = r.max_concurrent;
        }
        assert!(prev > 0);
    }

    #[test]
    fn per_disk_counts_respect_n() {
        let w = heavy_workload(0.0);
        let r = CapacitySim::new(cfg(SchemeKind::Dynamic, 30.0))
            .expect("valid")
            .run(&w);
        for (d, &peak) in r.per_disk_peak.iter().enumerate() {
            assert!(peak <= 79, "disk {d} exceeded N: {peak}");
        }
        // θ=0 skew: disk 0 is the hottest.
        assert!(r.per_disk_peak[0] >= r.per_disk_peak[9]);
        assert_eq!(r.admitted + r.rejected, w.len() as u64);
    }

    #[test]
    fn reservation_never_exceeds_budget() {
        let w = heavy_workload(0.5);
        let budget = 3.0;
        let r = CapacitySim::new(cfg(SchemeKind::Dynamic, budget))
            .expect("valid")
            .run(&w);
        assert!(r.peak_reserved <= Bits::from_gigabytes(budget));
        assert!(r.peak_reserved > Bits::ZERO);
    }

    #[test]
    fn recorder_counters_match_capacity_result() {
        use std::sync::Arc;
        use vod_obs::RecorderSink;

        let w = heavy_workload(0.5);
        let plain = CapacitySim::new(cfg(SchemeKind::Dynamic, 2.0))
            .expect("valid")
            .run(&w);
        let sink = Arc::new(RecorderSink::new());
        let observed =
            CapacitySim::with_observer(cfg(SchemeKind::Dynamic, 2.0), Obs::new(sink.clone()))
                .expect("valid")
                .run(&w);
        // Attaching a sink must not perturb the simulation.
        assert_eq!(plain, observed);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(EventKind::RequestAdmitted), observed.admitted);
        assert_eq!(snap.counter(EventKind::RequestRejected), observed.rejected);
        assert!(snap.counter(EventKind::PoolOccupancy) > 0);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(CapacitySim::new(CapacityConfig {
            disks: 0,
            ..cfg(SchemeKind::Static, 1.0)
        })
        .is_err());
        assert!(CapacitySim::new(CapacityConfig {
            total_memory: Bits::ZERO,
            ..cfg(SchemeKind::Static, 1.0)
        })
        .is_err());
    }
}
